//! Equivalence of the two execution paths: the compiled trace (default)
//! must be **cycle-for-cycle and byte-for-byte identical** to the reference
//! tree walker (`SimOptions::force_treewalk` / `CCDP_FORCE_TREEWALK=1`) —
//! cycles, per-PE totals, epoch attribution, prefetch quality, oracle
//! verdicts, fault stats, event traces, and the final memory image.
//!
//! Coverage: all four paper kernels at every PE count of the paper's tables
//! (seed 0), plus property-style sweeps over synthesized programs × schemes
//! × fault plans.

use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_bench::{cell_config, paper_kernels, Scale, PAPER_PES};
use ccdp_core::{run_seq, EnvOverrides, PipelineConfig, Scheme};
use ccdp_ir::Program;
use ccdp_json::ToJson;
use t3d_sim::{FaultPlan, SimResult};

fn with_treewalk(cfg: &PipelineConfig) -> PipelineConfig {
    let mut c = cfg.clone();
    c.sim.force_treewalk = true;
    c
}

/// Full-result identity: the serialized report (which covers cycles,
/// per-PE/per-epoch breakdowns, prefetch quality, oracle, fault stats, and
/// the event trace) plus the bit pattern of every shared array.
fn assert_identical(program: &Program, fast: &SimResult, slow: &SimResult, what: &str) {
    assert_eq!(
        fast.to_json().to_pretty(),
        slow.to_json().to_pretty(),
        "compiled vs treewalk result mismatch: {what}"
    );
    for a in &program.arrays {
        if !fast.memory.is_shared(a.id) {
            continue;
        }
        let fb: Vec<u64> =
            fast.memory.array_values(program, a.id).iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u64> =
            slow.memory.array_values(program, a.id).iter().map(|v| v.to_bits()).collect();
        assert_eq!(fb, sb, "memory mismatch in {} ({what})", a.name);
    }
}

/// Run every scheme through both paths and compare.
fn check_base_ccdp(program: &Program, cfg: &PipelineConfig, what: &str) {
    let tw = with_treewalk(cfg);
    let f = cfg.run(program, Scheme::Base).expect("base (compiled)").result;
    let s = tw.run(program, Scheme::Base).expect("base (treewalk)").result;
    assert_identical(program, &f, &s, &format!("{what} BASE"));
    let f = cfg.run(program, Scheme::Ccdp).expect("ccdp (compiled)");
    let s = tw.run(program, Scheme::Ccdp).expect("ccdp (treewalk)");
    let art = f.artifacts.as_ref().expect("ccdp run carries its artifacts");
    assert_identical(&art.transformed, &f.result, &s.result, &format!("{what} CCDP"));
}

fn check_seq(program: &Program, cfg: &PipelineConfig, what: &str) {
    let tw = with_treewalk(cfg);
    let f = run_seq(program, cfg).expect("seq (compiled)");
    let s = run_seq(program, &tw).expect("seq (treewalk)");
    assert_identical(program, &f, &s, &format!("{what} SEQ"));
}

/// The acceptance sweep: all four paper kernels × every PE count of the
/// tables, at seed 0 (no faults). The sequential scheme is checked once per
/// kernel — it is independent of the PE count.
#[test]
fn paper_kernels_identical_at_every_pe_count() {
    for k in &paper_kernels(Scale::Quick) {
        check_seq(&k.program, &cell_config(k, PAPER_PES[0]), k.name);
        for &n in &PAPER_PES {
            let cfg = cell_config(k, n);
            check_base_ccdp(&k.program, &cfg, &format!("{} pes={n}", k.name));
        }
    }
}

/// Synthesized programs across seeds: random epoch/loop/subscript shapes,
/// including ones the strength reducer must reject (guarded edge accesses).
#[test]
fn synthesized_programs_identical() {
    let cfg = SynthConfig::default();
    for seed in 0..8u64 {
        let p = random_program(seed, &cfg);
        for n in [1, 3, 8] {
            let pc = PipelineConfig::t3d(n);
            check_seq(&p, &pc, &format!("synth seed={seed}"));
            check_base_ccdp(&p, &pc, &format!("synth seed={seed} pes={n}"));
        }
    }
}

/// Fault injection perturbs latencies, prefetch drops, and queue capacity —
/// the two paths must agree on every fault decision and its accounting.
#[test]
fn faulted_runs_identical() {
    let plans = [
        FaultPlan { seed: 7, drop_rate: 0.3, delay_rate: 0.2, delay_mult: 4, ..FaultPlan::none() },
        FaultPlan { seed: 11, queue_cap: Some(4), storm_rate: 0.2, storm_len: 3, evict_rate: 0.25, ..FaultPlan::none() },
    ];
    let kernels = paper_kernels(Scale::Quick);
    for plan in plans {
        for (k, n) in [(&kernels[0], 8usize), (&kernels[2], 4)] {
            let mut cfg = cell_config(k, n);
            cfg.sim.faults = plan;
            check_base_ccdp(&k.program, &cfg, &format!("{} pes={n} faults seed={}", k.name, plan.seed));
        }
        let p = random_program(3, &SynthConfig::default());
        let mut pc = PipelineConfig::t3d(6);
        pc.sim.faults = plan;
        check_base_ccdp(&p, &pc, &format!("synth faults seed={}", plan.seed));
    }
}

/// Event traces are part of the identity contract: with tracing enabled,
/// both paths must record the same events at the same cycles.
#[test]
fn traced_runs_identical() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[1]; // VPENTA: serial + DOALL mix.
    let mut cfg = cell_config(k, 8);
    cfg.sim.trace_capacity = 4096;
    check_base_ccdp(&k.program, &cfg, "VPENTA pes=8 traced");
}

/// The `CCDP_FORCE_TREEWALK` env var — applied through the single
/// `EnvOverrides` parsing point — selects the same reference path as
/// `SimOptions::force_treewalk`. (Runs on a small kernel; if another test
/// in this binary races the env var, both sides degrade to the treewalk and
/// the assertion still holds — the flag is equivalence-preserving by
/// contract.)
#[test]
fn env_flag_matches_option_flag() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[0];
    let cfg = cell_config(k, 4);
    std::env::set_var("CCDP_FORCE_TREEWALK", "1");
    let mut env_cfg = cfg.clone();
    EnvOverrides::from_env().expect("valid env").apply(&mut env_cfg);
    std::env::remove_var("CCDP_FORCE_TREEWALK");
    assert!(env_cfg.sim.force_treewalk, "env override must set the treewalk flag");
    let via_env = env_cfg.run(&k.program, Scheme::Base).expect("base (env treewalk)").result;
    let via_opt =
        with_treewalk(&cfg).run(&k.program, Scheme::Base).expect("base (opt treewalk)").result;
    assert_identical(&k.program, &via_env, &via_opt, "env flag vs option flag");
}
