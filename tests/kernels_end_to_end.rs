//! Full-pipeline integration tests for the four paper kernels at reduced
//! sizes: numerical equality against the golden references under every
//! scheme and PE count, plus coherence and basic performance sanity.

use ccdp_core::{compare, PipelineConfig, Scheme};
use ccdp_kernels::{mxm, small_suite, swim, tomcatv, values_equal, vpenta};
use t3d_sim::SimOptions;

const PES: [usize; 5] = [1, 2, 3, 4, 8];
const PAIR: [Scheme; 2] = [Scheme::Base, Scheme::Ccdp];

#[test]
fn every_kernel_every_pe_count_matches_golden() {
    for spec in small_suite() {
        let aid = spec.program.array_by_name(spec.check_array).unwrap().id;
        for n in PES {
            let cmp = compare(&spec.program, &PipelineConfig::t3d(n), &PAIR).expect("coherent");
            let ccdp = &cmp.get(Scheme::Ccdp).unwrap().result;
            assert!(
                ccdp.oracle.is_coherent(),
                "{} P={}: {:?}",
                spec.name,
                n,
                ccdp.oracle.examples
            );
            let base = &cmp.get(Scheme::Base).unwrap().result;
            assert!(
                values_equal(&base.array_values(&spec.program, aid), &spec.golden),
                "{} P={} BASE numerics",
                spec.name,
                n
            );
            assert!(
                values_equal(&ccdp.array_values(&spec.program, aid), &spec.golden),
                "{} P={} CCDP numerics",
                spec.name,
                n
            );
            let imp = cmp.improvement_pct().unwrap();
            assert!(
                imp > -5.0,
                "{} P={}: CCDP much slower than BASE ({imp:.1}%)",
                spec.name,
                n
            );
        }
    }
}

#[test]
fn ccdp_speedup_scales_with_pes() {
    // On the embarrassingly parallel kernels the CCDP speedup must grow
    // monotonically over this small PE range.
    for (name, program) in [
        ("MXM", mxm::build(&mxm::Params::small())),
        ("VPENTA", vpenta::build(&vpenta::Params::small())),
    ] {
        let mut last = 0.0;
        for n in [1usize, 2, 4] {
            let cmp = compare(&program, &PipelineConfig::t3d(n), &PAIR).expect("coherent");
            let s = cmp.speedup(Scheme::Ccdp).unwrap();
            assert!(s > last, "{name}: speedup not increasing at P={n}: {s} <= {last}");
            last = s;
        }
    }
}

#[test]
fn invalidate_only_baseline_is_correct_on_all_kernels() {
    for spec in small_suite() {
        let aid = spec.program.array_by_name(spec.check_array).unwrap().id;
        let r = PipelineConfig::t3d(4)
            .run(&spec.program, Scheme::InvalidateOnly)
            .expect("coherent")
            .result;
        assert!(r.oracle.is_coherent(), "{}", spec.name);
        assert!(
            values_equal(&r.array_values(&spec.program, aid), &spec.golden),
            "{} invalidate-only numerics",
            spec.name
        );
    }
}

#[test]
fn repeat_sampling_preserves_shape_on_tomcatv() {
    // Extrapolated cycles must stay close to the full simulation at a size
    // where both are affordable.
    let pr = tomcatv::Params { n: 33, iters: 12 };
    let program = tomcatv::build(&pr);
    let mut full_cfg = PipelineConfig::t3d(4);
    full_cfg.layout = Some(tomcatv::layout(&program, 4));
    let mut sampled_cfg = full_cfg.clone();
    sampled_cfg.sim = SimOptions { repeat_sample: Some(3), ..Default::default() };

    let full = full_cfg.run(&program, Scheme::Base).expect("valid config").result;
    let sampled = sampled_cfg.run(&program, Scheme::Base).expect("valid config").result;
    assert!(sampled.extrapolated && !full.extrapolated);
    let rel =
        (full.cycles as f64 - sampled.cycles as f64).abs() / full.cycles as f64;
    assert!(rel < 0.03, "extrapolation error {rel:.4}");
}

#[test]
fn swim_routines_and_layout_work_at_scale_quickly() {
    let pr = swim::Params { n: 22, iters: 2 };
    let program = swim::build(&pr);
    let mut cfg = PipelineConfig::t3d(3);
    cfg.layout = Some(swim::layout(&program, 3));
    let cmp = compare(&program, &cfg, &PAIR).expect("coherent");
    let aid = program.array_by_name("PNEW").unwrap().id;
    let want = swim::golden_iters(&pr, pr.iters);
    let ccdp = &cmp.get(Scheme::Ccdp).unwrap().result;
    assert!(values_equal(&ccdp.array_values(&program, aid), &want));
    assert!(ccdp.oracle.is_coherent());
}
