//! End-to-end property tests over randomly synthesized programs.
//!
//! For every generated program and PE count:
//! 1. SEQ, BASE, and CCDP produce bit-identical results on every shared
//!    array (coherence enforcement never changes semantics);
//! 2. the CCDP run's oracle reports zero stale reads;
//! 3. the plan leaves no potentially-stale reference with `Normal` handling;
//! 4. the conservative invalidate-only scheme is also correct.

use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_core::{compile_ccdp, run_seq, PipelineConfig, Scheme};
use ccdp_prefetch::Handling;
use proptest::prelude::*;

fn check_seed(seed: u64, n_pes: usize) -> Result<(), TestCaseError> {
    let cfg = SynthConfig::default();
    let program = random_program(seed, &cfg);
    let pcfg = PipelineConfig::t3d(n_pes);

    let art = compile_ccdp(&program, &pcfg);
    for rid in art.stale.stale_refs() {
        prop_assert_ne!(
            art.plan.handling_of(rid),
            Handling::Normal,
            "seed {} P={}: stale ref {:?} unprotected",
            seed,
            n_pes,
            rid
        );
    }

    let seq = run_seq(&program, &pcfg).expect("valid config");
    let base = pcfg.run(&program, Scheme::Base).expect("valid config").result;
    let ccdp = pcfg.run(&program, Scheme::Ccdp).expect("coherent").result;
    let inv = pcfg.run(&program, Scheme::InvalidateOnly).expect("coherent").result;

    prop_assert!(
        ccdp.oracle.is_coherent(),
        "seed {} P={}: oracle violations {:?}",
        seed,
        n_pes,
        ccdp.oracle.examples
    );
    prop_assert!(base.oracle.is_coherent());
    prop_assert!(inv.oracle.is_coherent());

    for a in &program.arrays {
        let want = seq.array_values(&program, a.id);
        prop_assert!(want.iter().all(|v| v.is_finite()), "seed {seed}: NaN/inf");
        let got_base = base.array_values(&program, a.id);
        prop_assert_eq!(&got_base, &want, "seed {} P={} BASE {}", seed, n_pes, a.name);
        let got_ccdp = ccdp.array_values(&program, a.id);
        prop_assert_eq!(&got_ccdp, &want, "seed {} P={} CCDP {}", seed, n_pes, a.name);
        let got_inv = inv.array_values(&program, a.id);
        prop_assert_eq!(&got_inv, &want, "seed {} P={} INV {}", seed, n_pes, a.name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schemes_agree_and_ccdp_is_coherent(
        seed in 0u64..10_000,
        n_pes in prop::sample::select(vec![1usize, 2, 3, 4, 7, 8]),
    ) {
        check_seed(seed, n_pes)?;
    }
}

/// A fixed regression sweep (fast, deterministic, no shrinking involved).
#[test]
fn fixed_seed_sweep() {
    for seed in [0u64, 1, 7, 13, 99, 1234, 98765] {
        for n_pes in [2usize, 5] {
            check_seed(seed, n_pes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
