//! Invariants of the prefetch planning pass over synthesized programs:
//! determinism, structural validity of the transformed program, and
//! bookkeeping consistency of the plan statistics.

use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_core::{compile_ccdp, PipelineConfig};
use ccdp_prefetch::Handling;

#[test]
fn planning_is_deterministic_and_valid() {
    let cfg = SynthConfig::default();
    for seed in 0..30u64 {
        let program = random_program(seed, &cfg);
        let pcfg = PipelineConfig::t3d(6);
        let a1 = compile_ccdp(&program, &pcfg);
        let a2 = compile_ccdp(&program, &pcfg);
        assert_eq!(
            ccdp_ir::print_program(&a1.transformed),
            ccdp_ir::print_program(&a2.transformed),
            "seed {seed}: planning must be deterministic"
        );
        assert!(ccdp_ir::validate(&a1.transformed).is_ok(), "seed {seed}");
        // Stats identity: every target is covered by exactly one technique
        // or dropped.
        let s = &a1.plan.stats;
        assert_eq!(
            s.vector + s.pipelined + s.moved_back + s.dropped,
            s.targets,
            "seed {seed}: {s:?}"
        );
        assert_eq!(s.stale_reads, a1.stale.n_stale());
        // Handling classes add up: every stale read is Fresh or Bypass.
        let fresh_or_bypass = a1
            .plan
            .handling
            .iter()
            .filter(|h| !matches!(h, Handling::Normal))
            .count();
        assert!(fresh_or_bypass >= a1.stale.n_stale().min(s.targets));
        for rid in a1.stale.stale_refs() {
            assert_ne!(a1.plan.handling_of(rid), Handling::Normal, "seed {seed}");
        }
    }
}

#[test]
fn transformed_program_grows_only_by_prefetch_constructs() {
    // The pass must not duplicate or drop computation: the set of Assign
    // statements (by write RefId) is identical before and after.
    let cfg = SynthConfig::default();
    for seed in 0..30u64 {
        let program = random_program(seed, &cfg);
        let pcfg = PipelineConfig::t3d(6);
        let art = compile_ccdp(&program, &pcfg);
        let collect = |p: &ccdp_ir::Program| {
            let mut ids: Vec<u32> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for e in p.epochs() {
                if !seen.insert(e.id) {
                    continue;
                }
                ccdp_ir::for_each_stmt(&e.stmts, &mut |s| {
                    if let ccdp_ir::Stmt::Assign(a) = s {
                        ids.push(a.write.id.0);
                    }
                });
            }
            ids.sort_unstable();
            ids
        };
        assert_eq!(
            collect(&program),
            collect(&art.transformed),
            "seed {seed}: assigns must be preserved exactly"
        );
    }
}

#[test]
fn larger_machines_never_reduce_protection() {
    // Staleness grows (weakly) with PE count on these synth programs;
    // protection must follow.
    let cfg = SynthConfig::default();
    for seed in 0..15u64 {
        let program = random_program(seed, &cfg);
        let one = compile_ccdp(&program, &PipelineConfig::t3d(1));
        assert_eq!(
            one.stale.n_stale(),
            0,
            "seed {seed}: nothing is stale on one PE"
        );
    }
}
