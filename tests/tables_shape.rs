//! Shape assertions for the paper's tables at quick scale: who wins, in
//! which order, and that the harness machinery (grid fan-out, formatting)
//! holds together. Absolute numbers are asserted only loosely; the
//! full-size regeneration lives in `table1`/`table2` binaries and is
//! recorded in EXPERIMENTS.md.

use ccdp_bench::{paper_kernels, run_grid, Scale};
use ccdp_core::{format_improvement_table, format_speedup_table, MatrixRow, Scheme};

#[test]
fn quick_grid_shape_matches_the_paper() {
    let kernels = paper_kernels(Scale::Quick);
    let pes = [2usize, 4, 8];
    let schemes = [Scheme::Base, Scheme::Ccdp];
    let grid = run_grid(&kernels, &pes, &schemes).expect("coherent grid");

    let by_name = |n: &str| {
        kernels
            .iter()
            .position(|k| k.name == n)
            .expect("kernel present")
    };
    let (im, iv, it, isw) =
        (by_name("MXM"), by_name("VPENTA"), by_name("TOMCATV"), by_name("SWIM"));

    for (ki, mats) in grid.iter().enumerate() {
        for m in mats {
            let ccdp = &m.get(Scheme::Ccdp).unwrap().result;
            assert!(
                ccdp.oracle.is_coherent(),
                "{} P={} incoherent",
                kernels[ki].name,
                m.n_pes
            );
            let imp = m.improvement_pct().unwrap();
            assert!(
                imp > 0.0,
                "{} P={}: CCDP must beat BASE ({imp:.1}%)",
                kernels[ki].name,
                m.n_pes
            );
            assert!(m.speedup(Scheme::Ccdp).unwrap() > 0.9, "CCDP speedup sane");
        }
    }

    // Paper shape: MXM and TOMCATV are the big winners; VPENTA and SWIM the
    // small ones; BASE MXM/TOMCATV underperform BASE VPENTA/SWIM badly.
    for (pi, &pe) in pes.iter().enumerate() {
        let imp = |k: usize| grid[k][pi].improvement_pct().unwrap();
        assert!(
            imp(im) > imp(iv) && imp(im) > imp(isw),
            "P={pe}: MXM must out-improve VPENTA/SWIM: {:.1} vs {:.1}/{:.1}",
            imp(im),
            imp(iv),
            imp(isw)
        );
        assert!(
            imp(it) > imp(iv),
            "P={pe}: TOMCATV must out-improve VPENTA"
        );
        let bs = |k: usize| grid[k][pi].speedup(Scheme::Base).unwrap();
        assert!(
            bs(iv) > bs(im) && bs(iv) > bs(it),
            "P={pe}: BASE VPENTA must scale better than BASE MXM/TOMCATV"
        );
        assert!(bs(isw) > bs(it), "P={pe}: BASE SWIM beats BASE TOMCATV");
    }

    // And the report formatting renders every cell.
    let rows: Vec<MatrixRow> = kernels
        .iter()
        .zip(&grid)
        .map(|(k, matrices)| MatrixRow { kernel: k.name, matrices })
        .collect();
    let t1 = format_speedup_table(&rows);
    let t2 = format_improvement_table(&rows);
    for k in &kernels {
        assert!(t1.contains(k.name) && t2.contains(k.name));
    }
    assert_eq!(t1.lines().count(), 2 + 1 + pes.len());
    assert_eq!(t2.lines().count(), 1 + 1 + pes.len());
}
