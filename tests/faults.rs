//! Property tests for the fault-injection subsystem: under ANY seeded
//! `FaultPlan`, CCDP on synthesized programs still produces the sequential
//! golden numerics with a coherent oracle — faults only move cycles — and
//! `FaultStats` is consistent (a zero-rate plan injects nothing and leaves
//! the cycle counts byte-identical to a fault-free run).

use ccdp_bench::synth::{mutate_plan, random_program, SynthConfig};
use ccdp_core::{compile_ccdp, run_seq, PipelineConfig, Scheme as CoreScheme};
use ccdp_kernels::values_equal;
use proptest::prelude::*;
use t3d_sim::{FaultPlan, MachineConfig, Scheme, SimOptions, Simulator};

/// Arbitrary valid fault plan. The vendored proptest shim has no f64 range
/// strategies, so rates are drawn from integer tenths/hundredths.
fn arb_plan() -> BoxedStrategy<FaultPlan> {
    (
        (
            0u64..1000, // decision-stream seed
            0u32..=5,   // drop rate, tenths
            0u32..=3,   // delay rate, tenths
            2u64..=6,   // delay multiplier (validate() wants >= 2)
        ),
        (
            1u32..=4, // delay burst length
            0u32..=5, // storm rate, hundredths
            1u32..=5, // storm length (epochs)
            0u32..=3, // evict rate, tenths
        ),
    )
        .prop_map(|((seed, drop, delay, mult), (burst, storm, len, evict))| {
            FaultPlan::none()
                .with_seed(seed)
                .with_drop_rate(drop as f64 / 10.0)
                .with_delay(delay as f64 / 10.0, mult, burst)
                .with_storms(storm as f64 / 100.0, len)
                .with_evict_rate(evict as f64 / 10.0)
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_fault_plan_preserves_numerics_and_coherence(
        prog_seed in 0u64..500,
        n_pes in 2usize..9,
        plan in arb_plan(),
    ) {
        let program = random_program(prog_seed, &SynthConfig::default());
        let clean = PipelineConfig::t3d(n_pes);
        let seq = run_seq(&program, &clean).expect("valid config");
        let faulted = PipelineConfig::t3d(n_pes).with_faults(plan);
        // The CCDP pipeline re-checks the oracle; an incoherent run is an
        // Err here.
        let r = faulted
            .run(&program, CoreScheme::Ccdp)
            .unwrap_or_else(|e| panic!("seed {prog_seed} P={n_pes}: {e}"))
            .result;
        prop_assert!(r.oracle.is_coherent());
        for a in &program.arrays {
            prop_assert!(
                values_equal(
                    &r.array_values(&program, a.id),
                    &seq.array_values(&program, a.id),
                ),
                "seed {} P={} array {}: faulted CCDP diverged from SEQ",
                prog_seed, n_pes, a.name
            );
        }
        // Stats consistency: every recorded fallback was caused by a
        // recorded injection, so injections bound fallbacks.
        let f = r.fault_stats();
        let faulted_lines =
            f.prefetches_dropped + f.storm_drops + f.early_evictions;
        if faulted_lines == 0 {
            prop_assert_eq!(f.demand_fallbacks, 0);
        }
    }

    #[test]
    fn zero_rate_plan_is_byte_identical_to_fault_free(
        prog_seed in 0u64..500,
        n_pes in 2usize..9,
        seed in 0u64..1000,
    ) {
        let program = random_program(prog_seed, &SynthConfig::default());
        let zero = FaultPlan::none().with_seed(seed);
        prop_assert!(zero.is_none(), "a plan with all-zero rates is inert");
        let clean = PipelineConfig::t3d(n_pes)
            .run(&program, CoreScheme::Ccdp)
            .expect("ccdp coherent")
            .result;
        let faulted = PipelineConfig::t3d(n_pes)
            .with_faults(zero)
            .run(&program, CoreScheme::Ccdp)
            .expect("ccdp coherent")
            .result;
        prop_assert!(faulted.fault_stats().is_zero());
        prop_assert_eq!(faulted.cycles, clean.cycles);
        for (a, b) in clean.per_pe.iter().zip(&faulted.per_pe) {
            prop_assert_eq!(a.breakdown.total(), b.breakdown.total());
        }
    }

    #[test]
    fn same_seed_same_outcome(
        prog_seed in 0u64..500,
        n_pes in 2usize..9,
        seed in 0u64..1000,
    ) {
        let program = random_program(prog_seed, &SynthConfig::default());
        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_drop_rate(0.3)
            .with_delay(0.2, 4, 2)
            .with_evict_rate(0.1);
        let cfg = PipelineConfig::t3d(n_pes).with_faults(plan);
        let a = cfg.run(&program, CoreScheme::Ccdp).expect("ccdp coherent").result;
        let b = cfg.run(&program, CoreScheme::Ccdp).expect("ccdp coherent").result;
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.fault_stats(), b.fault_stats());
    }
}

/// A lost/degraded prefetch is semantically the same event as a dropped
/// prefetch fault: the `Fresh`/`Bypass` handling re-fetches coherently at
/// use. So every *coverage-only* plan mutation (dropped statement, dropped
/// pipeline annotation, shrunk vector, shifted line — everything except a
/// handling flip) must preserve coherence and the sequential numerics
/// exactly, only costing cycles.
#[test]
fn coverage_only_mutations_preserve_numerics_and_coherence() {
    let scfg = SynthConfig::default();
    let n_pes = 4;
    let mut checked = 0usize;
    for seed in 0..30u64 {
        let program = random_program(seed, &scfg);
        let cfg = PipelineConfig::t3d(n_pes);
        let seq = run_seq(&program, &cfg).expect("valid config");
        // Walk mutation sites until one that leaves the handling map alone.
        for mseed in 0..24u64 {
            let mut art = compile_ccdp(&program, &cfg);
            let Some(m) = mutate_plan(mseed, &mut art.transformed, &mut art.plan) else {
                break;
            };
            if m.changes_handling() {
                continue;
            }
            let r = Simulator::new(
                &art.transformed,
                cfg.layout_for(&program),
                MachineConfig::t3d(n_pes),
                Scheme::Ccdp { plan: art.plan.clone() },
                SimOptions { oracle_examples: 2, ..Default::default() },
            )
            .run();
            assert!(
                r.oracle.is_coherent(),
                "seed {seed} mseed {mseed}: coverage-only `{m}` broke coherence"
            );
            for a in &program.arrays {
                assert!(
                    values_equal(
                        &r.array_values(&program, a.id),
                        &seq.array_values(&program, a.id),
                    ),
                    "seed {seed} mseed {mseed}: `{m}` changed array {}",
                    a.name
                );
            }
            checked += 1;
            break;
        }
    }
    assert!(checked >= 10, "only {checked} coverage-only mutations exercised");
}
