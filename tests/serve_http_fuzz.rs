//! Fuzz the service's HTTP request parser: arbitrary bytes, corrupted
//! well-formed requests, truncations, and oversized bodies must all map to
//! structured [`HttpError`]s (each knowing its 4xx status) — never a
//! panic, never an unclassified failure.

use std::io::{Cursor, Read};
use std::time::Duration;

use ccdp_serve::http::{read_request, read_request_deadline, Deadline, HttpError};
use proptest::prelude::*;

fn parse(bytes: Vec<u8>, max_body: usize) -> Result<ccdp_serve::http::Request, HttpError> {
    read_request(&mut Cursor::new(bytes), max_body)
}

/// A slow client: dribbles its bytes out `chunk` at a time with a pause
/// between reads, then — once the script runs dry — returns `WouldBlock`
/// forever, like a stalled socket with a read timeout.
struct Dribble {
    bytes: Vec<u8>,
    pos: usize,
    chunk: usize,
    pause: Duration,
}

impl Read for Dribble {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.bytes.len() {
            std::thread::sleep(self.pause);
            return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stalled"));
        }
        std::thread::sleep(self.pause);
        let n = self.chunk.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A syntactically valid request with the given body.
fn well_formed(path: &str, body: &[u8]) -> Vec<u8> {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally arbitrary bytes: any outcome but a panic, and every error
    /// must carry a client-side (4xx) status.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..600)) {
        match parse(bytes, 4096) {
            Ok(_) => {}
            Err(e) => {
                let (status, _) = e.status();
                prop_assert!((400..500).contains(&status), "{e} -> {status}");
            }
        }
    }

    /// A well-formed request truncated at an arbitrary byte either parses
    /// (cut fell after the full body) or fails structurally.
    #[test]
    fn truncation_is_structured(body_len in 0usize..64, cut in 0usize..120) {
        let body: Vec<u8> = (0..body_len as u8).collect();
        let full = well_formed("/jobs", &body);
        let cut = cut.min(full.len());
        match parse(full[..cut].to_vec(), 4096) {
            Ok(r) => prop_assert_eq!(r.body, body, "short parse must mean complete request"),
            Err(e) => prop_assert!((400..500).contains(&e.status().0)),
        }
    }

    /// Declared bodies past the limit are refused with 413 without reading
    /// the body.
    #[test]
    fn oversized_body_is_413(extra in 1usize..10_000) {
        let limit = 512usize;
        let req = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", limit + extra
        );
        let err = parse(req.into_bytes(), limit).unwrap_err();
        prop_assert_eq!(err.status().0, 413);
        let is_too_large = matches!(err, HttpError::BodyTooLarge { .. });
        prop_assert!(is_too_large);
    }

    /// Corrupting one byte of a valid head never panics; if it still
    /// parses, the request is still self-consistent.
    #[test]
    fn single_byte_corruption(pos in 0usize..48, byte in 0u8..=255) {
        let mut req = well_formed("/jobs", b"{\"k\":1}");
        let pos = pos.min(req.len() - 1);
        req[pos] = byte;
        if let Ok(r) = parse(req, 4096) {
            prop_assert!(!r.method.is_empty());
            prop_assert!(r.path.starts_with('/'));
        }
    }

    /// Header names with embedded garbage are rejected as BadHeader, not
    /// silently accepted.
    #[test]
    fn garbage_header_lines(line in prop::collection::vec(0u8..=255, 1..40)) {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        req.extend_from_slice(&line);
        req.extend_from_slice(b"\r\n\r\n");
        // Either a structured error or a parse that found a colon-shaped
        // header; both fine, panics are not.
        let _ = parse(req, 4096);
    }

    /// A partial request cut at an arbitrary byte, then stalled forever:
    /// the deadline variant must answer with a structured 408 carrying the
    /// configured deadline — never hang, never panic, never misclassify.
    #[test]
    fn stalled_partial_request_times_out_structurally(
        body_len in 0usize..48,
        cut in 0usize..100,
    ) {
        let body: Vec<u8> = (0..body_len as u8).collect();
        let full = well_formed("/jobs", &body);
        let cut = cut.min(full.len());
        let complete = cut == full.len();
        let mut r = Dribble {
            bytes: full[..cut].to_vec(),
            pos: 0,
            chunk: 16,
            pause: Duration::from_millis(1),
        };
        match read_request_deadline(&mut r, 4096, &Deadline::after_ms(60)) {
            Ok(req) => {
                prop_assert!(complete, "parse may only succeed on the complete request");
                prop_assert_eq!(req.body, body);
            }
            Err(HttpError::Timeout { deadline_ms }) => {
                prop_assert!(!complete, "complete request must not time out");
                prop_assert_eq!(deadline_ms, 60);
                prop_assert_eq!(HttpError::Timeout { deadline_ms }.status().0, 408);
            }
            Err(e) => prop_assert!(false, "stall misclassified as {e}"),
        }
    }

    /// Dribble-byte delivery (one byte per read, with pauses) of a whole
    /// request still parses, as long as the bytes keep arriving within the
    /// deadline — slowness alone is not a crime, only stalling is.
    #[test]
    fn dribbled_whole_request_parses(body in prop::collection::vec(0u8..=255, 0..32)) {
        let full = well_formed("/jobs", &body);
        let mut r = Dribble { bytes: full, pos: 0, chunk: 1, pause: Duration::ZERO };
        let req = read_request_deadline(&mut r, 4096, &Deadline::after_ms(10_000))
            .expect("dribbled but complete request must parse");
        prop_assert_eq!(req.body, body);
    }

    /// Round-trip: requests the service's own clients produce parse back
    /// to the same method/path/body.
    #[test]
    fn roundtrip_wellformed(
        seg in prop::sample::select(vec!["jobs", "stats", "healthz", "result/abc123"]),
        body in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let path = format!("/{seg}");
        let r = parse(well_formed(&path, &body), 4096).unwrap();
        prop_assert_eq!(r.method, "POST");
        prop_assert_eq!(r.path, path);
        prop_assert_eq!(r.body, body);
    }
}

/// Deterministic spot checks for every structured error class (the fuzz
/// cases above reach these probabilistically; these pin them).
#[test]
fn error_taxonomy_is_complete() {
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"".to_vec(), 400),                                                // truncated
        (b"GARBAGE\r\n\r\n".to_vec(), 400),                                 // bad request line
        (b"GET / HTTP/2.0\r\n\r\n".to_vec(), 400),                          // bad version
        (b"POST /jobs HTTP/1.1\r\n\r\n".to_vec(), 411),                     // length required
        (b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n".to_vec(), 400),  // bad length
        (b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n".to_vec(), 413),
        (b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n".to_vec(), 400),
        ([b"GET / HTTP/1.1\r\nX: ".to_vec(), vec![b'a'; 20_000]].concat(), 431),
    ];
    for (bytes, want) in cases {
        let err = parse(bytes.clone(), 4096).expect_err("must be rejected");
        assert_eq!(err.status().0, want, "{err} for {:?}…", &bytes[..bytes.len().min(30)]);
        assert!(!err.code().is_empty());
    }
}
