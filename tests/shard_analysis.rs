//! The static shard-independence analysis against its dynamic oracle.
//!
//! Three layers of evidence, all on the same predicate (no earlier block
//! writes a cache line a later block touches):
//!
//! * **Witness programs** pin each verdict — `Disjoint` runs with no shard
//!   log and no merge-time conflict scan, `MayConflict` is caught by the
//!   dynamic log and rerun serially, `Unknown` falls back to optimistic
//!   dynamic logging — and all three stay byte-identical to the serial run.
//! * **Property sweep**: across synth programs, the paper kernels, and PE
//!   counts, a loop the analysis proves `Disjoint` must never appear in the
//!   dynamic conflict log (zero false negatives: a missed conflict would be
//!   a silent wrong answer, not a performance bug).
//! * **Mutation battery**: `mutate_program` injects a cross-block write
//!   into a DOALL; the static verdict must flip to non-`Disjoint` *and* the
//!   dynamic log must record the conflict for the same loop.
//!
//! Budget slicing rides along: statically proven epochs shard under cycle /
//! step budgets, and tight budgets abort identically to the serial run.

use ccdp_analysis::shard_scan;
use ccdp_bench::synth::{mutate_program, random_program, ProgramMutation, SynthConfig};
use ccdp_bench::{cell_config, paper_kernels, Scale, PAPER_PES};
use ccdp_core::{PipelineConfig, Scheme};
use ccdp_dist::Layout;
use ccdp_ir::{CondB, Program, ProgramBuilder};
use ccdp_json::ToJson;
use t3d_sim::SimResult;

const N: i64 = 32;

/// Each PE rewrites only the columns it owns: provably disjoint.
fn disjoint_program() -> Program {
    let mut pb = ProgramBuilder::new("disjoint");
    let a = pb.shared("A", &[N as usize, N as usize]);
    pb.parallel_epoch("sweep", |e| {
        e.doall("j", 0, N - 1, |e, j| {
            e.serial("i", 0, N - 1, |e, i| {
                e.assign(a.at2(i, j), a.at2(i, j).rd() * 0.5 + 1.0);
            });
        });
    });
    pb.finish().unwrap()
}

/// Backward column stencil: each block reads the last column of the block
/// before it — a real cross-block conflict the merge scan must catch.
fn conflict_program() -> Program {
    let mut pb = ProgramBuilder::new("conflict");
    let a = pb.shared("A", &[N as usize, N as usize]);
    pb.parallel_epoch("stencil", |e| {
        e.doall("j", 1, N - 1, |e, j| {
            e.serial("i", 0, N - 1, |e, i| {
                e.assign(a.at2(i, j), a.at2(i, j).rd() * 0.5 + a.at2(i, j - 1).rd() * 0.25);
            });
        });
    });
    pb.finish().unwrap()
}

/// A guarded write inside the DOALL: the analysis cannot bound the guard's
/// footprint and must answer `Unknown` (the guarded body is per-column and
/// actually disjoint, so the optimistic dynamic path merges cleanly).
fn unknown_program() -> Program {
    let mut pb = ProgramBuilder::new("unknown");
    let a = pb.shared("A", &[N as usize, N as usize]);
    pb.parallel_epoch("guarded", |e| {
        e.doall("j", 0, N - 1, |e, j| {
            e.serial("i", 0, N - 1, |e, i| {
                e.if_(CondB::gt(i, 3), |e| {
                    e.assign(a.at2(i, j), a.at2(i, j).rd() * 0.5 + 1.0);
                });
            });
        });
    });
    pb.finish().unwrap()
}

fn threaded(cfg: &PipelineConfig, t: usize) -> PipelineConfig {
    let mut c = cfg.clone();
    c.sim.sim_threads = t;
    c
}

/// Serialized-report plus shared-memory byte identity (the same contract as
/// `tests/parallel_equivalence.rs`).
fn assert_identical(program: &Program, a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty(), "report mismatch: {what}");
    for arr in &program.arrays {
        if !a.memory.is_shared(arr.id) {
            continue;
        }
        let ab: Vec<u64> =
            a.memory.array_values(program, arr.id).iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> =
            b.memory.array_values(program, arr.id).iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "memory mismatch in {} ({what})", arr.name);
    }
}

#[test]
fn witness_programs_pin_all_three_verdicts() {
    for (p, expect) in [
        (disjoint_program(), "disjoint"),
        (conflict_program(), "may_conflict"),
        (unknown_program(), "unknown"),
    ] {
        let layout = Layout::new(&p, 4);
        let vs = shard_scan(&p, &layout, 4);
        assert_eq!(vs.len(), 1, "{}: one parallel epoch", p.name);
        assert_eq!(vs[0].verdict.key(), expect, "{}", p.name);
    }
}

/// A proven-`Disjoint` epoch runs as pure fork/join: no dynamic logging, no
/// conflicts, and the result is byte-identical to the serial run.
#[test]
fn disjoint_witness_skips_the_dynamic_machinery() {
    let p = disjoint_program();
    let cfg = PipelineConfig::t3d(8);
    let par = threaded(&cfg, 4).run(&p, Scheme::Base).expect("parallel run");
    let ser = threaded(&cfg, 0).run(&p, Scheme::Base).expect("serial run");
    assert!(par.result.shard.static_proven > 0, "epoch should be proven statically");
    assert_eq!(par.result.shard.dynamic_logged, 0);
    assert_eq!(par.result.shard.conflicts, 0);
    assert_eq!(par.result.shard.dynamic_checks_skipped(), par.result.shard.static_proven);
    assert!(par.result.shard.conflict_loops.is_empty());
    assert_identical(&p, &par.result, &ser.result, "disjoint witness");
    // Serial runs never shard: the stats stay zero.
    assert_eq!(ser.result.shard.sharded(), 0);
}

/// A really-conflicting epoch is caught by the merge-time scan, recorded in
/// `conflict_loops`, rerun serially — and therefore still byte-identical.
#[test]
fn conflict_witness_is_caught_and_rerun_serially() {
    let p = conflict_program();
    let cfg = PipelineConfig::t3d(8);
    let layout = cfg.layout_for(&p);
    let doall = shard_scan(&p, &layout, cfg.machine.line_words)[0].doall;
    let par = threaded(&cfg, 4).run(&p, Scheme::Base).expect("parallel run");
    let ser = threaded(&cfg, 0).run(&p, Scheme::Base).expect("serial run");
    assert!(par.result.shard.conflicts > 0, "merge scan should reject the stencil");
    assert_eq!(par.result.shard.static_proven, 0);
    assert!(par.result.shard.conflict_loops.contains(&doall));
    assert_identical(&p, &par.result, &ser.result, "conflict witness");
}

/// An `Unknown` epoch takes the optimistic dynamic path; here the guarded
/// body is actually disjoint, so it merges cleanly with zero conflicts.
#[test]
fn unknown_witness_falls_back_to_dynamic_logging() {
    let p = unknown_program();
    let cfg = PipelineConfig::t3d(8);
    let par = threaded(&cfg, 4).run(&p, Scheme::Base).expect("parallel run");
    let ser = threaded(&cfg, 0).run(&p, Scheme::Base).expect("serial run");
    assert!(par.result.shard.dynamic_logged > 0, "Unknown should shard optimistically");
    assert_eq!(par.result.shard.static_proven, 0);
    assert_eq!(par.result.shard.conflicts, 0);
    assert_identical(&p, &par.result, &ser.result, "unknown witness");
}

/// `CCDP_SHARD_STATIC=0` semantics: with the static pass disabled every
/// sharded epoch is dynamically logged, and the bytes do not change.
#[test]
fn fast_path_on_off_and_serial_are_byte_identical() {
    let kernels = paper_kernels(Scale::Quick);
    let mut cases: Vec<(String, Program, PipelineConfig, Scheme)> = vec![
        ("disjoint".into(), disjoint_program(), PipelineConfig::t3d(8), Scheme::Base),
        ("MXM".into(), kernels[0].program.clone(), cell_config(&kernels[0], 8), Scheme::Ccdp),
        ("TOMCATV".into(), kernels[2].program.clone(), cell_config(&kernels[2], 8), Scheme::Ccdp),
    ];
    for (name, p, cfg, scheme) in cases.drain(..) {
        let mut on = threaded(&cfg, 4);
        on.sim.shard_static = true;
        let mut off = threaded(&cfg, 4);
        off.sim.shard_static = false;
        let a = on.run(&p, scheme).expect("shard_static=1 run");
        let b = off.run(&p, scheme).expect("shard_static=0 run");
        let s = threaded(&cfg, 0).run(&p, scheme).expect("serial run");
        let prog = a.artifacts.as_ref().map_or(&p, |x| &x.transformed);
        assert_identical(prog, &a.result, &b.result, &format!("{name} on-vs-off"));
        assert_identical(prog, &a.result, &s.result, &format!("{name} on-vs-serial"));
        // The knob only moves work between the two sharded paths.
        assert_eq!(b.result.shard.static_proven, 0, "{name}: knob off must not prove");
    }
}

/// Zero false negatives over synth programs: a statically `Disjoint` loop
/// never shows up in the dynamic conflict log. `shard_static` is forced off
/// so *every* sharded DOALL instance is dynamically checked.
#[test]
fn synth_static_disjoint_never_contradicts_the_dynamic_log() {
    let synth_cfg = SynthConfig::default();
    for seed in 0..40u64 {
        let p = random_program(seed, &synth_cfg);
        for n in [2usize, 4] {
            let mut cfg = threaded(&PipelineConfig::t3d(n), 4);
            cfg.sim.shard_static = false;
            let layout = cfg.layout_for(&p);
            let run = cfg.run(&p, Scheme::Ccdp).expect("synth ccdp run");
            let prog = &run.artifacts.as_ref().expect("ccdp artifacts").transformed;
            for v in shard_scan(prog, &layout, cfg.machine.line_words) {
                if v.verdict.is_disjoint() {
                    assert!(
                        !run.result.shard.conflict_loops.contains(&v.doall),
                        "seed {seed} pes={n}: loop L{} of epoch '{}' proven Disjoint \
                         but dynamically conflicted",
                        v.doall.index(),
                        v.label,
                    );
                }
            }
        }
    }
}

/// The same zero-false-negative contract over the paper kernels at every
/// multi-PE paper PE count.
#[test]
fn kernel_static_disjoint_never_contradicts_the_dynamic_log() {
    for k in &paper_kernels(Scale::Quick) {
        for &n in PAPER_PES.iter().filter(|&&n| n >= 2) {
            let mut cfg = threaded(&cell_config(k, n), 4);
            cfg.sim.shard_static = false;
            let layout = cfg.layout_for(&k.program);
            let run = cfg.run(&k.program, Scheme::Ccdp).expect("kernel ccdp run");
            let prog = &run.artifacts.as_ref().expect("ccdp artifacts").transformed;
            for v in shard_scan(prog, &layout, cfg.machine.line_words) {
                if v.verdict.is_disjoint() {
                    assert!(
                        !run.result.shard.conflict_loops.contains(&v.doall),
                        "{} pes={n}: loop L{} proven Disjoint but dynamically conflicted",
                        k.name,
                        v.doall.index(),
                    );
                }
            }
        }
    }
}

/// Mutation battery: injecting a cross-block write must flip the static
/// verdict to non-`Disjoint`, and the dynamic log must catch the same loop
/// at run time — the two detectors agree on every corruption.
#[test]
fn mutated_programs_flip_the_verdict_and_the_dynamic_log_agrees() {
    let synth_cfg = SynthConfig::default();
    for seed in 0..25u64 {
        let mut p = random_program(seed, &synth_cfg);
        let m = mutate_program(seed, &mut p).expect("synth programs always have a site");
        let ProgramMutation::CrossBlockWrite { doall, .. } = &m;
        let cfg = threaded(&PipelineConfig::t3d(8), 4);
        let layout = cfg.layout_for(&p);
        let v = shard_scan(&p, &layout, cfg.machine.line_words)
            .into_iter()
            .find(|v| v.doall == *doall)
            .expect("mutated doall is scanned");
        assert!(!v.verdict.is_disjoint(), "seed {seed}: {m} left the loop Disjoint");
        let run = cfg.run(&p, Scheme::Base).expect("mutated base run");
        assert!(
            run.result.shard.conflict_loops.contains(doall),
            "seed {seed}: {m} not caught by the dynamic log",
        );
    }
}

/// Statically proven epochs shard under a step budget (per-block budget
/// slicing); generous budgets complete identically, tight budgets abort
/// with exactly the serial error.
#[test]
fn proven_disjoint_epochs_shard_under_budgets() {
    let p = disjoint_program();
    let cfg = PipelineConfig::t3d(8);

    let mut generous = threaded(&cfg, 4);
    generous.sim.step_budget = Some(10_000_000);
    let run = generous.run(&p, Scheme::Base).expect("generous budget completes");
    assert!(run.result.shard.static_proven > 0, "budgeted proven epoch must still shard");
    assert_eq!(run.result.shard.declined_budget_unproven, 0);
    let mut gs = threaded(&cfg, 0);
    gs.sim.step_budget = Some(10_000_000);
    let ser = gs.run(&p, Scheme::Base).expect("serial generous budget");
    assert_identical(&p, &run.result, &ser.result, "generous step budget");

    // Unproven epochs under a budget decline sharding (structured reason).
    let up = unknown_program();
    let mut ub = threaded(&cfg, 4);
    ub.sim.step_budget = Some(10_000_000);
    let ur = ub.run(&up, Scheme::Base).expect("unknown budgeted run");
    assert!(ur.result.shard.declined_budget_unproven > 0);
    assert_eq!(ur.result.shard.sharded(), 0);

    // Tight budgets: outcome (including the abort error text) matches the
    // serial run exactly, whether the budget trips inside a worker or not.
    for budget in [50u64, 500, 5_000] {
        let mut pa = threaded(&cfg, 4);
        pa.sim.step_budget = Some(budget);
        let mut se = threaded(&cfg, 0);
        se.sim.step_budget = Some(budget);
        match (se.run(&p, Scheme::Base), pa.run(&p, Scheme::Base)) {
            (Ok(s), Ok(a)) => assert_identical(&p, &a.result, &s.result, "tight budget ok"),
            (Err(s), Err(a)) => {
                assert_eq!(format!("{s}"), format!("{a}"), "budget {budget} abort text")
            }
            (s, a) => panic!(
                "budget {budget}: outcomes diverge, serial ok={} parallel ok={}",
                s.is_ok(),
                a.is_ok()
            ),
        }
    }
}
