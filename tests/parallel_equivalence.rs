//! Byte-identity of the epoch-sharded parallel path (`SimOptions::
//! sim_threads` / `CCDP_SIM_THREADS`) against the serial compiled trace and
//! the reference tree walker: cycles, per-PE totals, epoch attribution,
//! prefetch quality, oracle verdicts, fault stats, event traces, and the
//! final memory image must all be identical — the parallel path is an
//! implementation detail of the simulator, never an approximation.
//!
//! Coverage: all four paper kernels × the paper's PE counts × every
//! `Scheme::ALL` member (hardware schemes take the serial path by design
//! and must be unaffected by the knob) × seeded fault plans × traced runs,
//! plus a determinism check that repeated parallel runs and different
//! worker counts all produce the same bytes.

use ccdp_bench::{cell_config, paper_kernels, Scale, PAPER_PES};
use ccdp_core::{PipelineConfig, Scheme};
use ccdp_ir::Program;
use ccdp_json::ToJson;
use t3d_sim::{FaultPlan, SimResult};

fn with_threads(cfg: &PipelineConfig, t: usize) -> PipelineConfig {
    let mut c = cfg.clone();
    c.sim.sim_threads = t;
    c
}

fn with_treewalk(cfg: &PipelineConfig) -> PipelineConfig {
    let mut c = cfg.clone();
    c.sim.force_treewalk = true;
    c
}

/// Full-result identity: the serialized report (cycles, per-PE/per-epoch
/// breakdowns, prefetch quality, oracle, fault stats, event trace) plus the
/// bit pattern of every shared array.
fn assert_identical(program: &Program, a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(
        a.to_json().to_pretty(),
        b.to_json().to_pretty(),
        "parallel vs serial result mismatch: {what}"
    );
    for arr in &program.arrays {
        if !a.memory.is_shared(arr.id) {
            continue;
        }
        let ab: Vec<u64> =
            a.memory.array_values(program, arr.id).iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> =
            b.memory.array_values(program, arr.id).iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "memory mismatch in {} ({what})", arr.name);
    }
}

/// Run one scheme at `threads` workers and compare against the serial
/// compiled run and the tree walker.
fn check_scheme(program: &Program, cfg: &PipelineConfig, scheme: Scheme, threads: usize, what: &str) {
    let par = with_threads(cfg, threads).run(program, scheme).expect("parallel run");
    let ser = with_threads(cfg, 0).run(program, scheme).expect("serial run");
    let tw = with_treewalk(cfg).run(program, scheme).expect("treewalk run");
    // CCDP/INV transform the program; compare memory through the program
    // the run actually executed.
    let prog = par.artifacts.as_ref().map_or(program, |a| &a.transformed);
    assert_identical(prog, &par.result, &ser.result, &format!("{what} {scheme:?} par-vs-serial"));
    assert_identical(prog, &par.result, &tw.result, &format!("{what} {scheme:?} par-vs-treewalk"));
}

/// The acceptance sweep: every scheme on all four kernels across the
/// paper's PE counts, 4 workers.
#[test]
fn all_schemes_identical_at_every_pe_count() {
    for k in &paper_kernels(Scale::Quick) {
        for &n in &PAPER_PES {
            let cfg = cell_config(k, n);
            for scheme in Scheme::ALL {
                check_scheme(&k.program, &cfg, scheme, 4, &format!("{} pes={n}", k.name));
            }
        }
    }
}

/// Worker-count sweep: any thread count — including more workers than PEs
/// and odd counts that split blocks unevenly — produces the same bytes.
#[test]
fn any_worker_count_identical() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[0];
    let cfg = cell_config(k, 8);
    for t in [2, 3, 5, 8, 16] {
        check_scheme(&k.program, &cfg, Scheme::Ccdp, t, &format!("{} pes=8 t={t}", k.name));
    }
}

/// Fault injection exercises the per-PE RNG-stream splicing of the merge:
/// drops, latency spikes, storms, and evictions must land on exactly the
/// same accesses as in the serial run.
#[test]
fn faulted_runs_identical() {
    let plans = [
        FaultPlan { seed: 7, drop_rate: 0.3, delay_rate: 0.2, delay_mult: 4, ..FaultPlan::none() },
        FaultPlan {
            seed: 11,
            queue_cap: Some(4),
            storm_rate: 0.2,
            storm_len: 3,
            evict_rate: 0.25,
            ..FaultPlan::none()
        },
    ];
    let kernels = paper_kernels(Scale::Quick);
    for plan in plans {
        for (k, n) in [(&kernels[0], 8usize), (&kernels[2], 4)] {
            let mut cfg = cell_config(k, n);
            cfg.sim.faults = plan;
            for scheme in [Scheme::Base, Scheme::Ccdp, Scheme::InvalidateOnly] {
                check_scheme(
                    &k.program,
                    &cfg,
                    scheme,
                    4,
                    &format!("{} pes={n} faults seed={}", k.name, plan.seed),
                );
            }
        }
    }
}

/// Event traces are part of the identity contract: the merge replays each
/// block's events in block order into the master ring, reproducing the
/// serial stream including ring wrap-around.
#[test]
fn traced_runs_identical() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[1]; // VPENTA: serial + DOALL mix.
    let mut cfg = cell_config(k, 8);
    cfg.sim.trace_capacity = 4096;
    for scheme in Scheme::ALL {
        check_scheme(&k.program, &cfg, scheme, 4, "VPENTA pes=8 traced");
    }
}

/// Determinism under repetition: worker interleaving varies from run to
/// run, but the merged result must not — two parallel runs of the same cell
/// serialize to the same bytes.
#[test]
fn repeated_parallel_runs_are_deterministic() {
    let kernels = paper_kernels(Scale::Quick);
    for (k, scheme) in [(&kernels[0], Scheme::Ccdp), (&kernels[3], Scheme::Base)] {
        let mut cfg = cell_config(k, 8);
        cfg.sim.faults = FaultPlan::none().with_seed(5).with_drop_rate(0.2);
        cfg.sim.trace_capacity = 1024;
        let cfg = with_threads(&cfg, 4);
        let a = cfg.run(&k.program, scheme).expect("first parallel run");
        let b = cfg.run(&k.program, scheme).expect("second parallel run");
        let prog = a.artifacts.as_ref().map_or(&k.program, |x| &x.transformed);
        assert_identical(prog, &a.result, &b.result, &format!("{} repeat {scheme:?}", k.name));
    }
}

/// Budgeted runs shard only when the epoch is statically proven disjoint
/// (per-block budget slicing); everything else takes the serial path. Either
/// way the knob must not change budget-abort behaviour or results —
/// `tests/shard_analysis.rs` covers the proven-and-sliced case in depth.
#[test]
fn budgeted_runs_ignore_the_knob() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[0];
    let mut cfg = cell_config(k, 8);
    cfg.sim.step_budget = Some(10_000);
    let ser = with_threads(&cfg, 0).run(&k.program, Scheme::Ccdp);
    let par = with_threads(&cfg, 4).run(&k.program, Scheme::Ccdp);
    match (ser, par) {
        (Ok(s), Ok(p)) => {
            let prog = s.artifacts.as_ref().map_or(&k.program, |a| &a.transformed);
            assert_identical(prog, &s.result, &p.result, "budgeted");
        }
        (Err(se), Err(pe)) => assert_eq!(format!("{se}"), format!("{pe}"), "budgeted abort"),
        (s, p) => panic!(
            "budgeted outcomes diverge: serial ok={} parallel ok={}",
            s.is_ok(),
            p.is_ok()
        ),
    }
}
