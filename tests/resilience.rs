//! End-to-end resilience: run budgets terminate runaway programs under
//! both interpreter paths, isolated grids contain and classify per-cell
//! failures, and a run killed mid-grid resumes from its journal to a
//! byte-identical report document.

use std::fs;
use std::path::PathBuf;

use ccdp_bench::journal::{header_line, run_journaled_grid, Journal};
use ccdp_bench::report::report_json_cells;
use ccdp_bench::resilience::{run_grid_isolated, CellFailure, CellOutcome, GridOptions};
use ccdp_bench::{paper_kernels, BenchKernel, Scale};
use ccdp_core::{run_seq, PipelineConfig, PipelineError, Scheme};
use ccdp_ir::{Program, ProgramBuilder};
use ccdp_json::Json;
use t3d_sim::FaultPlan;

/// A structurally valid program whose serial epoch would run two billion
/// iterations — the "runaway synthesized program" the budgets exist for.
fn runaway() -> Program {
    let mut pb = ProgramBuilder::new("runaway");
    let a = pb.shared("A", &[64]);
    pb.serial_epoch("spin", |e| {
        e.serial("i", 0, 2_000_000_000, |e, _i| {
            e.assign(a.at1(0), 1.0);
        });
    });
    pb.finish().expect("runaway program is structurally valid")
}

#[test]
fn budget_terminates_runaway_under_both_interpreters() {
    let p = runaway();
    for force_treewalk in [false, true] {
        let mut cfg = PipelineConfig::t3d(2);
        cfg.sim.force_treewalk = force_treewalk;
        cfg.sim.cycle_budget = Some(1_000_000);
        match run_seq(&p, &cfg) {
            Err(PipelineError::BudgetExceeded { cycles, steps, .. }) => {
                assert!(cycles > 1_000_000, "abort records the crossing cycle count");
                assert!(steps > 0);
            }
            Ok(_) => panic!("runaway program finished under a 1M-cycle budget"),
            Err(other) => panic!("expected BudgetExceeded, got: {other}"),
        }
        // The CCDP path (compile + prefetch plan) is budgeted too.
        match cfg.run(&p, Scheme::Ccdp) {
            Err(PipelineError::BudgetExceeded { .. }) => {}
            Ok(_) => panic!("runaway CCDP run finished under budget"),
            Err(other) => panic!("expected BudgetExceeded, got: {other}"),
        }
        // Step budgets bound the same loop by interpreter steps.
        let mut cfg = PipelineConfig::t3d(2);
        cfg.sim.force_treewalk = force_treewalk;
        cfg.sim.step_budget = Some(100_000);
        match run_seq(&p, &cfg) {
            Err(PipelineError::BudgetExceeded { steps, .. }) => {
                assert!(steps > 100_000);
            }
            other => panic!("expected BudgetExceeded on step budget, got ok={}", other.is_ok()),
        }
    }
}

#[test]
fn wall_deadline_terminates_runaway() {
    let p = runaway();
    let mut cfg = PipelineConfig::t3d(2);
    // A deadline already in the past: the cooperative check fires on the
    // first 4096-step boundary.
    cfg.sim.wall_deadline = Some(std::time::Instant::now());
    match run_seq(&p, &cfg) {
        Err(PipelineError::Timeout { steps, .. }) => assert!(steps > 0),
        Ok(_) => panic!("runaway run finished despite an expired deadline"),
        Err(other) => panic!("expected Timeout, got: {other}"),
    }
}

/// Without budgets the new machinery must be inert: both paths still agree
/// byte-for-byte on a real kernel (the equivalence contract).
#[test]
fn unbudgeted_runs_are_unchanged_by_budget_machinery() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[0];
    let run = |tw: bool, budget: Option<u64>| {
        let mut cfg = ccdp_bench::cell_config(k, 4);
        cfg.sim.force_treewalk = tw;
        // A budget far above the real cost: enabled but never fires.
        cfg.sim.cycle_budget = budget;
        run_seq(&k.program, &cfg).expect("in-budget run").cycles
    };
    let plain = run(false, None);
    assert_eq!(plain, run(true, None));
    assert_eq!(plain, run(false, Some(u64::MAX)));
    assert_eq!(plain, run(true, Some(u64::MAX)));
}

fn oob_kernel() -> BenchKernel {
    // Structurally valid (validate has no static bounds analysis) but
    // indexes past the array extent: panics inside the simulator.
    let mut pb = ProgramBuilder::new("oob");
    let a = pb.shared("A", &[8]);
    pb.parallel_epoch("w", |e| {
        e.doall("i", 0, 127, |e, i| e.assign(a.at1(i), 1.0));
    });
    BenchKernel {
        name: "OOB",
        program: pb.finish().expect("structurally valid"),
        repeat_sample: None,
        layout: None,
    }
}

#[test]
fn panicking_cell_is_contained_and_classified() {
    let kernels = vec![oob_kernel()];
    let grid = run_grid_isolated(
        &kernels,
        &[2],
        &[Scheme::Base, Scheme::Ccdp],
        &[(0, 0)],
        &GridOptions::default(),
        |_| {},
    );
    match grid.outcomes[0][0].as_ref().expect("cell was requested") {
        CellOutcome::Fail(CellFailure::Panicked { retried, .. }) => {
            assert!(*retried, "a deterministic panic is retried once, then recorded");
        }
        other => panic!("expected Panicked, got {}", other.class()),
    }
    assert!(grid.timing.is_none());
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccdp-resilience-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The tentpole guarantee: kill a run mid-grid (simulated by truncating
/// its journal, including a torn trailing line), resume, and get a report
/// document byte-identical to the uninterrupted run — including under a
/// seeded fault plan.
#[test]
fn killed_run_resumes_to_byte_identical_report() {
    let kernels = paper_kernels(Scale::Quick);
    let kernels = &kernels[..2];
    let names: Vec<&str> = kernels.iter().map(|k| k.name).collect();
    let pes = [2usize, 4];
    let opts = GridOptions {
        faults: Some(FaultPlan::none().with_seed(11).with_drop_rate(0.05)),
        ..Default::default()
    };
    let schemes = [Scheme::Base, Scheme::Ccdp];
    let dir = tmp_dir("resume");
    let path = dir.join("grid.journal.jsonl");
    let header = header_line("report", Scale::Quick, 11, &pes, &schemes, &opts);

    // Uninterrupted run.
    let full = run_journaled_grid(kernels, &pes, &schemes, &opts, &path, &header, false)
        .expect("journaled run");
    assert_eq!(full.reused, 0);
    assert!(full.failures.is_empty(), "quick kernels are coherent under this plan");
    let doc_full =
        report_json_cells(Scale::Quick, 11, &pes, &schemes, &names, &full.cells, None)
            .to_pretty();

    // "Kill" it: keep the header and the first two journaled cells, plus a
    // torn line from the crashed append.
    let text = fs::read_to_string(&path).expect("journal readable");
    let mut kept: Vec<&str> = text.lines().take(3).collect();
    assert_eq!(kept.len(), 3, "full run journaled at least two cells");
    kept.push("{\"kind\":\"cell\",\"kernel\":\"VPE");
    fs::write(&path, kept.join("\n")).expect("truncate journal");

    // Resume: two cells replayed, the rest re-simulated.
    let resumed = run_journaled_grid(kernels, &pes, &schemes, &opts, &path, &header, true)
        .expect("resumed run");
    assert_eq!(resumed.reused, 2, "exactly the journaled cells are reused");
    assert!(resumed.timing.is_none(), "resumed runs carry no perf baseline");
    let doc_resumed =
        report_json_cells(Scale::Quick, 11, &pes, &schemes, &names, &resumed.cells, None)
            .to_pretty();
    assert_eq!(doc_full, doc_resumed, "resumed document must be byte-identical");

    // A second resume replays everything and changes nothing.
    let replayed = run_journaled_grid(kernels, &pes, &schemes, &opts, &path, &header, true)
        .expect("fully replayed run");
    assert_eq!(replayed.reused, 4);
    let doc_replayed =
        report_json_cells(Scale::Quick, 11, &pes, &schemes, &names, &replayed.cells, None)
            .to_pretty();
    assert_eq!(doc_full, doc_replayed);
    fs::remove_dir_all(&dir).ok();
}

/// Deterministic failures (budget exhaustion) are checkpointed facts: a
/// resume replays them instead of burning the budget again.
#[test]
fn budget_failures_are_checkpointed_and_replayed() {
    let kernels = vec![BenchKernel {
        name: "RUNAWAY",
        program: runaway(),
        repeat_sample: None,
        layout: None,
    }];
    let pes = [2usize];
    let schemes = [Scheme::Base, Scheme::Ccdp];
    let opts = GridOptions { cycle_budget: Some(500_000), ..Default::default() };
    let dir = tmp_dir("budget");
    let path = dir.join("grid.journal.jsonl");
    let header = header_line("report", Scale::Quick, 0, &pes, &schemes, &opts);
    let first = run_journaled_grid(&kernels, &pes, &schemes, &opts, &path, &header, false)
        .expect("first run");
    assert_eq!(first.failures.len(), 1);
    assert_eq!(first.failures[0].2, "budget_exceeded");
    let resumed = run_journaled_grid(&kernels, &pes, &schemes, &opts, &path, &header, true)
        .expect("resume");
    assert_eq!(resumed.reused, 1, "budget outcomes replay from the journal");
    assert_eq!(resumed.failures.len(), 1);
    assert_eq!(first.cells[0][0].to_pretty(), resumed.cells[0][0].to_pretty());
    fs::remove_dir_all(&dir).ok();
}

/// The journal never checkpoints panics: a resume re-attempts them.
#[test]
fn panics_are_not_checkpointed() {
    let kernels = vec![oob_kernel()];
    let pes = [2usize];
    let schemes = [Scheme::Base, Scheme::Ccdp];
    let opts = GridOptions::default();
    let dir = tmp_dir("panic");
    let path = dir.join("grid.journal.jsonl");
    let header = header_line("report", Scale::Quick, 0, &pes, &schemes, &opts);
    let first = run_journaled_grid(&kernels, &pes, &schemes, &opts, &path, &header, false)
        .expect("first run");
    assert_eq!(first.failures[0].2, "panicked");
    let (_, entries) = Journal::resume(&path, &header).expect("journal readable");
    assert!(entries.is_empty(), "panicked cells must not be journaled");
    let resumed = run_journaled_grid(&kernels, &pes, &schemes, &opts, &path, &header, true)
        .expect("resume");
    assert_eq!(resumed.reused, 0, "the panicked cell is re-attempted on resume");
    fs::remove_dir_all(&dir).ok();
}

/// Invalid programs surface as classified `invalid` cells, not process
/// aborts: the up-front `ccdp_ir::validate` rejection at the pipeline
/// entry points feeds the same outcome taxonomy.
#[test]
fn invalid_program_classified_not_fatal() {
    // Build a valid program, then break it: Repeat with count 0.
    let mut pb = ProgramBuilder::new("bad");
    let a = pb.shared("A", &[8]);
    pb.repeat(1, |r| {
        r.parallel_epoch("w", |e| {
            e.doall("i", 0, 7, |e, i| e.assign(a.at1(i), 1.0));
        });
    });
    let mut p = pb.finish().expect("valid before mutation");
    if let ccdp_ir::ProgramItem::Repeat { count, .. } = &mut p.items[0] {
        *count = 0;
    } else {
        panic!("expected a Repeat item");
    }
    let kernels = vec![BenchKernel {
        name: "BAD",
        program: p,
        repeat_sample: None,
        layout: None,
    }];
    let grid = run_grid_isolated(
        &kernels,
        &[2],
        &[Scheme::Base, Scheme::Ccdp],
        &[(0, 0)],
        &GridOptions::default(),
        |_| {},
    );
    match grid.outcomes[0][0].as_ref().unwrap() {
        CellOutcome::Fail(CellFailure::Invalid { message }) => {
            assert!(message.contains("repeat"), "message names the defect: {message}");
        }
        other => panic!("expected Invalid, got {}", other.class()),
    }
}

/// The journaled cell JSON survives a parse→re-emit round trip unchanged —
/// the property the byte-identical resume rests on.
#[test]
fn journaled_cells_roundtrip_byte_stable() {
    let kernels = paper_kernels(Scale::Quick);
    let grid = run_grid_isolated(
        &kernels[..1],
        &[2],
        &ccdp_bench::GRID_SCHEMES,
        &[(0, 0)],
        &GridOptions::default(),
        |_| {},
    );
    let cell = ccdp_bench::report::cell_json(grid.outcomes[0][0].as_ref().unwrap());
    let line = cell.to_string();
    let reparsed: Json = ccdp_json::parse(&line).expect("cell json parses");
    assert_eq!(reparsed.to_string(), line);
    assert_eq!(reparsed, cell);
}
