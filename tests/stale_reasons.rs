//! Minimal witness programs pinning every `StaleReason` variant — the
//! classification the rest of the machine keys off (prefetch placement, lint
//! messages, report diagnostics). Each witness is checked twice: against the
//! production stale analysis AND against the verifier's independently
//! re-derived obligations, so a future divergence between the two shows up
//! here with a one-epoch reproducer attached.

use ccdp_analysis::{analyze_stale, coverage_obligations, StaleReason};
use ccdp_dist::Layout;
use ccdp_ir::{collect_refs_in_stmts, Program, ProgramBuilder, RefAccess, RefId};

/// Read RefIds of a named array in schedule order.
fn reads_of(p: &Program, name: &str) -> Vec<RefId> {
    let aid = p.array_by_name(name).unwrap().id;
    let mut out = Vec::new();
    for e in p.epochs() {
        for cr in collect_refs_in_stmts(&e.stmts) {
            if cr.access == RefAccess::Read && cr.r.array == aid {
                out.push(cr.r.id);
            }
        }
    }
    out
}

/// Assert one read's reason in both analyses.
fn assert_reason(p: &Program, n_pes: usize, rid: RefId, want: StaleReason) {
    let layout = Layout::new(p, n_pes);
    let stale = analyze_stale(p, &layout);
    assert_eq!(
        stale.stale[rid.index()],
        Some(want),
        "stale analysis reason for ref #{}",
        rid.index()
    );
    let ob = coverage_obligations(p, &layout);
    assert_eq!(
        ob.reason_of(rid),
        Some(want),
        "verifier obligation reason for ref #{}",
        rid.index()
    );
}

/// A serial epoch writes the whole array (on PE 0); the next parallel epoch
/// reads it block-distributed. Every PE but the writer sees a foreign write
/// from an earlier epoch.
#[test]
fn foreign_write_earlier_epoch_witness() {
    let n = 16i64;
    let mut pb = ProgramBuilder::new("w1");
    let a = pb.shared("A", &[16]);
    let b = pb.shared("B", &[16]);
    pb.serial_epoch("w", |e| {
        e.serial("i", 0, n - 1, |e, i| e.assign(a.at1(i), 2.0));
    });
    pb.parallel_epoch("r", |e| {
        e.doall("i", 0, n - 1, |e, i| {
            e.assign(b.at1(i), a.at1(i).rd() + 1.0);
        });
    });
    let p = pb.finish().unwrap();
    let rid = reads_of(&p, "A")[0];
    assert_reason(&p, 4, rid, StaleReason::ForeignWriteEarlierEpoch);
}

/// One multi-phase epoch (serial wrapper over a DOALL): each phase reads the
/// previous phase's write of a neighbouring PE's block. No epoch boundary
/// separates writer and reader — the wrapper loop does.
#[test]
fn cross_phase_same_epoch_witness() {
    let n = 16i64;
    let mut pb = ProgramBuilder::new("w2");
    let a = pb.shared("A", &[16, 16]);
    pb.parallel_epoch("sweep", |e| {
        e.serial("j", 1, n - 1, |e, j| {
            e.doall("i", 1, n - 1, |e, i| {
                e.assign(a.at2(i, j), a.at2(i - 1, j - 1).rd() * 0.5);
            });
        });
    });
    let p = pb.finish().unwrap();
    let rid = reads_of(&p, "A")[0];
    assert_reason(&p, 4, rid, StaleReason::CrossPhaseSameEpoch);
}

/// A dynamically scheduled *reader* epoch: which PE executes which
/// iteration is unknowable at compile time, so the read's per-PE section is
/// a conservative bounding box — stale by imprecision, not by a proven
/// foreign write.
#[test]
fn conservative_witness() {
    let n = 16i64;
    let mut pb = ProgramBuilder::new("w3");
    let a = pb.shared("A", &[16]);
    let b = pb.shared("B", &[16]);
    pb.parallel_epoch("w", |e| {
        e.doall("i", 0, n - 1, |e, i| e.assign(a.at1(i), 1.0));
    });
    pb.parallel_epoch("r", |e| {
        e.doall_dynamic("i", 0, n - 1, 2, |e, i| {
            e.assign(b.at1(i), a.at1(i).rd());
        });
    });
    let p = pb.finish().unwrap();
    let rid = reads_of(&p, "A")[0];
    assert_reason(&p, 4, rid, StaleReason::Conservative);
}

/// The three witnesses are mutually exclusive: each program's stale set
/// carries exactly the one reason its witness was built for, so a
/// classification regression cannot hide behind another variant.
#[test]
fn witnesses_are_minimal() {
    let runs: [(fn() -> Program, StaleReason); 3] = [
        (
            || {
                let mut pb = ProgramBuilder::new("w1");
                let a = pb.shared("A", &[16]);
                let b = pb.shared("B", &[16]);
                pb.serial_epoch("w", |e| {
                    e.serial("i", 0, 15, |e, i| e.assign(a.at1(i), 2.0));
                });
                pb.parallel_epoch("r", |e| {
                    e.doall("i", 0, 15, |e, i| {
                        e.assign(b.at1(i), a.at1(i).rd() + 1.0);
                    });
                });
                pb.finish().unwrap()
            },
            StaleReason::ForeignWriteEarlierEpoch,
        ),
        (
            || {
                let mut pb = ProgramBuilder::new("w2");
                let a = pb.shared("A", &[16, 16]);
                pb.parallel_epoch("sweep", |e| {
                    e.serial("j", 1, 15, |e, j| {
                        e.doall("i", 1, 15, |e, i| {
                            e.assign(a.at2(i, j), a.at2(i - 1, j - 1).rd() * 0.5);
                        });
                    });
                });
                pb.finish().unwrap()
            },
            StaleReason::CrossPhaseSameEpoch,
        ),
        (
            || {
                let mut pb = ProgramBuilder::new("w3");
                let a = pb.shared("A", &[16]);
                let b = pb.shared("B", &[16]);
                pb.parallel_epoch("w", |e| {
                    e.doall("i", 0, 15, |e, i| e.assign(a.at1(i), 1.0));
                });
                pb.parallel_epoch("r", |e| {
                    e.doall_dynamic("i", 0, 15, 2, |e, i| {
                        e.assign(b.at1(i), a.at1(i).rd());
                    });
                });
                pb.finish().unwrap()
            },
            StaleReason::Conservative,
        ),
    ];
    for (build, want) in runs {
        let p = build();
        let layout = Layout::new(&p, 4);
        let stale = analyze_stale(&p, &layout);
        let reasons: std::collections::BTreeSet<_> = stale
            .stale
            .iter()
            .flatten()
            .map(|r| format!("{r:?}"))
            .collect();
        assert_eq!(
            reasons,
            std::collections::BTreeSet::from([format!("{want:?}")]),
            "witness for {want:?} produced extra reasons"
        );
    }
}
