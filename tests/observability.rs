//! Property and shape tests for the observability layer.
//!
//! The invariants under test:
//! 1. every simulated cycle is attributed: per-PE `CycleBreakdown` totals
//!    equal `SimResult::cycles` exactly, for every scheme;
//! 2. per-epoch accounting is complete: summing the epoch slots recovers
//!    each PE's breakdown (the Repeat extrapolation pseudo-slot included);
//! 3. the event trace is observation only — enabling it changes no cycle
//!    count — and stays within its configured bound;
//! 4. prefetch quality ratios are well-formed (within `[0, 1]`);
//! 5. the JSON encoding round-trips.

use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_bench::{cell_config, paper_kernels, Scale};
use ccdp_core::{compare, run_seq, PipelineConfig, Scheme};
use ccdp_json::{Json, ToJson};
use proptest::prelude::*;
use t3d_sim::{CycleBreakdown, CycleCategory, SimOptions, SimResult};

fn assert_fully_attributed(r: &SimResult, what: &str) {
    for (pe, stats) in r.per_pe.iter().enumerate() {
        assert_eq!(
            stats.breakdown.total(),
            r.cycles,
            "{what}: PE {pe} breakdown does not sum to total cycles"
        );
    }
    // Per-epoch slots partition each PE's cycles.
    for pe in 0..r.per_pe.len() {
        let mut from_epochs = CycleBreakdown::default();
        for e in &r.epochs {
            from_epochs.add(&e.per_pe[pe]);
        }
        assert_eq!(
            from_epochs, r.per_pe[pe].breakdown,
            "{what}: PE {pe} epoch slots do not partition the breakdown"
        );
    }
}

fn assert_quality_well_formed(r: &SimResult, what: &str) {
    let q = r.prefetch_quality();
    for (name, v) in [
        ("coverage", q.coverage),
        ("accuracy", q.accuracy),
        ("timeliness", q.timeliness),
    ] {
        assert!((0.0..=1.0).contains(&v), "{what}: {name} = {v} out of range");
    }
}

#[test]
fn kernel_cells_fully_attributed() {
    let kernels = paper_kernels(Scale::Quick);
    for k in &kernels {
        let cfg = cell_config(k, 4);
        let seq = run_seq(&k.program, &cfg).expect("valid config");
        let base = cfg.run(&k.program, Scheme::Base).expect("valid config").result;
        let ccdp = cfg.run(&k.program, Scheme::Ccdp).expect("coherent").result;
        for (r, scheme) in [(&seq, "seq"), (&base, "base"), (&ccdp, "ccdp")] {
            assert_fully_attributed(r, &format!("{} {scheme}", k.name));
            assert_quality_well_formed(r, &format!("{} {scheme}", k.name));
        }
        // Compute is attributed: every scheme executes the same FP work.
        let fp = seq.per_pe.iter().map(|s| s.breakdown.get(CycleCategory::FpWork)).sum::<u64>();
        assert!(fp > 0, "{}: no FP work attributed", k.name);
    }
}

#[test]
fn trace_is_observation_only_and_bounded() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[0]; // MXM
    let plain = cell_config(k, 4);
    let traced = cell_config(k, 4)
        .with_sim(SimOptions { trace_capacity: 128, ..plain.sim });
    let off = plain.run(&k.program, Scheme::Ccdp).expect("coherent").result;
    let on = traced.run(&k.program, Scheme::Ccdp).expect("coherent").result;
    assert_eq!(off.cycles, on.cycles, "enabling the trace changed cycle counts");
    for (a, b) in off.per_pe.iter().zip(&on.per_pe) {
        assert_eq!(a.breakdown, b.breakdown, "enabling the trace changed a breakdown");
    }
    assert!(off.trace.is_empty(), "trace recorded while disabled");
    assert!(!on.trace.is_empty(), "no events recorded with trace enabled");
    assert!(on.trace.len() <= 128, "trace exceeded its ring capacity");
    assert!(on.trace.dropped > 0, "quick MXM should overflow a 128-event ring");
    // Events arrive oldest-first with monotone non-decreasing per-PE cycles.
    let mut last: std::collections::HashMap<u32, u64> = Default::default();
    for ev in on.trace.iter() {
        let prev = last.entry(ev.pe).or_insert(0);
        assert!(ev.cycle >= *prev, "per-PE event cycles went backwards");
        *prev = ev.cycle;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn synthesized_programs_fully_attributed(seed in 0u64..2000, n_pes in 1usize..9) {
        let program = random_program(seed, &SynthConfig::default());
        let pcfg = PipelineConfig::t3d(n_pes);
        let seq = run_seq(&program, &pcfg).expect("valid config");
        let base = pcfg.run(&program, Scheme::Base).expect("valid config").result;
        let ccdp = pcfg.run(&program, Scheme::Ccdp).expect("coherent").result;
        for (r, scheme) in [(&seq, "seq"), (&base, "base"), (&ccdp, "ccdp")] {
            assert_fully_attributed(r, &format!("seed {seed} P={n_pes} {scheme}"));
            assert_quality_well_formed(r, &format!("seed {seed} P={n_pes} {scheme}"));
        }
    }
}

#[test]
fn comparison_json_round_trips() {
    let kernels = paper_kernels(Scale::Quick);
    let k = &kernels[1]; // VPENTA
    let cmp = compare(&k.program, &cell_config(k, 2), &[Scheme::Base, Scheme::Ccdp])
        .expect("coherent");
    let j = cmp.to_json();
    let parsed = ccdp_json::parse(&j.to_pretty()).expect("valid JSON");
    assert_eq!(parsed, j, "print -> parse is not the identity");

    // Serialized breakdowns decode back to the in-memory values and still
    // sum to the run's total cycles.
    let ccdp = &cmp.get(Scheme::Ccdp).unwrap().result;
    let ccdp_j = parsed.get("runs").unwrap().get("ccdp").unwrap();
    let cycles = ccdp_j.get("cycles").and_then(Json::as_u64).unwrap();
    let per_pe = ccdp_j.get("per_pe").unwrap().items();
    assert_eq!(per_pe.len(), 2);
    for (pe, stats_j) in per_pe.iter().enumerate() {
        let b = CycleBreakdown::from_json(stats_j.get("breakdown").unwrap())
            .expect("breakdown decodes");
        assert_eq!(b, ccdp.per_pe[pe].breakdown);
        assert_eq!(b.total(), cycles);
    }
    // Quality ratios survive the trip.
    let q = ccdp_j.get("prefetch_quality").unwrap();
    let cov = q.get("coverage").and_then(Json::as_f64).unwrap();
    assert!((cov - ccdp.prefetch_quality().coverage).abs() < 1e-12);
}

#[test]
fn breakdown_category_names_are_stable() {
    // `from_name` inverts `name` for every category; unknown names fail.
    for cat in CycleCategory::ALL {
        assert_eq!(CycleCategory::from_name(cat.name()), Some(cat));
    }
    assert_eq!(CycleCategory::from_name("warp_drive"), None);
}
