//! Round-trip property: `print(parse(print(p))) == print(p)` for every
//! synthesized program, and the parsed program *behaves* identically (same
//! simulated results and cycle counts).

use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_core::{run_seq, PipelineConfig, Scheme};
use ccdp_ir::{parse_program, print_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn print_parse_print_is_fixpoint(seed in 0u64..10_000) {
        let cfg = SynthConfig::default();
        let p = random_program(seed, &cfg);
        let text = print_program(&p);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        prop_assert_eq!(text, print_program(&p2));
    }

    #[test]
    fn parsed_program_behaves_identically(seed in 0u64..2_000) {
        let cfg = SynthConfig::default();
        let p = random_program(seed, &cfg);
        let p2 = parse_program(&print_program(&p)).unwrap();
        let pcfg = PipelineConfig::t3d(3);
        let (a, b) = (run_seq(&p, &pcfg).unwrap(), run_seq(&p2, &pcfg).unwrap());
        prop_assert_eq!(a.cycles, b.cycles, "seed {}", seed);
        let (a4, b4) = (
            pcfg.run(&p, Scheme::Base).unwrap().result,
            pcfg.run(&p2, Scheme::Base).unwrap().result,
        );
        prop_assert_eq!(a4.cycles, b4.cycles);
        for (arr, arr2) in p.arrays.iter().zip(&p2.arrays) {
            prop_assert_eq!(
                a4.array_values(&p, arr.id),
                b4.array_values(&p2, arr2.id),
                "seed {} array {}", seed, arr.name
            );
        }
    }
}

/// The four paper kernels round-trip too (they exercise routines, repeats,
/// strided loops, alignment...).
#[test]
fn paper_kernels_roundtrip() {
    for spec in ccdp_kernels::small_suite() {
        let text = print_program(&spec.program);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
        assert_eq!(text, print_program(&p2), "{}", spec.name);
    }
}
