//! Failure injection: deliberately break the coherence machinery and check
//! that the oracle (and the numerics) catch it, and that hardware-limit
//! pressure (tiny prefetch queues) degrades performance but never
//! correctness.

use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_core::{compile_ccdp, run_seq, PipelineConfig, Scheme as CoreScheme};
use ccdp_kernels::{small_suite, tomcatv, values_equal};
use ccdp_prefetch::Handling;
use t3d_sim::{FaultPlan, MachineConfig, Scheme, SimOptions, Simulator};

/// Remove all coherence handling from a plan: every read becomes Normal.
fn break_plan(plan: &mut ccdp_prefetch::PrefetchPlan) {
    for h in plan.handling.iter_mut() {
        *h = Handling::Normal;
    }
}

#[test]
fn oracle_flags_unprotected_stale_reads_on_tomcatv() {
    let pr = tomcatv::Params { n: 16, iters: 3 };
    let program = tomcatv::build(&pr);
    let n_pes = 4;
    let mut cfg = PipelineConfig::t3d(n_pes);
    cfg.layout = Some(tomcatv::layout(&program, n_pes));
    let art = compile_ccdp(&program, &cfg);
    assert!(art.stale.n_stale() > 0);

    let mut plan = art.plan.clone();
    break_plan(&mut plan);
    // Run the ORIGINAL program (no prefetch statements) with the broken
    // plan: caching without any coherence action.
    let broken = Simulator::new(
        &program,
        cfg.layout_for(&program),
        MachineConfig::t3d(n_pes),
        Scheme::Ccdp { plan },
        SimOptions { oracle_examples: 8, ..Default::default() },
    )
    .run();
    assert!(
        !broken.oracle.is_coherent(),
        "caching without coherence actions must surface stale reads"
    );
    assert!(!broken.oracle.examples.is_empty());
    // And the numbers really are wrong.
    let aid = program.array_by_name("X").unwrap().id;
    let want = tomcatv::golden_iters(&pr, pr.iters);
    let got = broken.array_values(&program, aid);
    assert!(
        !values_equal(&got, &want),
        "stale reads should corrupt the mesh"
    );
}

#[test]
fn breaking_single_random_programs_is_detected_or_harmless() {
    // For random programs, clearing the handling map must never make the
    // oracle *and* the numerics disagree: if results are wrong, the oracle
    // must have flagged stale reads.
    let cfg = SynthConfig::default();
    let mut detected = 0;
    for seed in 0..25u64 {
        let program = random_program(seed, &cfg);
        let pcfg = PipelineConfig::t3d(4);
        let art = compile_ccdp(&program, &pcfg);
        let mut plan = art.plan.clone();
        break_plan(&mut plan);
        let broken = Simulator::new(
            &program,
            pcfg.layout_for(&program),
            MachineConfig::t3d(4),
            Scheme::Ccdp { plan },
            SimOptions { oracle_examples: 2, ..Default::default() },
        )
        .run();
        let seq = run_seq(&program, &pcfg).expect("valid config");
        let mut wrong = false;
        for a in &program.arrays {
            if broken.array_values(&program, a.id)
                != seq.array_values(&program, a.id)
            {
                wrong = true;
            }
        }
        if wrong {
            assert!(
                !broken.oracle.is_coherent(),
                "seed {seed}: wrong results but clean oracle"
            );
        }
        if !broken.oracle.is_coherent() {
            detected += 1;
        }
    }
    assert!(
        detected >= 5,
        "expected several seeds with real staleness, got {detected}"
    );
}

#[test]
fn tiny_prefetch_queue_drops_prefetches_but_stays_correct() {
    let pr = tomcatv::Params { n: 16, iters: 2 };
    let program = tomcatv::build(&pr);
    let n_pes = 4;
    let mut cfg = PipelineConfig::t3d(n_pes);
    cfg.layout = Some(tomcatv::layout(&program, n_pes));
    // Scheduler thinks the queue is large; the machine's is tiny: prefetch
    // drops must be absorbed by the coherent-miss fallback.
    cfg.schedule.enable_vpg = false; // force line prefetches through the queue
    let art = compile_ccdp(&program, &cfg);
    let mut machine = MachineConfig::t3d(n_pes);
    machine.queue_words = 4;
    let r = Simulator::new(
        &art.transformed,
        cfg.layout_for(&program),
        machine,
        Scheme::Ccdp { plan: art.plan.clone() },
        SimOptions::default(),
    )
    .run();
    assert!(r.oracle.is_coherent());
    let aid = program.array_by_name("X").unwrap().id;
    let want = tomcatv::golden_iters(&pr, pr.iters);
    assert!(values_equal(&r.array_values(&art.transformed, aid), &want));
}

#[test]
fn broken_plans_on_all_four_kernels_are_detected_or_harmless() {
    // The TOMCATV-only oracle check, generalized: for every paper kernel at
    // two PE counts, stripping all coherence handling from the plan must
    // never corrupt the numerics *silently* — wrong values imply a flagged
    // oracle. (Column-local kernels like VPENTA can survive unprotected.)
    let mut detected = 0;
    for spec in small_suite() {
        for n_pes in [2usize, 4] {
            let pcfg = PipelineConfig::t3d(n_pes);
            let art = compile_ccdp(&spec.program, &pcfg);
            let mut plan = art.plan.clone();
            break_plan(&mut plan);
            let broken = Simulator::new(
                &spec.program,
                pcfg.layout_for(&spec.program),
                MachineConfig::t3d(n_pes),
                Scheme::Ccdp { plan },
                SimOptions { oracle_examples: 2, ..Default::default() },
            )
            .run();
            let aid = spec.program.array_by_name(spec.check_array).unwrap().id;
            let got = broken.array_values(&spec.program, aid);
            if !values_equal(&got, &spec.golden) {
                assert!(
                    !broken.oracle.is_coherent(),
                    "{} P={n_pes}: wrong results but clean oracle",
                    spec.name
                );
            }
            if !broken.oracle.is_coherent() {
                detected += 1;
            }
        }
    }
    assert!(detected >= 2, "expected real staleness on some kernels, got {detected}");
}

#[test]
fn fault_mix_degrades_gracefully_on_all_four_kernels() {
    // The tentpole invariant, on the real kernels: under a mix of every
    // injector, CCDP numerics equal the golden reference and the oracle
    // stays clean — faults only move cycles.
    let mix = FaultPlan::none()
        .with_seed(3)
        .with_drop_rate(0.2)
        .with_delay(0.1, 4, 2)
        .with_storms(0.05, 3)
        .with_evict_rate(0.1);
    let mut injected = 0;
    for spec in small_suite() {
        for n_pes in [2usize, 4] {
            let pcfg = PipelineConfig::t3d(n_pes).with_faults(mix);
            let r = pcfg
                .run(&spec.program, CoreScheme::Ccdp)
                .unwrap_or_else(|e| panic!("{} P={n_pes}: {e}", spec.name))
                .result;
            let aid = spec.program.array_by_name(spec.check_array).unwrap().id;
            assert!(
                values_equal(&r.array_values(&spec.program, aid), &spec.golden),
                "{} P={n_pes}: faulted run diverged from golden",
                spec.name
            );
            injected += r.fault_stats().injected();
        }
    }
    assert!(injected > 0, "the mix plan never injected a single fault");
}

#[test]
fn cache_invalidation_mid_run_is_recovered_by_fresh_reads() {
    // Invalidate-everything machines (cold caches) are always correct: a
    // 1-line cache forces constant eviction.
    let pr = tomcatv::Params { n: 14, iters: 2 };
    let program = tomcatv::build(&pr);
    let n_pes = 2;
    let mut cfg = PipelineConfig::t3d(n_pes);
    cfg.layout = Some(tomcatv::layout(&program, n_pes));
    let art = compile_ccdp(&program, &cfg);
    let mut machine = MachineConfig::t3d(n_pes);
    machine.cache_lines = 1;
    let r = Simulator::new(
        &art.transformed,
        cfg.layout_for(&program),
        machine,
        Scheme::Ccdp { plan: art.plan.clone() },
        SimOptions::default(),
    )
    .run();
    assert!(r.oracle.is_coherent());
    let aid = program.array_by_name("X").unwrap().id;
    let want = tomcatv::golden_iters(&pr, pr.iters);
    assert!(values_equal(&r.array_values(&art.transformed, aid), &want));
}
