//! End-to-end service tests: spawn the real `ccdpd` binary, talk real
//! HTTP to it, and exercise the two hard lifecycle guarantees —
//! graceful drain on SIGTERM and byte-identical replay after `kill -9`.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ccdp_json::Json;
use ccdp_serve::api::sample_program;

struct Daemon {
    child: Child,
    addr: String,
}

fn spawn_ccdpd(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ccdpd"))
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ccdpd");
    // The daemon's single stdout line names the bound address.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("ccdpd listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    Daemon { child, addr }
}

impl Daemon {
    fn signal(&self, sig: &str) {
        let ok = Command::new("kill")
            .args([sig, &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill {sig} failed");
    }

    fn wait_exit(&mut self, within: Duration) -> std::process::ExitStatus {
        let deadline = Instant::now() + within;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            if Instant::now() > deadline {
                let _ = self.child.kill();
                panic!("ccdpd did not exit within {within:?}");
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One raw HTTP exchange; returns the complete response bytes.
fn exchange(addr: &str, request: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(request).expect("write request");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read response");
    out
}

fn post_job(addr: &str, body: &str) -> Vec<u8> {
    let req =
        format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    exchange(addr, req.as_bytes())
}

fn body_of(response: &[u8]) -> Json {
    let pos = response.windows(4).position(|w| w == b"\r\n\r\n").expect("head end") + 4;
    ccdp_json::parse(std::str::from_utf8(&response[pos..]).expect("utf8 body")).expect("json body")
}

fn job_json(size: usize, reps: usize) -> String {
    Json::obj([
        ("program", Json::Str(sample_program(size, reps))),
        ("n_pes", Json::UInt(2)),
        ("schemes", Json::arr([Json::Str("base".into()), Json::Str("ccdp".into())])),
    ])
    .to_string()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ccdpd-e2e-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let mut d = spawn_ccdpd(&[]);
    // A served job, then drain.
    let resp = post_job(&d.addr, &job_json(10, 1));
    let body = body_of(&resp);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"), "{body:?}");
    d.signal("-TERM");
    let status = d.wait_exit(Duration::from_secs(30));
    assert!(status.success(), "drain must exit 0, got {status:?}");
}

#[test]
fn malformed_and_unknown_requests_get_structured_errors() {
    let mut d = spawn_ccdpd(&[]);
    // Unknown route.
    let resp = exchange(&d.addr, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with(b"HTTP/1.1 404"), "{:?}", String::from_utf8_lossy(&resp));
    assert_eq!(body_of(&resp).get("code").and_then(Json::as_str), Some("not_found"));
    // Parse-level garbage.
    let resp = exchange(&d.addr, b"POST /jobs HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with(b"HTTP/1.1 411"));
    // Valid HTTP, invalid job.
    let resp = exchange(
        &d.addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
    );
    assert!(resp.starts_with(b"HTTP/1.1 400"), "{:?}", String::from_utf8_lossy(&resp));
    assert_eq!(body_of(&resp).get("code").and_then(Json::as_str), Some("bad_request"));
    // Invalid IR program: structured, cacheable job-level failure.
    let bad = Json::obj([("program", Json::Str("program x\n  garbage\n".into()))]).to_string();
    let resp = post_job(&d.addr, &bad);
    assert_eq!(body_of(&resp).get("code").and_then(Json::as_str), Some("invalid_program"));
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn duplicate_submissions_are_byte_identical() {
    let mut d = spawn_ccdpd(&[]);
    let job = job_json(9, 2);
    let first = post_job(&d.addr, &job);
    for _ in 0..3 {
        assert_eq!(post_job(&d.addr, &job), first, "cache hits must be byte-identical");
    }
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn kill_dash_nine_then_resume_replays_byte_identical() {
    let journal = tmp_dir("resume").join("jobs.jsonl");
    let jflag = journal.to_str().unwrap().to_string();
    let job_a = job_json(11, 1);
    let job_b = job_json(13, 2);

    let (resp_a, resp_b, fp_a, fp_b);
    {
        let d = spawn_ccdpd(&["--journal", &jflag, "--resume"]);
        resp_a = post_job(&d.addr, &job_a);
        resp_b = post_job(&d.addr, &job_b);
        fp_a = body_of(&resp_a).get("fingerprint").unwrap().as_str().unwrap().to_string();
        fp_b = body_of(&resp_b).get("fingerprint").unwrap().as_str().unwrap().to_string();
        // Hard kill: no drain, no atexit, journal must already be durable.
        d.signal("-KILL");
        // Drop reaps the corpse.
    }

    let mut d = spawn_ccdpd(&["--journal", &jflag, "--resume"]);
    // Replayed results are served byte-identically from the journal…
    for (fp, want) in [(&fp_a, &resp_a), (&fp_b, &resp_b)] {
        let got = exchange(&d.addr, format!("GET /result/{fp} HTTP/1.1\r\n\r\n").as_bytes());
        assert_eq!(&got, want, "replayed response for {fp} must be byte-identical");
    }
    // …and a re-submission of the same job is also byte-identical.
    assert_eq!(post_job(&d.addr, &job_a), resp_a);
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn overload_sheds_with_structured_queue_full() {
    // Tiny queue and one worker: concurrent slow-ish jobs must overflow
    // admission control, and every shed is a parseable 429 envelope.
    let mut d = spawn_ccdpd(&["--workers", "1", "--queue-cap", "1"]);
    let addr = d.addr.clone();
    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = &addr;
                scope.spawn(move || post_job(addr, &job_json(20 + i % 2, 6)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut shed = 0;
    for resp in &results {
        let body = body_of(resp); // every response parses — nothing dropped
        match body.get("status").and_then(Json::as_str) {
            Some("ok") => {}
            Some("error") => {
                if body.get("code").and_then(Json::as_str) == Some("queue_full") {
                    assert!(resp.starts_with(b"HTTP/1.1 429"));
                    assert!(body.get("queue_depth").is_some());
                    shed += 1;
                }
            }
            other => panic!("unstructured response: {other:?}"),
        }
    }
    assert!(shed > 0, "expected at least one structured shed among {} responses", results.len());
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(60)).success());
}
