//! End-to-end service tests: spawn the real `ccdpd` binary (supervisor +
//! worker processes), talk real HTTP to it, and exercise the hard
//! lifecycle guarantees — graceful drain on SIGTERM, byte-identical
//! replay after `kill -9` of the supervisor, and worker crashes that
//! never surface to clients.
#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ccdp_json::Json;
use ccdp_serve::api::sample_program;

struct Daemon {
    child: Child,
    addr: String,
    /// slot → pid, kept current by the stdout-reader thread as the
    /// supervisor respawns crashed workers.
    workers: Arc<Mutex<HashMap<usize, u32>>>,
}

fn parse_worker_line(line: &str) -> Option<(usize, u32)> {
    let rest = line.strip_prefix("ccdpd worker ")?;
    let mut it = rest.split_whitespace();
    let slot = it.next()?.parse().ok()?;
    if it.next() != Some("pid") {
        return None;
    }
    Some((slot, it.next()?.parse().ok()?))
}

fn spawn_ccdpd(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ccdpd"))
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ccdpd");
    // Stdout carries one `ccdpd worker <slot> pid <pid>` line per spawn
    // (initial and respawn alike) and one `ccdpd listening on <addr>`
    // banner once the acceptor is up. Scan until the banner, then keep a
    // reader thread draining the pipe so respawn lines are captured too.
    let stdout = child.stdout.take().expect("stdout piped");
    let workers = Arc::new(Mutex::new(HashMap::new()));
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read banner") > 0, "stdout EOF pre-banner");
        if let Some((slot, pid)) = parse_worker_line(line.trim()) {
            workers.lock().unwrap().insert(slot, pid);
        } else if let Some(rest) = line.trim().strip_prefix("ccdpd listening on ") {
            break rest.to_string();
        }
    };
    let thread_workers = Arc::clone(&workers);
    std::thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if let Some((slot, pid)) = parse_worker_line(line.trim()) {
                thread_workers.lock().unwrap().insert(slot, pid);
            }
        }
    });
    Daemon { child, addr, workers }
}

impl Daemon {
    fn signal(&self, sig: &str) {
        let ok = Command::new("kill")
            .args([sig, &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill {sig} failed");
    }

    fn worker_pids(&self) -> Vec<(usize, u32)> {
        self.workers.lock().unwrap().iter().map(|(&s, &p)| (s, p)).collect()
    }

    fn wait_exit(&mut self, within: Duration) -> std::process::ExitStatus {
        let deadline = Instant::now() + within;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            if Instant::now() > deadline {
                let _ = self.child.kill();
                panic!("ccdpd did not exit within {within:?}");
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One raw HTTP exchange; returns the complete response bytes.
fn exchange(addr: &str, request: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s.write_all(request).expect("write request");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read response");
    out
}

fn post_job(addr: &str, body: &str) -> Vec<u8> {
    let req =
        format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    exchange(addr, req.as_bytes())
}

fn body_of(response: &[u8]) -> Json {
    let pos = response.windows(4).position(|w| w == b"\r\n\r\n").expect("head end") + 4;
    ccdp_json::parse(std::str::from_utf8(&response[pos..]).expect("utf8 body")).expect("json body")
}

fn job_json(size: usize, reps: usize) -> String {
    Json::obj([
        ("program", Json::Str(sample_program(size, reps))),
        ("n_pes", Json::UInt(2)),
        ("schemes", Json::arr([Json::Str("base".into()), Json::Str("ccdp".into())])),
    ])
    .to_string()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ccdpd-e2e-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let mut d = spawn_ccdpd(&[]);
    // A served job, then drain: the supervisor must shut its worker
    // processes down and exit 0 — no leaked children, no panic exits.
    let resp = post_job(&d.addr, &job_json(10, 1));
    let body = body_of(&resp);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"), "{body:?}");
    assert_eq!(d.worker_pids().len(), 2, "both worker banners seen");
    d.signal("-TERM");
    let status = d.wait_exit(Duration::from_secs(30));
    assert!(status.success(), "drain must exit 0, got {status:?}");
}

#[test]
fn health_endpoints_are_structured() {
    let mut d = spawn_ccdpd(&[]);
    // Liveness: always 200 while the acceptor runs.
    let resp = exchange(&d.addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with(b"HTTP/1.1 200"), "{:?}", String::from_utf8_lossy(&resp));
    let body = body_of(&resp);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(body.get("role").and_then(Json::as_str), Some("supervisor"));
    // Readiness: full fleet, empty queue — ready, with the evidence.
    let resp = exchange(&d.addr, b"GET /readyz HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with(b"HTTP/1.1 200"), "{:?}", String::from_utf8_lossy(&resp));
    let body = body_of(&resp);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ready"));
    assert_eq!(body.get("workers_alive").and_then(Json::as_u64), Some(2));
    assert_eq!(body.get("workers_total").and_then(Json::as_u64), Some(2));
    assert!(body.get("queue_cap").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(body.get("reasons").map(|r| r.items().len()), Some(0));
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn malformed_and_unknown_requests_get_structured_errors() {
    let mut d = spawn_ccdpd(&[]);
    // Unknown route.
    let resp = exchange(&d.addr, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with(b"HTTP/1.1 404"), "{:?}", String::from_utf8_lossy(&resp));
    assert_eq!(body_of(&resp).get("code").and_then(Json::as_str), Some("not_found"));
    // Parse-level garbage.
    let resp = exchange(&d.addr, b"POST /jobs HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with(b"HTTP/1.1 411"));
    // Valid HTTP, invalid job.
    let resp = exchange(
        &d.addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
    );
    assert!(resp.starts_with(b"HTTP/1.1 400"), "{:?}", String::from_utf8_lossy(&resp));
    assert_eq!(body_of(&resp).get("code").and_then(Json::as_str), Some("bad_request"));
    // Invalid IR program: structured, cacheable job-level failure.
    let bad = Json::obj([("program", Json::Str("program x\n  garbage\n".into()))]).to_string();
    let resp = post_job(&d.addr, &bad);
    assert_eq!(body_of(&resp).get("code").and_then(Json::as_str), Some("invalid_program"));
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn slow_client_gets_structured_408() {
    // Hold a connection open with a partial request head and stop sending:
    // the per-connection read deadline must answer with a structured 408
    // instead of pinning a handler thread forever.
    let mut d = spawn_ccdpd(&["--read-deadline-ms", "300"]);
    let mut s = TcpStream::connect(&d.addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /jobs HTTP/1.1\r\nContent-Le").expect("partial head");
    let t0 = Instant::now();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).expect("read 408");
    assert!(resp.starts_with(b"HTTP/1.1 408"), "{:?}", String::from_utf8_lossy(&resp));
    let body = body_of(&resp);
    assert_eq!(body.get("code").and_then(Json::as_str), Some("request_timeout"));
    assert!(body.get("deadline_ms").and_then(Json::as_u64).unwrap() >= 300);
    assert!(t0.elapsed() < Duration::from_secs(8), "deadline, not the socket timeout, fired");
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn duplicate_submissions_are_byte_identical() {
    let mut d = spawn_ccdpd(&[]);
    let job = job_json(9, 2);
    let first = post_job(&d.addr, &job);
    for _ in 0..3 {
        assert_eq!(post_job(&d.addr, &job), first, "cache hits must be byte-identical");
    }
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn worker_kill_dash_nine_never_loses_the_response() {
    // Baseline: the canonical bytes for this job from an undisturbed run.
    let baseline = {
        let mut d = spawn_ccdpd(&["--workers", "1"]);
        let resp = post_job(&d.addr, &job_json(20, 6));
        d.signal("-TERM");
        assert!(d.wait_exit(Duration::from_secs(60)).success());
        resp
    };
    assert_eq!(body_of(&baseline).get("status").and_then(Json::as_str), Some("ok"));

    // Chaos: same job on a fresh single-worker daemon, SIGKILL the worker
    // while the job is (very likely) mid-compute. The supervisor must
    // redispatch from the journal of in-flight work and the client still
    // gets the byte-identical response on the same connection.
    let mut d = spawn_ccdpd(&["--workers", "1"]);
    let addr = d.addr.clone();
    let job = job_json(20, 6);
    let resp = std::thread::scope(|scope| {
        let handle = scope.spawn(|| post_job(&addr, &job));
        std::thread::sleep(Duration::from_millis(80));
        for (_, pid) in d.worker_pids() {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        }
        handle.join().expect("client thread")
    });
    assert_eq!(resp, baseline, "response after worker kill must be byte-identical");

    // The supervisor noticed: the worker restarts (new pid on the slot),
    // and /readyz returns to full strength.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let stats = body_of(&exchange(&d.addr, b"GET /stats HTTP/1.1\r\n\r\n"));
        if stats.get("restarts").and_then(Json::as_u64).unwrap_or(0) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "supervisor never recorded the restart");
        std::thread::sleep(Duration::from_millis(50));
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let ready = exchange(&d.addr, b"GET /readyz HTTP/1.1\r\n\r\n");
        if ready.starts_with(b"HTTP/1.1 200") {
            break;
        }
        assert!(Instant::now() < deadline, "fleet never recovered to ready");
        std::thread::sleep(Duration::from_millis(50));
    }
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(60)).success());
}

#[test]
fn kill_dash_nine_then_resume_replays_byte_identical() {
    let dir = tmp_dir("resume");
    let jflag = dir.to_str().unwrap().to_string();
    let job_a = job_json(11, 1);
    let job_b = job_json(13, 2);

    let (resp_a, resp_b, fp_a, fp_b);
    {
        let d = spawn_ccdpd(&["--journal-dir", &jflag, "--resume"]);
        resp_a = post_job(&d.addr, &job_a);
        resp_b = post_job(&d.addr, &job_b);
        fp_a = body_of(&resp_a).get("fingerprint").unwrap().as_str().unwrap().to_string();
        fp_b = body_of(&resp_b).get("fingerprint").unwrap().as_str().unwrap().to_string();
        // Hard kill: no drain, no atexit, the journal must already be
        // durable. The orphaned workers exit on their own via stdin EOF.
        d.signal("-KILL");
        // Drop reaps the corpse.
    }

    let mut d = spawn_ccdpd(&["--journal-dir", &jflag, "--resume"]);
    // Replayed results are served byte-identically from the journal…
    for (fp, want) in [(&fp_a, &resp_a), (&fp_b, &resp_b)] {
        let got = exchange(&d.addr, format!("GET /result/{fp} HTTP/1.1\r\n\r\n").as_bytes());
        assert_eq!(&got, want, "replayed response for {fp} must be byte-identical");
    }
    // …and a re-submission of the same job is also byte-identical.
    assert_eq!(post_job(&d.addr, &job_a), resp_a);
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn overload_sheds_with_structured_queue_full() {
    // Tiny queue and one worker: concurrent slow-ish jobs must overflow
    // admission control, and every shed is a parseable 429 envelope.
    let mut d = spawn_ccdpd(&["--workers", "1", "--queue-cap", "1"]);
    let addr = d.addr.clone();
    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = &addr;
                scope.spawn(move || post_job(addr, &job_json(20 + i % 2, 6)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut shed = 0;
    for resp in &results {
        let body = body_of(resp); // every response parses — nothing dropped
        match body.get("status").and_then(Json::as_str) {
            Some("ok") => {}
            Some("error") => {
                if body.get("code").and_then(Json::as_str) == Some("queue_full") {
                    assert!(resp.starts_with(b"HTTP/1.1 429"));
                    assert!(body.get("queue_depth").is_some());
                    shed += 1;
                }
            }
            other => panic!("unstructured response: {other:?}"),
        }
    }
    assert!(shed > 0, "expected at least one structured shed among {} responses", results.len());
    d.signal("-TERM");
    assert!(d.wait_exit(Duration::from_secs(60)).success());
}
