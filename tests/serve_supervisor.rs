//! Supervision-logic tests through the crate's public API: restart
//! backoff, the restart-storm circuit breaker, the readiness verdict, and
//! the cross-journal redispatch bookkeeping. All clock-driven logic is
//! pure over an explicit `Instant`, so nothing here sleeps; process-level
//! behaviour (real kills, real pipes) lives in `serve_e2e.rs` and the
//! `chaos` bin.

use std::time::{Duration, Instant};

use ccdp_serve::api::JobSpec;
use ccdp_serve::journal::{replay_dir, slot_path, JobJournal};
use ccdp_serve::server::ready_decision;
use ccdp_serve::{FleetBreaker, RestartPolicy, RestartTracker};

fn policy() -> RestartPolicy {
    RestartPolicy {
        base_backoff: Duration::from_millis(50),
        max_backoff: Duration::from_secs(1),
        stable_after: Duration::from_secs(5),
        storm_threshold: 3,
        storm_window: Duration::from_secs(2),
        cooloff: Duration::from_secs(4),
    }
}

#[test]
fn backoff_sequence_is_exponential_capped_and_resettable() {
    let mut t = RestartTracker::new(policy());
    let t0 = Instant::now();
    // A crash loop: each death doubles the wait, up to the cap.
    let mut now = t0;
    let mut waits = Vec::new();
    for _ in 0..7 {
        t.on_spawn(now);
        now += Duration::from_millis(10); // dies almost immediately
        waits.push(t.on_death(now).as_millis() as u64);
    }
    assert_eq!(waits, vec![50, 100, 200, 400, 800, 1000, 1000]);
    // A long stable run earns a clean slate.
    t.on_spawn(now);
    now += Duration::from_secs(6);
    assert_eq!(t.on_death(now), Duration::from_millis(50));
    assert_eq!(t.consecutive_deaths(), 1);
}

#[test]
fn breaker_trips_only_on_storms_and_recloses() {
    let mut b = FleetBreaker::new(policy());
    let t0 = Instant::now();
    // Slow attrition inside the window budget never opens the breaker.
    for i in 0..6 {
        b.on_death(t0 + Duration::from_secs(3 * i));
        assert!(!b.is_open(t0 + Duration::from_secs(3 * i)), "death {i}");
    }
    assert_eq!(b.trips, 0);
    // A storm (3 deaths inside 2 s) opens it for the cooloff, after which
    // it closes again and can re-trip on the next storm.
    let storm = t0 + Duration::from_secs(100);
    for i in 0..3 {
        b.on_death(storm + Duration::from_millis(100 * i));
    }
    assert!(b.is_open(storm + Duration::from_secs(1)));
    assert_eq!(b.trips, 1);
    let after = storm + Duration::from_secs(10);
    assert!(!b.is_open(after));
    for i in 0..3 {
        b.on_death(after + Duration::from_millis(100 * i));
    }
    assert!(b.is_open(after + Duration::from_secs(1)));
    assert_eq!(b.trips, 2);
}

#[test]
fn readiness_requires_workers_and_admission_headroom() {
    assert_eq!(ready_decision(2, 0, 8), (true, vec![]));
    assert_eq!(ready_decision(0, 0, 8), (false, vec!["no_workers"]));
    assert_eq!(ready_decision(2, 8, 8), (false, vec!["queue_full"]));
    assert_eq!(ready_decision(0, 9, 8), (false, vec!["no_workers", "queue_full"]));
}

fn spec() -> JobSpec {
    let doc = ccdp_json::parse(
        r#"{"program": "program p\n", "n_pes": 2, "schemes": ["base"]}"#,
    )
    .expect("spec json");
    JobSpec::from_json(&doc, 5000).expect("valid spec")
}

/// The redispatch signature on disk: the job line lands in the dead
/// worker's journal, the done line (after redispatch) in the survivor's.
/// A directory replay must unify them — completed once, in-flight never —
/// because correctness of crash recovery hinges on "done anywhere wins".
#[test]
fn redispatched_job_is_completed_across_slot_journals() {
    let dir = std::env::temp_dir()
        .join(format!("ccdpd-supervisor-redispatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let spec = spec();
    let fp = "deadbeefdeadbeefdeadbeefdeadbeef";
    let response = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";

    // Slot 0 accepted the job, journaled it, then got `kill -9`ed.
    let (j0, _) = JobJournal::open(&slot_path(&dir, 0), false, 0).unwrap();
    j0.record_job(fp, &spec).unwrap();
    // Slot 1 picked up the redispatch and completed it.
    let (j1, _) = JobJournal::open(&slot_path(&dir, 1), false, 0).unwrap();
    j1.record_job(fp, &spec).unwrap();
    j1.record_done(fp, response).unwrap();
    drop((j0, j1));

    let replay = replay_dir(&dir);
    assert_eq!(replay.completed.len(), 1);
    assert_eq!(replay.completed[0].0, fp);
    assert_eq!(replay.completed[0].1, response);
    assert!(replay.incomplete.is_empty(), "a done anywhere settles the fingerprint");

    // The inverse: a job journaled anywhere with no done anywhere is
    // exactly the orphan set replayed at startup.
    let (j2, _) = JobJournal::open(&slot_path(&dir, 2), false, 0).unwrap();
    j2.record_job("0123456789abcdef0123456789abcdef", &spec).unwrap();
    drop(j2);
    let replay = replay_dir(&dir);
    assert_eq!(replay.completed.len(), 1);
    assert_eq!(replay.incomplete.len(), 1);
    assert_eq!(replay.incomplete[0].0, "0123456789abcdef0123456789abcdef");

    let _ = std::fs::remove_dir_all(&dir);
}
