//! Cross-backend equivalence: every coherence backend — software (BASE,
//! CCDP, invalidate-only) and hardware (snooping MESI, update-based Dragon)
//! — must produce final shared-array contents bit-identical to the
//! sequential golden run, with a clean staleness oracle, on every paper
//! kernel × PE count and on synthesized programs. Performance differs per
//! scheme; semantics never do.
//!
//! (The per-transition MESI/Dragon state-machine unit tests live next to
//! the implementation in `t3d-sim`'s `coherence` module.)

use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_core::{compare, PipelineConfig, Scheme};
use ccdp_kernels::{small_suite, values_equal};
use proptest::prelude::*;

const PES: [usize; 4] = [1, 2, 4, 8];

#[test]
fn every_backend_matches_golden_on_every_paper_kernel() {
    for spec in small_suite() {
        let aid = spec.program.array_by_name(spec.check_array).unwrap().id;
        for n in PES {
            let m = compare(&spec.program, &PipelineConfig::t3d(n), &Scheme::ALL)
                .unwrap_or_else(|e| panic!("{} P={n}: {e}", spec.name));
            for run in &m.runs {
                let name = run.scheme.name();
                assert!(
                    run.result.oracle.is_coherent(),
                    "{} P={n} {name}: {:?}",
                    spec.name,
                    run.result.oracle.examples
                );
                assert!(
                    values_equal(&run.result.array_values(&spec.program, aid), &spec.golden),
                    "{} P={n} {name}: numerics diverged from golden",
                    spec.name
                );
            }
            // The hardware backends must actually be exercising the bus
            // once there is more than one PE — a zero count would mean the
            // scheme silently fell back to something else.
            if n > 1 {
                for s in [Scheme::Mesi, Scheme::Dragon] {
                    let txns = m.get(s).unwrap().result.total_stats().bus_txns;
                    assert!(txns > 0, "{} P={n} {}: no bus traffic", spec.name, s.name());
                }
            }
        }
    }
}

#[test]
fn hardware_backends_need_no_prefetch_plan() {
    // A hardware run reports zero compiler-inserted prefetches: coherence
    // comes from the protocol, not the plan.
    let spec = &small_suite()[0];
    let m = compare(&spec.program, &PipelineConfig::t3d(4), &Scheme::ALL).expect("coherent");
    for s in [Scheme::Mesi, Scheme::Dragon] {
        let t = m.get(s).unwrap().result.total_stats();
        assert_eq!(
            t.line_prefetches_issued + t.vector_prefetches_issued,
            0,
            "{}: hardware scheme issued compiler prefetches",
            s.name()
        );
    }
    // While the CCDP run does prefetch.
    let ccdp = m.get(Scheme::Ccdp).unwrap().result.total_stats();
    assert!(ccdp.line_prefetches_issued + ccdp.vector_prefetches_issued > 0);
}

fn check_synth(seed: u64, n_pes: usize) -> Result<(), TestCaseError> {
    let program = random_program(seed, &SynthConfig::default());
    let m = compare(&program, &PipelineConfig::t3d(n_pes), &Scheme::ALL)
        .unwrap_or_else(|e| panic!("seed {seed} P={n_pes}: {e}"));
    for run in &m.runs {
        let name = run.scheme.name();
        prop_assert!(
            run.result.oracle.is_coherent(),
            "seed {} P={} {}: {:?}",
            seed,
            n_pes,
            name,
            run.result.oracle.examples
        );
        for a in &program.arrays {
            prop_assert_eq!(
                run.result.array_values(&program, a.id),
                m.seq.array_values(&program, a.id),
                "seed {} P={} {} array {}: diverged from SEQ",
                seed,
                n_pes,
                name,
                &a.name
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_backend_matches_seq_on_synthesized_programs(
        seed in 0u64..10_000,
        n_pes in prop::sample::select(vec![1usize, 2, 3, 5, 8]),
    ) {
        check_synth(seed, n_pes)?;
    }
}

/// Fixed regression sweep (deterministic, no shrinking).
#[test]
fn fixed_seed_backend_sweep() {
    for seed in [0u64, 3, 17, 256, 4071] {
        for n_pes in [2usize, 6] {
            check_synth(seed, n_pes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
