//! Cross-validation of the static soundness verifier (`ccdp-lint`) against
//! the stale-reference analysis and the dynamic coherence oracle:
//!
//! * the planner's unmutated output verifies clean over every kernel × PE
//!   count and a synth-program sweep, and the verifier's independently
//!   re-derived obligations agree with `analyze_stale`;
//! * a seeded-mutation battery (handling flips, dropped/shrunk/weakened
//!   prefetches) over the four kernels and ≥50 synth programs: every
//!   mutation draws an error-severity finding statically, and in
//!   particular every mutation the *oracle* catches dynamically is also
//!   caught statically (zero false negatives vs. the oracle).

use ccdp_analysis::{analyze_stale, coverage_obligations};
use ccdp_bench::synth::{mutate_plan, random_program, PlanMutation, SynthConfig};
use ccdp_core::{compile_ccdp, PipelineConfig};
use ccdp_kernels::small_suite;
use ccdp_lint::{verify, LintCode, LintOptions};
use t3d_sim::{MachineConfig, Scheme, SimOptions, Simulator};

fn lint_cfg(cfg: &PipelineConfig) -> LintOptions {
    LintOptions::from_schedule(&cfg.schedule)
}

#[test]
fn unmutated_kernel_grid_is_clean_and_obligations_match_stale_analysis() {
    for spec in small_suite() {
        for n_pes in [1usize, 2, 4, 8] {
            let cfg = PipelineConfig::t3d(n_pes);
            let art = compile_ccdp(&spec.program, &cfg);
            let layout = cfg.layout_for(&spec.program);
            let rep = verify(&art.transformed, &art.plan, &layout, &lint_cfg(&cfg));
            assert!(
                rep.is_sound(),
                "{} P={n_pes}: planner output failed verification:\n{}",
                spec.name,
                rep.render()
            );
            assert_eq!(rep.errors(), 0);

            // The verifier's independent obligation derivation must agree
            // with the production stale analysis on the ORIGINAL program
            // (both analyses see the same epochs; prefetch statements in
            // the transformed program carry no refs).
            let ob = coverage_obligations(&spec.program, &layout);
            let stale = analyze_stale(&spec.program, &layout);
            assert_eq!(
                ob.stale_refs(),
                stale.stale_refs(),
                "{} P={n_pes}: obligations disagree with stale analysis",
                spec.name
            );
            assert_eq!(ob.n_shared_reads, stale.n_shared_reads);
        }
    }
}

#[test]
fn unmutated_synth_sweep_is_clean() {
    let scfg = SynthConfig::default();
    for seed in 0..60u64 {
        let p = random_program(seed, &scfg);
        for n_pes in [2usize, 4, 8] {
            let cfg = PipelineConfig::t3d(n_pes);
            let art = compile_ccdp(&p, &cfg);
            let layout = cfg.layout_for(&p);
            let rep = verify(&art.transformed, &art.plan, &layout, &lint_cfg(&cfg));
            assert!(
                rep.is_sound(),
                "synth seed {seed} P={n_pes}: planner output failed verification:\n{}",
                rep.render()
            );
        }
    }
}

/// Seed one mutation into a compiled pair and check the verifier catches it
/// statically; when the dynamic oracle also catches it, that is the
/// zero-false-negative obligation, and the lint finding must be an
/// uncovered-stale-read (the defect class handling corruption produces).
/// Returns the mutation for site-coverage bookkeeping.
fn check_mutation(
    name: &str,
    program: &ccdp_ir::Program,
    cfg: &PipelineConfig,
    mseed: u64,
    simulate: bool,
) -> Option<PlanMutation> {
    let mut art = compile_ccdp(program, cfg);
    let layout = cfg.layout_for(program);
    let m = mutate_plan(mseed, &mut art.transformed, &mut art.plan)?;
    let rep = verify(&art.transformed, &art.plan, &layout, &lint_cfg(cfg));
    assert!(
        !rep.is_sound(),
        "{name} mseed={mseed}: mutation `{m}` drew no error finding"
    );

    if simulate {
        let sim = Simulator::new(
            &art.transformed,
            layout,
            MachineConfig::t3d(cfg.n_pes),
            Scheme::Ccdp { plan: art.plan.clone() },
            SimOptions { oracle_examples: 2, ..Default::default() },
        )
        .run();
        if !sim.oracle.is_coherent() {
            // The oracle only fires on handling corruption (coverage-only
            // mutations stay dynamically coherent via the Fresh/Bypass
            // re-fetch path), so the static finding must be CCDP001.
            assert!(
                rep.findings.iter().any(|f| f.code == LintCode::UncoveredStaleRead),
                "{name} mseed={mseed}: oracle caught `{m}` but lint has no CCDP001:\n{}",
                rep.render()
            );
        }
    }
    Some(m)
}

#[test]
fn every_seeded_kernel_mutation_is_caught_statically() {
    for spec in small_suite() {
        let cfg = PipelineConfig::t3d(4);
        // Sweep enough seeds to hit every mutation-site class at least once
        // per kernel; simulate a subset to cross-check the oracle.
        for mseed in 0..12u64 {
            check_mutation(spec.name, &spec.program, &cfg, mseed, mseed < 4);
        }
    }
}

#[test]
fn every_seeded_synth_mutation_is_caught_statically() {
    let scfg = SynthConfig::default();
    let mut mutated = 0usize;
    let mut classes = std::collections::BTreeSet::new();
    for seed in 0..60u64 {
        let p = random_program(seed, &scfg);
        let cfg = PipelineConfig::t3d(4);
        // One mutation per program, rotating through sites; simulate every
        // fourth program to keep the oracle cross-check affordable.
        if let Some(m) =
            check_mutation(&format!("synth-{seed}"), &p, &cfg, seed * 7, seed % 4 == 0)
        {
            mutated += 1;
            classes.insert(match m {
                PlanMutation::FlipHandling { .. } => "flip",
                PlanMutation::DropPrefetchStmt { .. } => "drop-stmt",
                PlanMutation::DropPipelined { .. } => "drop-pipe",
                PlanMutation::ShrinkVector { .. } => "shrink",
                PlanMutation::WeakenLine { .. } => "weaken",
            });
        }
    }
    assert!(mutated >= 50, "only {mutated} synth programs had a mutable site");
    assert!(
        classes.len() >= 3,
        "mutation sweep exercised too few defect classes ({})",
        classes.len()
    );
}

#[test]
fn handling_flips_are_caught_by_both_verifier_and_oracle_on_tomcatv() {
    // The strongest three-way anchor: a Fresh→Normal flip on TOMCATV is
    // caught dynamically by the oracle AND statically as CCDP001.
    let spec = small_suite().remove(2);
    assert_eq!(spec.name, "TOMCATV");
    let cfg = PipelineConfig::t3d(4);
    let base = compile_ccdp(&spec.program, &cfg);
    let n_flips = base
        .plan
        .handling
        .iter()
        .filter(|h| **h != ccdp_prefetch::Handling::Normal)
        .count();
    assert!(n_flips > 0);
    let mut flips_checked = 0;
    for mseed in 0..n_flips as u64 {
        let mut art = compile_ccdp(&spec.program, &cfg);
        let layout = cfg.layout_for(&spec.program);
        let Some(m) = mutate_plan(mseed, &mut art.transformed, &mut art.plan) else {
            continue;
        };
        if !m.changes_handling() {
            continue;
        }
        let rep = verify(&art.transformed, &art.plan, &layout, &lint_cfg(&cfg));
        assert!(
            rep.findings.iter().any(|f| f.code == LintCode::UncoveredStaleRead),
            "flip `{m}` not flagged:\n{}",
            rep.render()
        );
        flips_checked += 1;
    }
    assert_eq!(flips_checked, n_flips, "seeds 0..n_flips must all be handling flips");
}
