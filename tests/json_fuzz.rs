//! Fuzz the JSON parser over malformed bytes: every input must come back
//! as `Ok` or `Err` — never a panic, never a stack overflow. This is the
//! contract the resilient harness leans on when it replays journal files
//! that may end in a torn line from a killed process.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..256)) {
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = ccdp_json::parse(s);
        }
    }

    #[test]
    fn mutated_valid_document_never_panics(idx in 0usize..1000, byte in 0u8..=255u8) {
        let mut bytes =
            br#"{"k":[1,-2.5e3,"x\n",null,true,{"n":3},[[]]],"m":"A"}"#.to_vec();
        let i = idx % bytes.len();
        bytes[i] = byte;
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = ccdp_json::parse(s);
        }
    }

    #[test]
    fn truncated_document_errors_cleanly(len in 0usize..46) {
        // Every strict prefix of this document is incomplete JSON (ASCII
        // only, so any byte offset is a char boundary).
        let text = r#"{"k":[1,-2.5e3,"x",null,true,{"n":3}],"m":"y"}"#;
        let cut = &text[..len.min(text.len() - 1)];
        prop_assert!(ccdp_json::parse(cut).is_err(), "prefix {cut:?} parsed");
    }

    #[test]
    fn nesting_bombs_error_fast(
        depth in 1usize..4000,
        opener in prop::sample::select(vec!["[", "{\"k\":"]),
    ) {
        // Below MAX_PARSE_DEPTH these fail on the missing closers; above
        // it, on the depth limit. Either way: an error, not a blown stack.
        let bomb = opener.repeat(depth);
        prop_assert!(ccdp_json::parse(&bomb).is_err());
    }
}
