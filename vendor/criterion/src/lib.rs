//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so this crate provides a
//! minimal wall-clock benchmark harness with criterion's API shape
//! (`criterion_group!` / `criterion_main!` / `Criterion` / groups /
//! `Bencher::iter`). It reports a mean per-iteration time on stdout; there
//! is no statistical analysis, plotting, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (kept short: this harness exists
/// so `cargo bench` works offline, not for publication-grade numbers).
const MEASURE: Duration = Duration::from_millis(300);
/// `--quick` / `CCDP_BENCH_QUICK=1` budget: one abbreviated pass per
/// benchmark, for CI smoke steps that only check the harness runs.
const MEASURE_QUICK: Duration = Duration::from_millis(30);
const MAX_ITERS: u64 = 10_000;

/// Measurement budget, honoring criterion's `--quick` CLI flag (also
/// settable as `CCDP_BENCH_QUICK=1` for `cargo bench` invocations that
/// cannot forward flags). The env var is parsed through the pipeline's
/// single parsing point (`ccdp_core::EnvOverrides`), so a typo is a loud
/// structured error instead of a silently full-length benchmark run.
fn measure_budget() -> Duration {
    let env = ccdp_core::EnvOverrides::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let quick = std::env::args().any(|a| a == "--quick") || env.bench_quick;
    if quick {
        MEASURE_QUICK
    } else {
        MEASURE
    }
}

/// One benchmark timer.
pub struct Bencher {
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Time `f`, auto-scaling the iteration count to the routine's cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = measure_budget();
        black_box(f()); // warm-up (and one mandatory execution)
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < MAX_ITERS {
            black_box(f());
            iters += 1;
        }
        let total = start.elapsed();
        self.mean_ns = Some(total.as_nanos() as f64 / iters.max(1) as f64);
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: None };
    f(&mut b);
    match b.mean_ns {
        Some(ns) if ns >= 1e6 => println!("bench {label:<50} {:>12.3} ms", ns / 1e6),
        Some(ns) if ns >= 1e3 => println!("bench {label:<50} {:>12.3} µs", ns / 1e3),
        Some(ns) => println!("bench {label:<50} {ns:>12.1} ns"),
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod unit {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
