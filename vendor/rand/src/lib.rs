//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so this crate provides the
//! small API subset the repo uses (`StdRng::seed_from_u64`, `gen_range`,
//! `gen_bool`, `gen`) on top of xoshiro256++ seeded via SplitMix64. The
//! stream differs from crates.io `rand`'s `StdRng` — all in-repo consumers
//! are property tests that only require *determinism*, not a specific
//! stream.

pub mod rngs {
    /// Deterministic 64-bit PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding, as in `rand::SeedableRng` (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Integer types `gen_range` can produce.
pub trait SampleUniform: Copy {
    fn sample_in(lo: Self, hi: Self, raw: u64) -> Self;
    /// `self - 1` (exclusive upper bound → inclusive).
    fn pred(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, raw: u64) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
            fn pred(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Types `gen()` can produce (the `Standard` distribution).
pub trait Standard {
    fn standard(raw: u64) -> Self;
}

impl Standard for u64 {
    fn standard(raw: u64) -> Self {
        raw
    }
}
impl Standard for u32 {
    fn standard(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

/// The `rand::Rng` extension trait (subset).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a `lo..hi` or `lo..=hi` integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform + PartialOrd,
        R: std::ops::RangeBounds<T>,
        Self: Sized,
    {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&b) => b,
            _ => panic!("gen_range needs a bounded start"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&b) => b,
            Bound::Excluded(&b) => {
                assert!(lo < b, "gen_range over an empty range");
                b.pred()
            }
            Bound::Unbounded => panic!("gen_range needs a bounded end"),
        };
        assert!(lo <= hi, "gen_range over an empty range");
        T::sample_in(lo, hi, self.next_u64())
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Sample from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self.next_u64())
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}
