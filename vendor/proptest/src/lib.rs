//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this crate implements the
//! API subset the repo's property tests use: the `proptest!` macro,
//! `prop_assert*!`, integer-range / tuple / mapped / collection / boolean /
//! sample strategies, and `prop_oneof!`. Generation is purely random
//! (deterministic per test name); there is **no shrinking** — failures print
//! the case number and the assertion message, and re-running reproduces the
//! same sequence.

use std::fmt;

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { x: seed ^ 0x5DEE_CE66_D1CE_CAFE }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic per-test RNG (stable across runs: seeded by the test name).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::new(h)
}

/// A failed test case (the `Err` of `prop_assert*!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy only knows how to produce one value from the RNG.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// `s.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        choices: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(choices: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!choices.is_empty());
            Union { choices }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }

    /// A fixed value (`Just`).
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub use strategy::{BoxedStrategy, Just, Strategy};

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end);
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `true` with probability `p`.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(pub f64);

    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p));
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform choice from a fixed list (`prop::sample::select`).
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty());
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };

    /// `prop::…` paths (`prop::sample::select`, `prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{bool, collection, sample, strategy};
    }
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, …) { … }`
/// becomes a test that runs `cases` random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                #[allow(unreachable_code)]
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", …)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", …)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` / `prop_assert_ne!(a, b, "fmt", …)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}\n  {}",
                stringify!($a), stringify!($b), a, format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod unit {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (-20i64..20).generate(&mut rng);
            assert!((-20..20).contains(&v));
            let u = (1usize..6).generate(&mut rng);
            assert!((1..6).contains(&u));
            let w = (0u32..=5).generate(&mut rng);
            assert!(w <= 5);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let gen = |name: &str| {
            let mut rng = crate::test_rng(name);
            (0..16).map(|_| (0u64..1 << 40).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }

    #[test]
    fn oneof_map_vec_compose() {
        let strat = prop::collection::vec(
            prop_oneof![
                (0i64..10).prop_map(|v| v * 2),
                (100i64..110).prop_map(|v| v + 1),
            ],
            3..7,
        );
        let mut rng = crate::test_rng("compose");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            for x in v {
                assert!((x % 2 == 0 && x < 20) || (101..111).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_questions(a in 0i64..50, pair in (0i64..4, prop::bool::ANY)) {
            let helper = || -> Result<(), TestCaseError> { Ok(()) };
            helper()?;
            prop_assert!(a >= 0, "a={}", a);
            // Degenerate arithmetic on purpose: the assertion exercises the
            // macro's argument plumbing, not the math.
            #[allow(clippy::erasing_op)]
            {
                prop_assert_eq!(pair.0 * 0, 0);
            }
            prop_assert_ne!(a, -1);
        }
    }
}
