//! Text-format parser — the inverse of [`crate::print_program`].
//!
//! The format is the pretty-printer's output (indentation-structured,
//! two spaces per level):
//!
//! ```text
//! program stencil
//!   shared A(64,64)
//!   private T(8)
//!   routine calc:
//!     epoch inner (parallel):
//!       doall(static) j = 1, 62 align A
//!         do i = 1, 62
//!           A(i,j) = (A(i,j-1) + A(i,j+1))*0.5
//!   epoch init (serial):
//!     do j = 0, 63
//!       do i = 0, 63
//!         A(i,j) = $i*0.01 + 1
//!   repeat 10 times:
//!     call calc
//! ```
//!
//! Comment lines (starting with `!`, as emitted for prefetch annotations)
//! and blank lines are ignored — parsing a *transformed* program yields the
//! untransformed original. `$name` reads a loop variable's value into the
//! arithmetic; conditions use `==`, `/=`, `<`, `<=`, `>`, `>=` and the
//! `?(...)` wrapper marks a condition the compiler must treat as opaque.
//!
//! Round-trip guarantee (tested): `print(parse(print(p))) == print(p)` for
//! every valid untransformed program.

use std::collections::HashMap;

use crate::{
    Affine, ArrayDecl, ArrayId, ArrayRef, Assign, CmpOp, Cond, Epoch, EpochId, EpochKind,
    IfStmt, Loop, LoopId, LoopKind, Program, ProgramItem, RefId, Routine, RoutineId, Sharing,
    Stmt, ValExpr, VarId,
};

/// A parse failure, with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole program from its textual form and validate it.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(text);
    let prog = p.program()?;
    crate::validate(&prog).map_err(|e| ParseError {
        line: 0,
        message: format!("validation failed: {e}"),
    })?;
    Ok(prog)
}

struct Line {
    no: usize,
    indent: usize,
    text: String,
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
    // id allocation
    next_ref: u32,
    next_loop: u32,
    next_epoch: u32,
    var_names: Vec<String>,
    arrays: Vec<ArrayDecl>,
    array_ids: HashMap<String, ArrayId>,
    routine_ids: HashMap<String, RoutineId>,
    routines: Vec<Routine>,
    scope: Vec<(String, VarId)>,
}

impl Parser {
    fn new(text: &str) -> Parser {
        let lines = text
            .lines()
            .enumerate()
            .filter_map(|(i, raw)| {
                let trimmed = raw.trim_end();
                let content = trimmed.trim_start();
                if content.is_empty() || content.starts_with('!') {
                    return None;
                }
                let indent_spaces = trimmed.len() - content.len();
                Some(Line {
                    no: i + 1,
                    indent: indent_spaces / 2,
                    text: content.to_string(),
                })
            })
            .collect();
        Parser {
            lines,
            pos: 0,
            next_ref: 0,
            next_loop: 0,
            next_epoch: 0,
            var_names: Vec::new(),
            arrays: Vec::new(),
            array_ids: HashMap::new(),
            routine_ids: HashMap::new(),
            routines: Vec::new(),
            scope: Vec::new(),
        }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line, message: msg.into() })
    }

    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let Some(first) = self.peek() else {
            return self.err(0, "empty input");
        };
        let name = match first.text.strip_prefix("program ") {
            Some(n) if first.indent == 0 => n.trim().to_string(),
            _ => return self.err(first.no, "expected `program <name>`"),
        };
        self.pos += 1;

        // Declarations (indent 1): shared/private arrays, then routines
        // interleaved with items.
        while let Some(l) = self.peek() {
            if l.indent != 1 {
                return self.err(l.no, format!("unexpected indent {}", l.indent));
            }
            let line_no = l.no;
            let text = l.text.clone();
            if let Some(rest) = text.strip_prefix("shared ") {
                self.pos += 1;
                self.declare_array(line_no, rest, Sharing::Shared)?;
            } else if let Some(rest) = text.strip_prefix("private ") {
                self.pos += 1;
                self.declare_array(line_no, rest, Sharing::Private)?;
            } else {
                break;
            }
        }

        let mut items: Vec<ProgramItem> = Vec::new();
        while let Some(l) = self.peek() {
            if l.indent != 1 {
                return self.err(l.no, format!("unexpected indent {} (expected 1)", l.indent));
            }
            if l.text.starts_with("routine ") {
                self.routine_def()?;
            } else {
                items.push(self.item(1)?);
            }
        }

        Ok(Program {
            name,
            arrays: std::mem::take(&mut self.arrays),
            routines: std::mem::take(&mut self.routines),
            items,
            var_names: std::mem::take(&mut self.var_names),
            n_refs: self.next_ref,
            n_loops: self.next_loop,
            n_epochs: self.next_epoch,
        })
    }

    fn declare_array(
        &mut self,
        line: usize,
        rest: &str,
        sharing: Sharing,
    ) -> Result<(), ParseError> {
        // NAME(e1,e2,...)
        let Some(open) = rest.find('(') else {
            return self.err(line, "expected `name(extent,...)`");
        };
        let name = rest[..open].trim().to_string();
        let Some(close) = rest.rfind(')') else {
            return self.err(line, "missing `)` in array declaration");
        };
        let extents: Result<Vec<usize>, _> = rest[open + 1..close]
            .split(',')
            .map(|t| t.trim().parse::<usize>())
            .collect();
        let Ok(extents) = extents else {
            return self.err(line, "array extents must be integers");
        };
        let id = ArrayId(self.arrays.len() as u32);
        if self.array_ids.insert(name.clone(), id).is_some() {
            return self.err(line, format!("array {name} declared twice"));
        }
        self.arrays.push(ArrayDecl { id, name, extents, sharing });
        Ok(())
    }

    fn routine_def(&mut self) -> Result<(), ParseError> {
        let l = self.peek().unwrap();
        let (no, text) = (l.no, l.text.clone());
        let name = text
            .strip_prefix("routine ")
            .and_then(|r| r.strip_suffix(':'))
            .map(str::trim)
            .map(String::from);
        let Some(name) = name else {
            return self.err(no, "expected `routine <name>:`");
        };
        self.pos += 1;
        let mut items = Vec::new();
        while self.peek().is_some_and(|l| l.indent >= 2) {
            items.push(self.item(2)?);
        }
        let id = RoutineId(self.routines.len() as u32);
        if self.routine_ids.insert(name.clone(), id).is_some() {
            return self.err(no, format!("routine {name} defined twice"));
        }
        self.routines.push(Routine { id, name, items });
        Ok(())
    }

    fn item(&mut self, indent: usize) -> Result<ProgramItem, ParseError> {
        let l = self.peek().unwrap();
        let (no, text) = (l.no, l.text.clone());
        if let Some(rest) = text.strip_prefix("epoch ") {
            // `LABEL (serial):` | `LABEL (parallel):`
            let Some(rest) = rest.strip_suffix(':') else {
                return self.err(no, "epoch header must end with `:`");
            };
            let (label, kind) = if let Some(label) = rest.strip_suffix(" (serial)") {
                (label.trim(), EpochKind::Serial)
            } else if let Some(label) = rest.strip_suffix(" (parallel)") {
                (label.trim(), EpochKind::Parallel)
            } else {
                return self.err(no, "expected `(serial)` or `(parallel)`");
            };
            let label = label.to_string();
            self.pos += 1;
            let id = EpochId(self.next_epoch);
            self.next_epoch += 1;
            let stmts = self.block(indent + 1)?;
            return Ok(ProgramItem::Epoch(Epoch { id, label, kind, stmts }));
        }
        if let Some(rest) = text.strip_prefix("repeat ") {
            let Some(count) = rest
                .strip_suffix(" times:")
                .and_then(|c| c.trim().parse::<u32>().ok())
            else {
                return self.err(no, "expected `repeat <n> times:`");
            };
            self.pos += 1;
            let mut body = Vec::new();
            while self.peek().is_some_and(|l| l.indent > indent) {
                body.push(self.item(indent + 1)?);
            }
            return Ok(ProgramItem::Repeat { count, body });
        }
        if let Some(rest) = text.strip_prefix("call ") {
            let name = rest.trim();
            let Some(&rid) = self.routine_ids.get(name) else {
                return self.err(no, format!("unknown routine {name}"));
            };
            self.pos += 1;
            return Ok(ProgramItem::Call(rid));
        }
        self.err(no, format!("expected epoch/repeat/call, got `{text}`"))
    }

    /// Parse statements at exactly `indent` (children go deeper).
    fn block(&mut self, indent: usize) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while let Some(l) = self.peek() {
            if l.indent < indent {
                break;
            }
            if l.indent > indent {
                return self.err(l.no, "unexpected deeper indent");
            }
            let (no, text) = (l.no, l.text.clone());
            if text == "endif" || text == "else" {
                break;
            }
            if text.starts_with("do ")
                || text.starts_with("doall(static) ")
                || text.starts_with("doall(dynamic")
            {
                out.push(self.loop_stmt(indent)?);
            } else if let Some(rest) = text.strip_prefix("if ") {
                let Some(cond_text) = rest.strip_suffix(" then") else {
                    return self.err(no, "if header must end with `then`");
                };
                let cond = self.cond(no, cond_text)?;
                self.pos += 1;
                let then_branch = self.block(indent + 1)?;
                let mut else_branch = Vec::new();
                if self
                    .peek()
                    .is_some_and(|l| l.indent == indent && l.text == "else")
                {
                    self.pos += 1;
                    else_branch = self.block(indent + 1)?;
                }
                let Some(l) = self.peek() else {
                    return self.err(no, "unterminated if (missing endif)");
                };
                if l.indent != indent || l.text != "endif" {
                    return self.err(l.no, "expected `endif`");
                }
                self.pos += 1;
                out.push(Stmt::If(IfStmt { cond, then_branch, else_branch }));
            } else if text.contains('=') {
                out.push(self.assign(no, &text)?);
                self.pos += 1;
            } else {
                return self.err(no, format!("cannot parse statement `{text}`"));
            }
        }
        Ok(out)
    }

    fn loop_stmt(&mut self, indent: usize) -> Result<Stmt, ParseError> {
        let l = self.peek().unwrap();
        let (no, text) = (l.no, l.text.clone());
        let (kind_txt, rest) = if let Some(r) = text.strip_prefix("do ") {
            ("serial", r)
        } else if let Some(r) = text.strip_prefix("doall(static) ") {
            ("static", r)
        } else if let Some(r) = text.strip_prefix("doall(dynamic,chunk=") {
            ("dynamic", r)
        } else {
            return self.err(no, "expected loop");
        };
        let (kind, rest) = if kind_txt == "dynamic" {
            let Some(close) = rest.find(") ") else {
                return self.err(no, "bad dynamic loop header");
            };
            let Ok(chunk) = rest[..close].parse::<u32>() else {
                return self.err(no, "bad chunk size");
            };
            (LoopKind::DoAllDynamic { chunk }, &rest[close + 2..])
        } else if kind_txt == "static" {
            (LoopKind::DoAllStatic, rest)
        } else {
            (LoopKind::Serial, rest)
        };
        // VAR = LO, HI[, STEP][ align ARR]
        let (head, align) = match rest.split_once(" align ") {
            Some((h, a)) => (h, Some(a.trim().to_string())),
            None => (rest, None),
        };
        let Some((var_name, bounds)) = head.split_once('=') else {
            return self.err(no, "expected `var = lo, hi`");
        };
        let var_name = var_name.trim().to_string();
        let parts: Vec<&str> = bounds.split(',').map(str::trim).collect();
        if parts.len() < 2 || parts.len() > 3 {
            return self.err(no, "expected `lo, hi[, step]`");
        }
        let lo = self.affine(no, parts[0])?;
        let hi = self.affine(no, parts[1])?;
        let step = if parts.len() == 3 {
            parts[2]
                .parse::<i64>()
                .map_err(|_| ParseError { line: no, message: "bad step".into() })?
        } else {
            1
        };
        let align = match align {
            Some(name) => match self.array_ids.get(&name) {
                Some(&a) => Some(a),
                None => return self.err(no, format!("unknown align array {name}")),
            },
            None => None,
        };
        self.pos += 1;
        let var = VarId(self.var_names.len() as u32);
        self.var_names.push(var_name.clone());
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        self.scope.push((var_name, var));
        let body = self.block(indent + 1)?;
        self.scope.pop();
        Ok(Stmt::Loop(Loop { id, var, lo, hi, step, kind, body, align, pipeline: Vec::new() }))
    }

    fn lookup_var(&self, line: usize, name: &str) -> Result<VarId, ParseError> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| ParseError {
                line,
                message: format!("unknown loop variable `{name}`"),
            })
    }

    // -- expressions -----------------------------------------------------

    /// Affine expression: terms like `2*i`, `-j`, `15`, joined by +/-.
    fn affine(&self, line: usize, text: &str) -> Result<Affine, ParseError> {
        let mut terms: Vec<(VarId, i64)> = Vec::new();
        let mut constant = 0i64;
        let mut rest = text.trim();
        let mut sign = 1i64;
        if rest.is_empty() {
            return self.err(line, "empty index expression");
        }
        loop {
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix('-') {
                sign = -sign;
                rest = r;
                continue;
            }
            if let Some(r) = rest.strip_prefix('+') {
                rest = r;
                continue;
            }
            // term: INT ['*' IDENT] | IDENT
            let (tok, r) = take_token(rest);
            if tok.is_empty() {
                return self.err(line, format!("bad index expression `{text}`"));
            }
            rest = r;
            if let Ok(k) = tok.parse::<i64>() {
                if let Some(r2) = rest.trim_start().strip_prefix('*') {
                    let (v, r3) = take_token(r2.trim_start());
                    let var = self.lookup_var(line, v)?;
                    terms.push((var, sign * k));
                    rest = r3;
                } else {
                    constant += sign * k;
                }
            } else {
                let var = self.lookup_var(line, tok)?;
                terms.push((var, sign));
            }
            sign = 1;
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            if !(rest.starts_with('+') || rest.starts_with('-')) {
                return self.err(line, format!("junk in index expression: `{rest}`"));
            }
        }
        Ok(Affine::new(terms, constant))
    }

    fn cond(&self, line: usize, text: &str) -> Result<Cond, ParseError> {
        let t = text.trim();
        if let Some(inner) = t.strip_prefix("?(").and_then(|r| r.strip_suffix(')')) {
            return Ok(Cond::NonAffine(Box::new(self.cond(line, inner)?)));
        }
        for (sym, op) in [
            ("==", CmpOp::Eq),
            ("/=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if let Some(pos) = t.find(sym) {
                let lhs = self.affine(line, &t[..pos])?;
                let rhs = self.affine(line, &t[pos + sym.len()..])?;
                return Ok(Cond::Cmp { lhs, op, rhs });
            }
        }
        self.err(line, format!("cannot parse condition `{t}`"))
    }

    fn assign(&mut self, line: usize, text: &str) -> Result<Stmt, ParseError> {
        // WRITE_REF = VEXPR, where WRITE_REF is NAME(idx,...).
        let Some(eq) = find_top_level_eq(text) else {
            return self.err(line, "expected assignment");
        };
        let (lhs, rhs) = (text[..eq].trim(), text[eq + 1..].trim());
        let write = self.array_ref(line, lhs)?;
        let mut reads = Vec::new();
        let mut lex = Lexer { text: rhs, pos: 0 };
        let expr = self.vexpr(line, &mut lex, &mut reads, 0)?;
        lex.skip_ws();
        if !lex.done() {
            return self.err(line, format!("junk after expression: `{}`", lex.rest()));
        }
        Ok(Stmt::Assign(Assign { write, reads, expr, extra_cost: 0 }))
    }

    fn array_ref(&mut self, line: usize, text: &str) -> Result<ArrayRef, ParseError> {
        let Some(open) = text.find('(') else {
            return self.err(line, format!("expected array reference, got `{text}`"));
        };
        let name = text[..open].trim();
        let Some(&array) = self.array_ids.get(name) else {
            return self.err(line, format!("unknown array `{name}`"));
        };
        let Some(close) = text.rfind(')') else {
            return self.err(line, "missing `)` in reference");
        };
        let index: Result<Vec<Affine>, ParseError> = split_top_commas(&text[open + 1..close])
            .into_iter()
            .map(|part| self.affine(line, part))
            .collect();
        let id = RefId(self.next_ref);
        self.next_ref += 1;
        Ok(ArrayRef { id, array, index: index? })
    }

    /// Pratt-style value-expression parser. `min_prec`: 0 any, 1 additive,
    /// 2 multiplicative.
    fn vexpr(
        &mut self,
        line: usize,
        lex: &mut Lexer<'_>,
        reads: &mut Vec<ArrayRef>,
        min_prec: u8,
    ) -> Result<ValExpr, ParseError> {
        let mut lhs = self.vexpr_atom(line, lex, reads)?;
        loop {
            lex.skip_ws();
            let (op, prec) = match lex.peek_char() {
                Some('+') => (1u8, 1u8),
                Some('-') => (2, 1),
                Some('*') => (3, 2),
                Some('/') => (4, 2),
                _ => break,
            };
            if prec < min_prec.max(1) {
                break;
            }
            lex.bump();
            let rhs = self.vexpr(line, lex, reads, prec + 1)?;
            lhs = match op {
                1 => ValExpr::Add(Box::new(lhs), Box::new(rhs)),
                2 => ValExpr::Sub(Box::new(lhs), Box::new(rhs)),
                3 => ValExpr::Mul(Box::new(lhs), Box::new(rhs)),
                _ => ValExpr::Div(Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn vexpr_atom(
        &mut self,
        line: usize,
        lex: &mut Lexer<'_>,
        reads: &mut Vec<ArrayRef>,
    ) -> Result<ValExpr, ParseError> {
        lex.skip_ws();
        match lex.peek_char() {
            Some('(') => {
                lex.bump();
                let inner = self.vexpr(line, lex, reads, 0)?;
                lex.skip_ws();
                if lex.peek_char() != Some(')') {
                    return self.err(line, "missing `)`");
                }
                lex.bump();
                Ok(inner)
            }
            Some('-') => {
                lex.bump();
                let inner = self.vexpr_atom(line, lex, reads)?;
                // Fold unary minus on literals so `(-0.5)` parses to the
                // canonical `Lit(-0.5)` (round-trip fixpoint).
                Ok(match inner {
                    ValExpr::Lit(v) => ValExpr::Lit(-v),
                    other => ValExpr::Neg(Box::new(other)),
                })
            }
            Some('$') => {
                lex.bump();
                let name = lex.take_ident();
                let var = self.lookup_var(line, &name)?;
                Ok(ValExpr::Var(var))
            }
            Some(c) if c.is_ascii_digit() || c == '.' => {
                let num = lex.take_number();
                num.parse::<f64>()
                    .map(ValExpr::Lit)
                    .map_err(|_| ParseError {
                        line,
                        message: format!("bad number `{num}`"),
                    })
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let name = lex.take_ident();
                lex.skip_ws();
                if lex.peek_char() == Some('(') {
                    // function call or array read
                    let args_text = lex.take_parenthesized(line)?;
                    match name.as_str() {
                        "sqrt" | "abs" => {
                            let mut sub = Lexer { text: &args_text, pos: 0 };
                            let a = self.vexpr(line, &mut sub, reads, 0)?;
                            Ok(match name.as_str() {
                                "sqrt" => ValExpr::Sqrt(Box::new(a)),
                                _ => ValExpr::Abs(Box::new(a)),
                            })
                        }
                        "min" | "max" => {
                            let parts = split_top_commas(&args_text);
                            if parts.len() != 2 {
                                return self.err(line, "min/max take two arguments");
                            }
                            let mut l1 = Lexer { text: parts[0], pos: 0 };
                            let a = self.vexpr(line, &mut l1, reads, 0)?;
                            let mut l2 = Lexer { text: parts[1], pos: 0 };
                            let b = self.vexpr(line, &mut l2, reads, 0)?;
                            Ok(if name == "min" {
                                ValExpr::Min(Box::new(a), Box::new(b))
                            } else {
                                ValExpr::Max(Box::new(a), Box::new(b))
                            })
                        }
                        _ => {
                            let full = format!("{name}({args_text})");
                            let r = self.array_ref(line, &full)?;
                            reads.push(r);
                            Ok(ValExpr::Read(reads.len() - 1))
                        }
                    }
                } else {
                    self.err(line, format!("bare identifier `{name}` in expression"))
                }
            }
            other => self.err(line, format!("unexpected `{other:?}` in expression")),
        }
    }
}

// -- lexing helpers ---------------------------------------------------------

struct Lexer<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn done(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn peek_char(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek_char() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_ws(&mut self) {
        while self.peek_char().is_some_and(|c| c == ' ') {
            self.bump();
        }
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while self
            .peek_char()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.bump();
        }
        self.text[start..self.pos].to_string()
    }

    fn take_number(&mut self) -> String {
        let start = self.pos;
        let mut seen_e = false;
        while let Some(c) = self.peek_char() {
            if c.is_ascii_digit() || c == '.' {
                self.bump();
            } else if (c == 'e' || c == 'E') && !seen_e {
                seen_e = true;
                self.bump();
                if self.peek_char() == Some('-') || self.peek_char() == Some('+') {
                    self.bump();
                }
            } else {
                break;
            }
        }
        self.text[start..self.pos].to_string()
    }

    /// Consume `( ... )` (balanced) and return the inside.
    fn take_parenthesized(&mut self, line: usize) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek_char(), Some('('));
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(c) = self.peek_char() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner = self.text[start..self.pos].to_string();
                        self.bump();
                        return Ok(inner);
                    }
                }
                _ => {}
            }
            self.bump();
        }
        Err(ParseError { line, message: "unbalanced parentheses".into() })
    }
}

fn take_token(s: &str) -> (&str, &str) {
    let end = s
        .char_indices()
        .find(|&(_, c)| !(c.is_alphanumeric() || c == '_'))
        .map_or(s.len(), |(i, _)| i);
    (&s[..end], &s[end..])
}

/// Split on commas at parenthesis depth 0.
fn split_top_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

/// Index of the `=` separating lhs from rhs: the first top-level `=` that
/// isn't part of `==`, `<=`, `>=`, `/=`.
fn find_top_level_eq(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut depth = 0usize;
    for i in 0..b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            b'=' if depth == 0 => {
                let prev = if i > 0 { b[i - 1] } else { 0 };
                let next = if i + 1 < b.len() { b[i + 1] } else { 0 };
                if prev != b'=' && prev != b'<' && prev != b'>' && prev != b'/' && next != b'='
                {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::print_program;

    #[test]
    fn parse_minimal_program() {
        let src = "\
program demo
  shared A(8,8)
  epoch init (serial):
    do j = 0, 7
      do i = 0, 7
        A(i,j) = $i*0.5 + 1
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.name, "demo");
        assert_eq!(p.arrays.len(), 1);
        assert_eq!(p.epochs().len(), 1);
    }

    #[test]
    fn parse_full_surface() {
        let src = "\
program full
  shared A(16,16)
  shared B(16,16)
  private T(4)
  routine work:
    epoch w (parallel):
      doall(static) j = 1, 14 align A
        do i = 1, 14
          A(i,j) = (B(i,j-1) + B(i,j+1))*0.25 - sqrt(abs(B(i,j)))/2
          T(0) = min(A(i,j), max(B(i,j), 0.5))
        if j > 3 then
          A(0,j) = 1e-4
        else
          A(1,j) = -2.5
        endif
  epoch init (serial):
    do j0 = 0, 15
      do i0 = 0, 15
        B(i0,j0) = $i0 + $j0*0.125
  repeat 3 times:
    call work
  epoch dyn (parallel):
    doall(dynamic,chunk=4) k = 0, 15
      A(0,k) = B(0,k)
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.routines.len(), 1);
        assert_eq!(p.epochs().len(), 3);
        // Round-trip: print → parse → print is a fixpoint.
        let printed = print_program(&p);
        let p2 = parse_program(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(printed, print_program(&p2));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let src = "program x\n  shared A(4)\n  epoch e (serial):\n    do i = 0, 3\n      A(zz) = 1\n";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("zz"), "{e}");
    }

    #[test]
    fn comment_lines_are_skipped() {
        let src = "\
program c
  shared A(4)
  epoch e (serial):
    do i = 0, 3
      ! prefetch-line A(i)  [covers r9]
      A(i) = 2
";
        let p = parse_program(src).unwrap();
        let text = print_program(&p);
        assert!(!text.contains("prefetch"));
    }

    #[test]
    fn validation_errors_surface() {
        let src = "\
program bad
  shared A(4)
  epoch e (parallel):
    do i = 0, 3
      A(i) = 1
";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("validation"), "{e}");
    }
}
