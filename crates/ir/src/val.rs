//! Scalar `f64` expression trees evaluated per statement instance.

use crate::{VarEnv, VarId};

/// The right-hand side of an [`crate::Assign`]. `Read(k)` refers to the
/// `k`-th element of the statement's read-reference list, so the memory
/// behaviour (which drives the simulation) is decoupled from the arithmetic
/// (which drives the numerics and the FLOP cost).
#[derive(Clone, Debug, PartialEq)]
pub enum ValExpr {
    /// Value loaded by the statement's `k`-th read reference.
    Read(usize),
    /// A literal constant.
    Lit(f64),
    /// The current value of a loop variable, as `f64` (used by array
    /// initialisation patterns like `A(i,j) = i + 2j`).
    Var(VarId),
    Add(Box<ValExpr>, Box<ValExpr>),
    Sub(Box<ValExpr>, Box<ValExpr>),
    Mul(Box<ValExpr>, Box<ValExpr>),
    Div(Box<ValExpr>, Box<ValExpr>),
    Neg(Box<ValExpr>),
    Sqrt(Box<ValExpr>),
    Abs(Box<ValExpr>),
    Min(Box<ValExpr>, Box<ValExpr>),
    Max(Box<ValExpr>, Box<ValExpr>),
}

impl ValExpr {
    /// Evaluate given the loaded values of the read references and the
    /// current loop-variable environment.
    pub fn eval(&self, reads: &[f64], env: &VarEnv) -> f64 {
        match self {
            ValExpr::Read(k) => reads[*k],
            ValExpr::Lit(v) => *v,
            ValExpr::Var(v) => env.get(*v) as f64,
            ValExpr::Add(a, b) => a.eval(reads, env) + b.eval(reads, env),
            ValExpr::Sub(a, b) => a.eval(reads, env) - b.eval(reads, env),
            ValExpr::Mul(a, b) => a.eval(reads, env) * b.eval(reads, env),
            ValExpr::Div(a, b) => a.eval(reads, env) / b.eval(reads, env),
            ValExpr::Neg(a) => -a.eval(reads, env),
            ValExpr::Sqrt(a) => a.eval(reads, env).sqrt(),
            ValExpr::Abs(a) => a.eval(reads, env).abs(),
            ValExpr::Min(a, b) => a.eval(reads, env).min(b.eval(reads, env)),
            ValExpr::Max(a, b) => a.eval(reads, env).max(b.eval(reads, env)),
        }
    }

    /// Cycle cost of the floating-point work, per the Alpha 21064: adds and
    /// multiplies have ~6-cycle latency but pipeline to ~2 cycles effective
    /// in unrolled loops; divides (30+ cycles) and square roots (software
    /// sequence) do not pipeline at all.
    pub fn flops(&self) -> u32 {
        match self {
            ValExpr::Read(_) | ValExpr::Lit(_) | ValExpr::Var(_) => 0,
            ValExpr::Add(a, b)
            | ValExpr::Sub(a, b)
            | ValExpr::Mul(a, b)
            | ValExpr::Min(a, b)
            | ValExpr::Max(a, b) => 2 + a.flops() + b.flops(),
            ValExpr::Div(a, b) => 30 + a.flops() + b.flops(),
            ValExpr::Neg(a) | ValExpr::Abs(a) => 1 + a.flops(),
            ValExpr::Sqrt(a) => 40 + a.flops(),
        }
    }

    /// Highest `Read` index mentioned, plus one (0 when none) — used by the
    /// validator to check the read list is long enough.
    pub fn reads_needed(&self) -> usize {
        match self {
            ValExpr::Read(k) => k + 1,
            ValExpr::Lit(_) | ValExpr::Var(_) => 0,
            ValExpr::Add(a, b)
            | ValExpr::Sub(a, b)
            | ValExpr::Mul(a, b)
            | ValExpr::Div(a, b)
            | ValExpr::Min(a, b)
            | ValExpr::Max(a, b) => a.reads_needed().max(b.reads_needed()),
            ValExpr::Neg(a) | ValExpr::Sqrt(a) | ValExpr::Abs(a) => a.reads_needed(),
        }
    }
}

#[cfg(test)]
mod unit {
    use super::ValExpr::*;
    use crate::{VarEnv, VarId};

    fn ev(e: &super::ValExpr, reads: &[f64]) -> f64 {
        e.eval(reads, &VarEnv::new(0))
    }

    #[test]
    fn eval_arithmetic() {
        // (r0 + 2.0) * r1 - sqrt(r2)
        let e = Sub(
            Box::new(Mul(
                Box::new(Add(Box::new(Read(0)), Box::new(Lit(2.0)))),
                Box::new(Read(1)),
            )),
            Box::new(Sqrt(Box::new(Read(2)))),
        );
        let v = ev(&e, &[1.0, 3.0, 16.0]);
        assert_eq!(v, (1.0 + 2.0) * 3.0 - 4.0);
    }

    #[test]
    fn eval_minmax_abs_neg_div() {
        let e = Min(
            Box::new(Max(Box::new(Read(0)), Box::new(Lit(0.0)))),
            Box::new(Abs(Box::new(Neg(Box::new(Div(
                Box::new(Read(1)),
                Box::new(Lit(2.0)),
            )))))),
        );
        assert_eq!(ev(&e, &[5.0, -8.0]), 4.0);
    }

    #[test]
    fn flop_weights() {
        let fma = Add(
            Box::new(Read(0)),
            Box::new(Mul(Box::new(Read(1)), Box::new(Read(2)))),
        );
        assert_eq!(fma.flops(), 4);
        let d = Div(Box::new(Read(0)), Box::new(Read(1)));
        assert_eq!(d.flops(), 30);
    }

    #[test]
    fn var_leaf_reads_env() {
        let mut env = VarEnv::new(1);
        env.set(VarId(0), 7);
        let e = Add(Box::new(Var(VarId(0))), Box::new(Lit(0.5)));
        assert_eq!(e.eval(&[], &env), 7.5);
        assert_eq!(e.flops(), 2);
        assert_eq!(e.reads_needed(), 0);
    }

    #[test]
    fn reads_needed() {
        let e = Add(Box::new(Read(3)), Box::new(Read(1)));
        assert_eq!(e.reads_needed(), 4);
        assert_eq!(Lit(1.0).reads_needed(), 0);
    }
}
