//! Ergonomic program construction.
//!
//! The builder is how kernels are written (see `ccdp-kernels`). It allocates
//! all identifier spaces (`VarId`, `RefId`, `LoopId`, `EpochId`), converts
//! the operator-overloaded surface syntax ([`Var`] arithmetic, [`VExpr`]
//! trees with embedded reads) into canonical IR, and validates the result on
//! [`ProgramBuilder::finish`].
//!
//! ```
//! use ccdp_ir::{ProgramBuilder, VExpr};
//!
//! let mut pb = ProgramBuilder::new("saxpy");
//! let x = pb.shared("X", &[100]);
//! let y = pb.shared("Y", &[100]);
//! pb.parallel_epoch("axpy", |e| {
//!     e.doall("i", 0, 99, |e, i| {
//!         e.assign(y.at1(i), y.at1(i).rd() + x.at1(i).rd() * 2.0);
//!     });
//! });
//! let prog = pb.finish().unwrap();
//! assert_eq!(prog.epochs().len(), 1);
//! ```

use crate::{
    Affine, ArrayDecl, ArrayId, ArrayRef, Assign, CmpOp, Cond, Epoch, EpochId, EpochKind,
    IfStmt, Loop, LoopId, LoopKind, Program, ProgramItem, RefId, Routine, RoutineId, Sharing,
    Stmt, ValExpr, VarId,
};

/// A loop-variable handle with arithmetic (`i + 1`, `i * 2`, `i - j`, ...).
#[derive(Clone, Copy, Debug)]
pub struct Var(pub VarId);

impl From<Var> for Affine {
    fn from(v: Var) -> Affine {
        Affine::var(v.0)
    }
}

macro_rules! impl_var_ops {
    ($lhs:ty) => {
        impl std::ops::Add<i64> for $lhs {
            type Output = Affine;
            fn add(self, rhs: i64) -> Affine {
                Affine::from(self).add_const(rhs)
            }
        }
        impl std::ops::Sub<i64> for $lhs {
            type Output = Affine;
            fn sub(self, rhs: i64) -> Affine {
                Affine::from(self).add_const(-rhs)
            }
        }
        impl std::ops::Mul<i64> for $lhs {
            type Output = Affine;
            fn mul(self, rhs: i64) -> Affine {
                Affine::from(self).scale(rhs)
            }
        }
        impl std::ops::Add<Var> for $lhs {
            type Output = Affine;
            fn add(self, rhs: Var) -> Affine {
                Affine::add(&Affine::from(self), &Affine::var(rhs.0))
            }
        }
        impl std::ops::Sub<Var> for $lhs {
            type Output = Affine;
            fn sub(self, rhs: Var) -> Affine {
                Affine::sub(&Affine::from(self), &Affine::var(rhs.0))
            }
        }
    };
}
impl_var_ops!(Var);

impl std::ops::Sub<Var> for i64 {
    type Output = Affine;
    fn sub(self, rhs: Var) -> Affine {
        Affine::var(rhs.0).scale(-1).add_const(self)
    }
}

impl std::ops::Add<Var> for i64 {
    type Output = Affine;
    fn add(self, rhs: Var) -> Affine {
        Affine::var(rhs.0).add_const(self)
    }
}

impl std::ops::Mul<Var> for i64 {
    type Output = Affine;
    fn mul(self, rhs: Var) -> Affine {
        Affine::var(rhs.0).scale(self)
    }
}

impl std::ops::Add<Affine> for Var {
    type Output = Affine;
    fn add(self, rhs: Affine) -> Affine {
        Affine::add(&Affine::var(self.0), &rhs)
    }
}

impl std::ops::Add<i64> for Affine {
    type Output = Affine;
    fn add(self, rhs: i64) -> Affine {
        self.add_const(rhs)
    }
}

impl std::ops::Sub<i64> for Affine {
    type Output = Affine;
    fn sub(self, rhs: i64) -> Affine {
        self.add_const(-rhs)
    }
}

impl std::ops::Mul<i64> for Affine {
    type Output = Affine;
    fn mul(self, rhs: i64) -> Affine {
        self.scale(rhs)
    }
}

impl std::ops::Add<Var> for Affine {
    type Output = Affine;
    fn add(self, rhs: Var) -> Affine {
        Affine::add(&self, &Affine::var(rhs.0))
    }
}

impl std::ops::Sub<Var> for Affine {
    type Output = Affine;
    fn sub(self, rhs: Var) -> Affine {
        Affine::sub(&self, &Affine::var(rhs.0))
    }
}

/// A handle to a declared array.
#[derive(Clone, Copy, Debug)]
pub struct ArrayHandle {
    id: ArrayId,
    rank: usize,
}

impl ArrayHandle {
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// Reference a 1-D array element.
    pub fn at1(&self, i: impl Into<Affine>) -> RefSpec {
        assert_eq!(self.rank, 1, "at1 on rank-{} array", self.rank);
        RefSpec { array: self.id, index: vec![i.into()] }
    }

    /// Reference a 2-D array element.
    pub fn at2(&self, i: impl Into<Affine>, j: impl Into<Affine>) -> RefSpec {
        assert_eq!(self.rank, 2, "at2 on rank-{} array", self.rank);
        RefSpec { array: self.id, index: vec![i.into(), j.into()] }
    }

    /// Reference a 3-D array element.
    pub fn at3(
        &self,
        i: impl Into<Affine>,
        j: impl Into<Affine>,
        k: impl Into<Affine>,
    ) -> RefSpec {
        assert_eq!(self.rank, 3, "at3 on rank-{} array", self.rank);
        RefSpec { array: self.id, index: vec![i.into(), j.into(), k.into()] }
    }
}

/// An array reference being built (no `RefId` yet).
#[derive(Clone, Debug)]
pub struct RefSpec {
    array: ArrayId,
    index: Vec<Affine>,
}

impl RefSpec {
    /// Use this reference as a read inside a value expression.
    pub fn rd(self) -> VExpr {
        VExpr::Rd(self)
    }
}

/// Value-expression surface syntax: a [`ValExpr`] whose leaves may be
/// [`RefSpec`]s. Lowered by [`BlockCtx::assign`], which allocates the
/// statement's read list.
#[derive(Clone, Debug)]
pub enum VExpr {
    Rd(RefSpec),
    Lit(f64),
    /// Loop-variable value as `f64`.
    Var(Var),
    Add(Box<VExpr>, Box<VExpr>),
    Sub(Box<VExpr>, Box<VExpr>),
    Mul(Box<VExpr>, Box<VExpr>),
    Div(Box<VExpr>, Box<VExpr>),
    Neg(Box<VExpr>),
    Sqrt(Box<VExpr>),
    Abs(Box<VExpr>),
    Min(Box<VExpr>, Box<VExpr>),
    Max(Box<VExpr>, Box<VExpr>),
}

impl VExpr {
    pub fn lit(v: f64) -> VExpr {
        VExpr::Lit(v)
    }

    pub fn sqrt(self) -> VExpr {
        VExpr::Sqrt(Box::new(self))
    }

    pub fn abs(self) -> VExpr {
        VExpr::Abs(Box::new(self))
    }

    pub fn min(self, o: impl Into<VExpr>) -> VExpr {
        VExpr::Min(Box::new(self), Box::new(o.into()))
    }

    pub fn max(self, o: impl Into<VExpr>) -> VExpr {
        VExpr::Max(Box::new(self), Box::new(o.into()))
    }
}

impl From<f64> for VExpr {
    fn from(v: f64) -> VExpr {
        VExpr::Lit(v)
    }
}

impl From<RefSpec> for VExpr {
    fn from(r: RefSpec) -> VExpr {
        VExpr::Rd(r)
    }
}

impl From<Var> for VExpr {
    fn from(v: Var) -> VExpr {
        VExpr::Var(v)
    }
}

impl Var {
    /// Use the loop variable's value in a value expression.
    pub fn val(self) -> VExpr {
        VExpr::Var(self)
    }
}

macro_rules! impl_vexpr_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl<T: Into<VExpr>> std::ops::$trait<T> for VExpr {
            type Output = VExpr;
            fn $method(self, rhs: T) -> VExpr {
                VExpr::$variant(Box::new(self), Box::new(rhs.into()))
            }
        }
        impl std::ops::$trait<VExpr> for f64 {
            type Output = VExpr;
            fn $method(self, rhs: VExpr) -> VExpr {
                VExpr::$variant(Box::new(VExpr::Lit(self)), Box::new(rhs))
            }
        }
    };
}
impl_vexpr_binop!(Add, add, Add);
impl_vexpr_binop!(Sub, sub, Sub);
impl_vexpr_binop!(Mul, mul, Mul);
impl_vexpr_binop!(Div, div, Div);

impl std::ops::Neg for VExpr {
    type Output = VExpr;
    fn neg(self) -> VExpr {
        VExpr::Neg(Box::new(self))
    }
}

/// Condition surface syntax.
#[derive(Clone, Debug)]
pub struct CondB(Cond);

impl CondB {
    pub fn cmp(lhs: impl Into<Affine>, op: CmpOp, rhs: impl Into<Affine>) -> CondB {
        CondB(Cond::Cmp { lhs: lhs.into(), op, rhs: rhs.into() })
    }

    pub fn eq(l: impl Into<Affine>, r: impl Into<Affine>) -> CondB {
        Self::cmp(l, CmpOp::Eq, r)
    }

    pub fn ne(l: impl Into<Affine>, r: impl Into<Affine>) -> CondB {
        Self::cmp(l, CmpOp::Ne, r)
    }

    pub fn lt(l: impl Into<Affine>, r: impl Into<Affine>) -> CondB {
        Self::cmp(l, CmpOp::Lt, r)
    }

    pub fn le(l: impl Into<Affine>, r: impl Into<Affine>) -> CondB {
        Self::cmp(l, CmpOp::Le, r)
    }

    pub fn gt(l: impl Into<Affine>, r: impl Into<Affine>) -> CondB {
        Self::cmp(l, CmpOp::Gt, r)
    }

    pub fn ge(l: impl Into<Affine>, r: impl Into<Affine>) -> CondB {
        Self::cmp(l, CmpOp::Ge, r)
    }

    /// Mark the condition opaque to the compiler (data-dependent branch).
    pub fn non_affine(self) -> CondB {
        CondB(Cond::NonAffine(Box::new(self.0)))
    }
}

/// Shared mutable id-allocation state.
#[derive(Default)]
struct Counters {
    var_names: Vec<String>,
    next_ref: u32,
    next_loop: u32,
    next_epoch: u32,
}

impl Counters {
    fn new_var(&mut self, name: &str) -> VarId {
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        id
    }

    fn new_ref(&mut self) -> RefId {
        let id = RefId(self.next_ref);
        self.next_ref += 1;
        id
    }

    fn new_loop(&mut self) -> LoopId {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        id
    }

    fn new_epoch(&mut self) -> EpochId {
        let id = EpochId(self.next_epoch);
        self.next_epoch += 1;
        id
    }
}

/// Builds one [`Program`].
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    routines: Vec<Routine>,
    items: Vec<ProgramItem>,
    c: Counters,
}

impl ProgramBuilder {
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            arrays: Vec::new(),
            routines: Vec::new(),
            items: Vec::new(),
            c: Counters::default(),
        }
    }

    fn declare(&mut self, name: &str, extents: &[usize], sharing: Sharing) -> ArrayHandle {
        let id = ArrayId(self.arrays.len() as u32);
        assert!(!extents.is_empty(), "array {name} needs at least one dimension");
        self.arrays.push(ArrayDecl {
            id,
            name: name.to_string(),
            extents: extents.to_vec(),
            sharing,
        });
        ArrayHandle { id, rank: extents.len() }
    }

    /// Declare a shared (distributed) array.
    pub fn shared(&mut self, name: &str, extents: &[usize]) -> ArrayHandle {
        self.declare(name, extents, Sharing::Shared)
    }

    /// Declare a per-PE private array.
    pub fn private(&mut self, name: &str, extents: &[usize]) -> ArrayHandle {
        self.declare(name, extents, Sharing::Private)
    }

    /// Append a serial epoch to the main sequence.
    pub fn serial_epoch(&mut self, label: &str, f: impl FnOnce(&mut BlockCtx)) {
        let e = build_epoch(&mut self.c, label, EpochKind::Serial, f);
        self.items.push(ProgramItem::Epoch(e));
    }

    /// Append a parallel epoch to the main sequence.
    pub fn parallel_epoch(&mut self, label: &str, f: impl FnOnce(&mut BlockCtx)) {
        let e = build_epoch(&mut self.c, label, EpochKind::Parallel, f);
        self.items.push(ProgramItem::Epoch(e));
    }

    /// Append a `Repeat` block.
    pub fn repeat(&mut self, count: u32, f: impl FnOnce(&mut EpochCtx)) {
        let mut ctx = EpochCtx { c: &mut self.c, items: Vec::new() };
        f(&mut ctx);
        let body = ctx.items;
        self.items.push(ProgramItem::Repeat { count, body });
    }

    /// Define a routine and get its id (call it with [`ProgramBuilder::call`]).
    pub fn routine(&mut self, name: &str, f: impl FnOnce(&mut EpochCtx)) -> RoutineId {
        let mut ctx = EpochCtx { c: &mut self.c, items: Vec::new() };
        f(&mut ctx);
        let id = RoutineId(self.routines.len() as u32);
        self.routines.push(Routine { id, name: name.to_string(), items: ctx.items });
        id
    }

    /// Append a call to a routine.
    pub fn call(&mut self, r: RoutineId) {
        self.items.push(ProgramItem::Call(r));
    }

    /// Finish and validate.
    pub fn finish(self) -> Result<Program, crate::ValidateError> {
        let p = Program {
            name: self.name,
            arrays: self.arrays,
            routines: self.routines,
            items: self.items,
            var_names: self.c.var_names,
            n_refs: self.c.next_ref,
            n_loops: self.c.next_loop,
            n_epochs: self.c.next_epoch,
        };
        crate::validate(&p)?;
        Ok(p)
    }
}

/// Context for sequencing epochs inside `Repeat` bodies and routines.
pub struct EpochCtx<'a> {
    c: &'a mut Counters,
    items: Vec<ProgramItem>,
}

impl EpochCtx<'_> {
    pub fn serial_epoch(&mut self, label: &str, f: impl FnOnce(&mut BlockCtx)) {
        let e = build_epoch(self.c, label, EpochKind::Serial, f);
        self.items.push(ProgramItem::Epoch(e));
    }

    pub fn parallel_epoch(&mut self, label: &str, f: impl FnOnce(&mut BlockCtx)) {
        let e = build_epoch(self.c, label, EpochKind::Parallel, f);
        self.items.push(ProgramItem::Epoch(e));
    }

    pub fn repeat(&mut self, count: u32, f: impl FnOnce(&mut EpochCtx)) {
        let mut ctx = EpochCtx { c: self.c, items: Vec::new() };
        f(&mut ctx);
        let body = ctx.items;
        self.items.push(ProgramItem::Repeat { count, body });
    }

    pub fn call(&mut self, r: RoutineId) {
        self.items.push(ProgramItem::Call(r));
    }
}

fn build_epoch(
    c: &mut Counters,
    label: &str,
    kind: EpochKind,
    f: impl FnOnce(&mut BlockCtx),
) -> Epoch {
    let id = c.new_epoch();
    let mut ctx = BlockCtx { c, stmts: Vec::new() };
    f(&mut ctx);
    Epoch { id, label: label.to_string(), kind, stmts: ctx.stmts }
}

/// Context for building a statement list (epoch bodies, loop bodies, branch
/// arms).
pub struct BlockCtx<'a> {
    c: &'a mut Counters,
    stmts: Vec<Stmt>,
}

impl BlockCtx<'_> {
    fn lower_ref(&mut self, spec: RefSpec) -> ArrayRef {
        ArrayRef { id: self.c.new_ref(), array: spec.array, index: spec.index }
    }

    fn lower_vexpr(&mut self, e: VExpr, reads: &mut Vec<ArrayRef>) -> ValExpr {
        match e {
            VExpr::Rd(spec) => {
                let r = self.lower_ref(spec);
                reads.push(r);
                ValExpr::Read(reads.len() - 1)
            }
            VExpr::Lit(v) => ValExpr::Lit(v),
            VExpr::Var(v) => ValExpr::Var(v.0),
            VExpr::Add(a, b) => ValExpr::Add(
                Box::new(self.lower_vexpr(*a, reads)),
                Box::new(self.lower_vexpr(*b, reads)),
            ),
            VExpr::Sub(a, b) => ValExpr::Sub(
                Box::new(self.lower_vexpr(*a, reads)),
                Box::new(self.lower_vexpr(*b, reads)),
            ),
            VExpr::Mul(a, b) => ValExpr::Mul(
                Box::new(self.lower_vexpr(*a, reads)),
                Box::new(self.lower_vexpr(*b, reads)),
            ),
            VExpr::Div(a, b) => ValExpr::Div(
                Box::new(self.lower_vexpr(*a, reads)),
                Box::new(self.lower_vexpr(*b, reads)),
            ),
            VExpr::Neg(a) => ValExpr::Neg(Box::new(self.lower_vexpr(*a, reads))),
            VExpr::Sqrt(a) => ValExpr::Sqrt(Box::new(self.lower_vexpr(*a, reads))),
            VExpr::Abs(a) => ValExpr::Abs(Box::new(self.lower_vexpr(*a, reads))),
            VExpr::Min(a, b) => ValExpr::Min(
                Box::new(self.lower_vexpr(*a, reads)),
                Box::new(self.lower_vexpr(*b, reads)),
            ),
            VExpr::Max(a, b) => ValExpr::Max(
                Box::new(self.lower_vexpr(*a, reads)),
                Box::new(self.lower_vexpr(*b, reads)),
            ),
        }
    }

    /// `write = expr`.
    pub fn assign(&mut self, write: RefSpec, expr: impl Into<VExpr>) {
        self.assign_cost(write, expr, 0);
    }

    /// `write = expr` with extra per-instance cycle cost.
    pub fn assign_cost(&mut self, write: RefSpec, expr: impl Into<VExpr>, extra_cost: u32) {
        let mut reads = Vec::new();
        let val = self.lower_vexpr(expr.into(), &mut reads);
        let write = self.lower_ref(write);
        self.stmts.push(Stmt::Assign(Assign { write, reads, expr: val, extra_cost }));
    }

    #[allow(clippy::too_many_arguments)]
    fn push_loop(
        &mut self,
        name: &str,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        step: i64,
        kind: LoopKind,
        align: Option<ArrayId>,
        f: impl FnOnce(&mut BlockCtx, Var),
    ) {
        assert!(step >= 1, "loop step must be >= 1");
        let var = self.c.new_var(name);
        let id = self.c.new_loop();
        let mut inner = BlockCtx { c: self.c, stmts: Vec::new() };
        f(&mut inner, Var(var));
        let body = inner.stmts;
        self.stmts.push(Stmt::Loop(Loop {
            id,
            var,
            lo: lo.into(),
            hi: hi.into(),
            step,
            kind,
            body,
            align,
            pipeline: Vec::new(),
        }));
    }

    /// A serial loop `for name in lo..=hi`.
    pub fn serial(
        &mut self,
        name: &str,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        f: impl FnOnce(&mut BlockCtx, Var),
    ) {
        self.push_loop(name, lo, hi, 1, LoopKind::Serial, None, f);
    }

    /// A serial loop with stride.
    pub fn serial_step(
        &mut self,
        name: &str,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        step: i64,
        f: impl FnOnce(&mut BlockCtx, Var),
    ) {
        self.push_loop(name, lo, hi, step, LoopKind::Serial, None, f);
    }

    /// A statically scheduled DOALL loop.
    pub fn doall(
        &mut self,
        name: &str,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        f: impl FnOnce(&mut BlockCtx, Var),
    ) {
        self.push_loop(name, lo, hi, 1, LoopKind::DoAllStatic, None, f);
    }

    /// A statically scheduled DOALL whose iterations are distributed to
    /// match `align`'s data distribution (CRAFT `doshared` on a template):
    /// iteration `v` runs on the PE that owns index `v` of the array's
    /// distributed dimension.
    pub fn doall_aligned(
        &mut self,
        name: &str,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        align: &ArrayHandle,
        f: impl FnOnce(&mut BlockCtx, Var),
    ) {
        self.push_loop(name, lo, hi, 1, LoopKind::DoAllStatic, Some(align.id()), f);
    }

    /// A dynamically scheduled DOALL loop (chunked self-scheduling).
    pub fn doall_dynamic(
        &mut self,
        name: &str,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        chunk: u32,
        f: impl FnOnce(&mut BlockCtx, Var),
    ) {
        assert!(chunk >= 1);
        self.push_loop(name, lo, hi, 1, LoopKind::DoAllDynamic { chunk }, None, f);
    }

    /// `if cond { ... }`.
    pub fn if_(&mut self, cond: CondB, f: impl FnOnce(&mut BlockCtx)) {
        self.if_else(cond, f, |_| {});
    }

    /// `if cond { ... } else { ... }`.
    pub fn if_else(
        &mut self,
        cond: CondB,
        then_f: impl FnOnce(&mut BlockCtx),
        else_f: impl FnOnce(&mut BlockCtx),
    ) {
        let mut t = BlockCtx { c: self.c, stmts: Vec::new() };
        then_f(&mut t);
        let then_branch = t.stmts;
        let mut e = BlockCtx { c: self.c, stmts: Vec::new() };
        else_f(&mut e);
        let else_branch = e.stmts;
        self.stmts.push(Stmt::If(IfStmt { cond: cond.0, then_branch, else_branch }));
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{walk, RefAccess};

    #[test]
    fn var_arithmetic_builds_affines() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[10, 10]);
        pb.parallel_epoch("e", |e| {
            e.doall("i", 0, 8, |e, i| {
                e.assign(a.at2(i + 1, i * 2), a.at2(i, 0).rd() + 1.0);
            });
        });
        let p = pb.finish().unwrap();
        let refs = walk::collect_refs_in_stmts(&p.epochs()[0].stmts);
        let w = refs.iter().find(|r| r.access == RefAccess::Write).unwrap();
        assert_eq!(w.r.index[0].constant_term(), 1);
        assert_eq!(w.r.index[1].coeff(w.r.index[1].vars().next().unwrap()), 2);
    }

    #[test]
    fn assign_allocates_sequential_read_slots() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4]);
        let b = pb.shared("B", &[4]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 3, |e, i| {
                e.assign(a.at1(i), a.at1(i).rd() * b.at1(i).rd() + b.at1(i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let refs = walk::collect_refs_in_stmts(&p.epochs()[0].stmts);
        let reads: Vec<_> = refs.iter().filter(|r| r.access == RefAccess::Read).collect();
        assert_eq!(reads.len(), 3);
        // RefIds unique
        let mut ids: Vec<u32> = refs.iter().map(|r| r.r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), refs.len());
    }

    #[test]
    fn routine_call_and_repeat_schedule() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8]);
        let r = pb.routine("calc", |rc| {
            rc.parallel_epoch("inner", |e| {
                e.doall("i", 0, 7, |e, i| {
                    e.assign(a.at1(i), 1.0);
                });
            });
        });
        pb.serial_epoch("init", |e| {
            e.serial("i", 0, 7, |e, i| e.assign(a.at1(i), 0.0));
        });
        pb.repeat(5, |rep| {
            rep.call(r);
            rep.call(r);
        });
        let p = pb.finish().unwrap();
        let sched = p.static_schedule();
        assert_eq!(sched.len(), 3); // init + 2 calls (inlined once each)
        assert!(!sched[0].in_repeat);
        assert!(sched[1].in_repeat && sched[2].in_repeat);
    }

    #[test]
    #[should_panic(expected = "at2 on rank-1")]
    fn rank_mismatch_panics() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4]);
        let _ = a.at2(0, 0);
    }
}
