//! Epochs, routines, and whole programs.

use crate::{ArrayDecl, ArrayId, Stmt};

/// Identifies an epoch within one [`Program`] (unique across routines and
/// the main item list).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EpochId(pub u32);

impl EpochId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a routine within one [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RoutineId(pub u32);

/// Serial or parallel (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochKind {
    /// One task, executed on PE 0; other PEs wait at the closing barrier.
    Serial,
    /// Contains exactly one DOALL loop, possibly wrapped in serial loops
    /// (executed redundantly by all PEs) — each DOALL execution instance is
    /// a *phase* ending in a barrier.
    Parallel,
}

/// The unit of the parallel execution model: synchronization and a main
/// memory update happen at every epoch boundary.
#[derive(Clone, Debug)]
pub struct Epoch {
    pub id: EpochId,
    pub label: String,
    pub kind: EpochKind,
    pub stmts: Vec<Stmt>,
}

/// An element of a program's (or routine's) top-level sequence.
#[derive(Clone, Debug)]
pub enum ProgramItem {
    Epoch(Epoch),
    /// Call a routine: splice its items here. The paper's *interprocedural
    /// analysis* requirement comes from exactly this (SWIM's CALC1..CALC3).
    Call(RoutineId),
    /// Execute `body` `count` times (time-stepping outer loops; TOMCATV and
    /// SWIM run 100 iterations in the paper's setup).
    Repeat { count: u32, body: Vec<ProgramItem> },
}

/// A named, callable sequence of items.
#[derive(Clone, Debug)]
pub struct Routine {
    pub id: RoutineId,
    pub name: String,
    pub items: Vec<ProgramItem>,
}

/// A whole program.
#[derive(Clone, Debug)]
pub struct Program {
    pub name: String,
    pub arrays: Vec<ArrayDecl>,
    pub routines: Vec<Routine>,
    pub items: Vec<ProgramItem>,
    /// Loop-variable names, indexed by `VarId`.
    pub var_names: Vec<String>,
    /// Size of the `RefId` space (transformation passes allocate more).
    pub n_refs: u32,
    /// Size of the `LoopId` space.
    pub n_loops: u32,
    /// Size of the `EpochId` space.
    pub n_epochs: u32,
}

impl Program {
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    pub fn array_by_name(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    pub fn routine(&self, id: RoutineId) -> &Routine {
        &self.routines[id.0 as usize]
    }

    pub fn var_name(&self, v: crate::VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// The *static* epoch schedule: the order epochs execute in, with calls
    /// inlined and each `Repeat` body appearing **once**, plus a flag telling
    /// whether the epoch is inside any repeat (i.e. executes more than once,
    /// so staleness can flow "backwards" from later epochs in the body).
    ///
    /// This is what the stale reference analysis iterates over; the simulator
    /// instead walks items dynamically.
    pub fn static_schedule(&self) -> Vec<ScheduledEpoch<'_>> {
        let mut out = Vec::new();
        self.schedule_items(&self.items, false, &mut out, 0);
        out
    }

    fn schedule_items<'a>(
        &'a self,
        items: &'a [ProgramItem],
        in_repeat: bool,
        out: &mut Vec<ScheduledEpoch<'a>>,
        depth: u32,
    ) {
        assert!(depth < 16, "call/repeat nesting too deep (cycle?)");
        for item in items {
            match item {
                ProgramItem::Epoch(e) => out.push(ScheduledEpoch { epoch: e, in_repeat }),
                ProgramItem::Call(r) => {
                    self.schedule_items(&self.routine(*r).items, in_repeat, out, depth + 1)
                }
                ProgramItem::Repeat { body, .. } => {
                    self.schedule_items(body, true, out, depth + 1)
                }
            }
        }
    }

    /// Every epoch (schedule order), ignoring repeat structure.
    pub fn epochs(&self) -> Vec<&Epoch> {
        self.static_schedule().into_iter().map(|s| s.epoch).collect()
    }

    /// Total shared-array words.
    pub fn shared_words(&self) -> usize {
        self.arrays
            .iter()
            .filter(|a| a.sharing == crate::Sharing::Shared)
            .map(|a| a.len())
            .sum()
    }
}

/// One entry of [`Program::static_schedule`].
#[derive(Clone, Copy, Debug)]
pub struct ScheduledEpoch<'a> {
    pub epoch: &'a Epoch,
    /// True when the epoch executes repeatedly (inside a `Repeat`), so a
    /// textually-later write in the same repeat body precedes it dynamically.
    pub in_repeat: bool,
}
