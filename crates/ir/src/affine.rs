//! Affine expressions over loop variables.
//!
//! Array subscripts and loop bounds in the IR are affine: a sum of
//! `coefficient * loop_var` terms plus a constant. This is the class the
//! paper's analyses assume ("the compiler needs to construct expressions for
//! the address of each reference in terms of the loop induction variables and
//! constants", §4.2); non-affine subscripts are handled conservatively at the
//! analysis layer, not represented here.

use crate::VarId;

/// `Σ coeff·var + constant` with canonical form: terms sorted by variable,
/// no zero coefficients.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Affine {
    terms: Vec<(VarId, i64)>,
    constant: i64,
}

impl std::fmt::Debug for Affine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.constant);
        }
        for (i, (v, c)) in self.terms.iter().enumerate() {
            if i > 0 && *c >= 0 {
                write!(f, "+")?;
            }
            match *c {
                1 => write!(f, "v{}", v.0)?,
                -1 => write!(f, "-v{}", v.0)?,
                c => write!(f, "{}*v{}", c, v.0)?,
            }
        }
        match self.constant.cmp(&0) {
            std::cmp::Ordering::Greater => write!(f, "+{}", self.constant),
            std::cmp::Ordering::Less => write!(f, "{}", self.constant),
            std::cmp::Ordering::Equal => Ok(()),
        }
    }
}

impl Affine {
    /// The constant expression.
    pub fn constant(c: i64) -> Self {
        Affine { terms: Vec::new(), constant: c }
    }

    /// The expression `1·v`.
    pub fn var(v: VarId) -> Self {
        Affine { terms: vec![(v, 1)], constant: 0 }
    }

    /// Build from raw parts (canonicalizes).
    pub fn new(mut terms: Vec<(VarId, i64)>, constant: i64) -> Self {
        terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, i64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0);
        Affine { terms: out, constant }
    }

    pub fn terms(&self) -> &[(VarId, i64)] {
        &self.terms
    }

    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// `Some(c)` iff the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.constant)
    }

    /// Coefficient of `v` (0 when absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms
            .iter()
            .find(|&&(tv, _)| tv == v)
            .map_or(0, |&(_, c)| c)
    }

    /// Does the expression mention `v`?
    pub fn uses(&self, v: VarId) -> bool {
        self.coeff(v) != 0
    }

    /// Variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    pub fn add(&self, other: &Affine) -> Affine {
        let mut terms = self.terms.clone();
        terms.extend_from_slice(&other.terms);
        Affine::new(terms, self.constant + other.constant)
    }

    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    pub fn add_const(&self, c: i64) -> Affine {
        Affine { terms: self.terms.clone(), constant: self.constant + c }
    }

    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Substitute `v := repl` (used by software pipelining to form the
    /// prefetch subscript at iteration `i + d`).
    pub fn substitute(&self, v: VarId, repl: &Affine) -> Affine {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut terms: Vec<(VarId, i64)> = self
            .terms
            .iter()
            .copied()
            .filter(|&(tv, _)| tv != v)
            .collect();
        let scaled = repl.scale(c);
        terms.extend_from_slice(&scaled.terms);
        Affine::new(terms, self.constant + scaled.constant)
    }

    /// Evaluate under an environment binding every mentioned variable.
    pub fn eval(&self, env: &VarEnv) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c * env.get(v);
        }
        acc
    }

    /// Strength-reduction decomposition against one loop variable: returns
    /// the invariant remainder (this expression with `v`'s term removed) and
    /// `v`'s coefficient — the per-unit-of-`v` stride. The simulator's
    /// compiled-trace layer evaluates the remainder once per loop entry and
    /// advances the subscript by `coeff * step` per iteration.
    pub fn split_on(&self, v: VarId) -> (Affine, i64) {
        let c = self.coeff(v);
        if c == 0 {
            return (self.clone(), 0);
        }
        let terms = self
            .terms
            .iter()
            .copied()
            .filter(|&(tv, _)| tv != v)
            .collect();
        (Affine { terms, constant: self.constant }, c)
    }

    /// Two subscripts are *uniformly generated* (paper §4.2) when they have
    /// identical variable terms — they differ only in the constant. Returns
    /// the constant difference `self - other` in that case.
    pub fn uniform_difference(&self, other: &Affine) -> Option<i64> {
        (self.terms == other.terms).then(|| self.constant - other.constant)
    }

    /// Evaluate the min and max over per-variable inclusive ranges. Exact
    /// because affine functions are monotone in each variable separately.
    /// Variables absent from `bounds` must be bound in `env`.
    pub fn range_over(
        &self,
        env: &VarEnv,
        bounds: &[(VarId, i64, i64)],
    ) -> (i64, i64) {
        let mut lo = self.constant;
        let mut hi = self.constant;
        'terms: for &(v, c) in &self.terms {
            for &(bv, blo, bhi) in bounds {
                if bv == v {
                    if c >= 0 {
                        lo += c * blo;
                        hi += c * bhi;
                    } else {
                        lo += c * bhi;
                        hi += c * blo;
                    }
                    continue 'terms;
                }
            }
            let val = c * env.get(v);
            lo += val;
            hi += val;
        }
        (lo, hi)
    }
}

impl From<i64> for Affine {
    fn from(c: i64) -> Self {
        Affine::constant(c)
    }
}

/// A dense environment mapping [`VarId`]s to values during interpretation.
#[derive(Clone, Debug, Default)]
pub struct VarEnv {
    vals: Vec<i64>,
    bound: Vec<bool>,
}

impl VarEnv {
    pub fn new(n_vars: usize) -> Self {
        VarEnv { vals: vec![0; n_vars], bound: vec![false; n_vars] }
    }

    pub fn set(&mut self, v: VarId, val: i64) {
        let i = v.index();
        if i >= self.vals.len() {
            self.vals.resize(i + 1, 0);
            self.bound.resize(i + 1, false);
        }
        self.vals[i] = val;
        self.bound[i] = true;
    }

    pub fn unset(&mut self, v: VarId) {
        if v.index() < self.bound.len() {
            self.bound[v.index()] = false;
        }
    }

    pub fn get(&self, v: VarId) -> i64 {
        debug_assert!(
            v.index() < self.bound.len() && self.bound[v.index()],
            "unbound loop variable v{}",
            v.0
        );
        self.vals[v.index()]
    }

    pub fn is_bound(&self, v: VarId) -> bool {
        v.index() < self.bound.len() && self.bound[v.index()]
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    const I: VarId = VarId(0);
    const J: VarId = VarId(1);

    #[test]
    fn canonical_form_merges_and_drops_zeros() {
        let a = Affine::new(vec![(J, 2), (I, 3), (J, -2)], 5);
        assert_eq!(a.terms(), &[(I, 3)]);
        assert_eq!(a.constant_term(), 5);
    }

    #[test]
    fn eval_and_arith() {
        let mut env = VarEnv::new(2);
        env.set(I, 4);
        env.set(J, 10);
        let a = Affine::new(vec![(I, 2), (J, -1)], 7); // 2i - j + 7
        assert_eq!(a.eval(&env), 5);
        let b = Affine::var(I).add_const(1);
        assert_eq!(a.add(&b).eval(&env), 5 + 5);
        assert_eq!(a.sub(&b).eval(&env), 0);
        assert_eq!(a.scale(-3).eval(&env), -15);
    }

    #[test]
    fn substitute_shifts_iteration() {
        // A(2i+1) at i := i+4  =>  A(2i+9)
        let sub = Affine::var(I).add_const(4);
        let idx = Affine::new(vec![(I, 2)], 1);
        let shifted = idx.substitute(I, &sub);
        assert_eq!(shifted, Affine::new(vec![(I, 2)], 9));
        // untouched when var absent
        let j_idx = Affine::var(J);
        assert_eq!(j_idx.substitute(I, &sub), j_idx);
    }

    #[test]
    fn uniform_difference_detects_group() {
        let a = Affine::new(vec![(I, 1), (J, 513)], 0);
        let b = Affine::new(vec![(I, 1), (J, 513)], -1);
        let c = Affine::new(vec![(I, 2), (J, 513)], 0);
        assert_eq!(a.uniform_difference(&b), Some(1));
        assert_eq!(a.uniform_difference(&c), None);
    }

    #[test]
    fn range_over_is_exact_for_monotone() {
        // f = 3i - 2j + 1 over i in [0,5], j in [1,4]
        let f = Affine::new(vec![(I, 3), (J, -2)], 1);
        let env = VarEnv::new(2);
        let (lo, hi) = f.range_over(&env, &[(I, 0, 5), (J, 1, 4)]);
        assert_eq!((lo, hi), (0 - 8 + 1, 15 - 2 + 1));
    }

    #[test]
    fn split_on_separates_stride_from_invariant() {
        let mut env = VarEnv::new(2);
        env.set(J, 7);
        let f = Affine::new(vec![(I, 3), (J, -2)], 5); // 3i - 2j + 5
        let (inv, stride) = f.split_on(I);
        assert_eq!(stride, 3);
        assert_eq!(inv.eval(&env), -14 + 5);
        assert!(!inv.uses(I));
        // Reassembling at any i matches direct evaluation.
        env.set(I, 11);
        assert_eq!(inv.eval(&env) + stride * 11, f.eval(&env));
        // Absent variable: zero stride, expression unchanged.
        let (inv, stride) = f.split_on(VarId(9));
        assert_eq!((inv, stride), (f, 0));
    }

    #[test]
    fn range_over_uses_env_for_bound_vars() {
        let f = Affine::new(vec![(I, 1), (J, 1)], 0);
        let mut env = VarEnv::new(2);
        env.set(J, 100);
        let (lo, hi) = f.range_over(&env, &[(I, 0, 9)]);
        assert_eq!((lo, hi), (100, 109));
    }

    #[test]
    #[should_panic(expected = "unbound loop variable")]
    #[cfg(debug_assertions)]
    fn unbound_variable_panics_in_debug() {
        let env = VarEnv::new(1);
        let _ = Affine::var(I).eval(&env);
    }
}
