//! Loop-nest IR for the CCDP reproduction.
//!
//! Programs in this IR are what the Polaris parallelizer handed the authors
//! of the paper: a sequence of **epochs** (serial code, or a parallel DOALL
//! nest), over **shared or private rectangular arrays** of `f64`, with
//! **affine array subscripts** in the enclosing loop variables. Real `f64`
//! arithmetic is carried (a small expression language, [`ValExpr`]) so the
//! simulated kernels compute real results that can be checked against golden
//! references.
//!
//! Structure of a program:
//!
//! ```text
//! Program
//!   ├── arrays:   ArrayDecl*          (column-major, shared or private)
//!   ├── routines: Routine*            (callable epoch sequences, e.g. SWIM's CALC1..3)
//!   └── items:    ProgramItem*        (Epoch | Call | Repeat)
//!           Epoch ── Serial(stmts) | Parallel(wrapper loops + one DOALL)
//! ```
//!
//! The execution model follows the paper (§3.1): barriers and a main-memory
//! update at every epoch boundary; a parallel epoch's DOALL iterations are
//! independent; serial epochs run on one PE. A DOALL nested inside serial
//! *wrapper* loops (TOMCATV's loops 100/120) executes one *phase* per wrapper
//! iteration, with a barrier after each phase.

mod affine;
mod builder;
pub mod parse;
pub mod print;
mod program;
mod stmt;
mod types;
mod val;
mod validate;
mod walk;

pub use affine::{Affine, VarEnv};
pub use builder::{
    ArrayHandle, BlockCtx, CondB, EpochCtx, ProgramBuilder, RefSpec, VExpr, Var,
};
pub use parse::{parse_program, ParseError};
pub use print::{fmt_affine, print_program};
pub use program::{Epoch, EpochId, EpochKind, Program, ProgramItem, Routine, RoutineId};
pub use stmt::{
    ArrayRef, Assign, CmpOp, Cond, IfStmt, Loop, LoopId, LoopKind, PipelinedPrefetch,
    PrefetchKind, PrefetchStmt, Stmt,
};
pub use types::{ArrayDecl, ArrayId, RefId, Sharing, VarId};
pub use val::ValExpr;
pub use validate::{validate, ValidateError};
pub use walk::{
    collect_refs_in_stmts, cond_core, find_doall, for_each_loop_mut, for_each_stmt,
    CollectedRef, LoopCtx, RefAccess,
};
