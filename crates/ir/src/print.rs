//! Pretty-printer: renders programs as Fortran-flavoured pseudo-code.
//!
//! Used by snapshot tests (the scheduling algorithm's decisions are visible
//! as printed prefetch operations) and by the examples.

use std::fmt::Write as _;

use crate::{
    Affine, Cond, LoopKind, PrefetchKind, Program, ProgramItem, Stmt, ValExpr,
};

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", p.name);
    for a in &p.arrays {
        let dims: Vec<String> = a.extents.iter().map(|e| e.to_string()).collect();
        let kind = match a.sharing {
            crate::Sharing::Shared => "shared",
            crate::Sharing::Private => "private",
        };
        let _ = writeln!(out, "  {} {}({})", kind, a.name, dims.join(","));
    }
    for r in &p.routines {
        let _ = writeln!(out, "  routine {}:", r.name);
        print_items(p, &r.items, 2, &mut out);
    }
    print_items(p, &p.items, 1, &mut out);
    out
}

fn print_items(p: &Program, items: &[ProgramItem], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for item in items {
        match item {
            ProgramItem::Epoch(e) => {
                let kind = match e.kind {
                    crate::EpochKind::Serial => "serial",
                    crate::EpochKind::Parallel => "parallel",
                };
                let _ = writeln!(out, "{pad}epoch {} ({kind}):", e.label);
                print_stmts(p, &e.stmts, depth + 1, out);
            }
            ProgramItem::Call(r) => {
                let _ = writeln!(out, "{pad}call {}", p.routine(*r).name);
            }
            ProgramItem::Repeat { count, body } => {
                let _ = writeln!(out, "{pad}repeat {count} times:");
                print_items(p, body, depth + 1, out);
            }
        }
    }
}

fn print_stmts(p: &Program, stmts: &[Stmt], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                let mut reads = Vec::with_capacity(a.reads.len());
                for r in &a.reads {
                    reads.push(fmt_ref(p, r));
                }
                let _ = writeln!(
                    out,
                    "{pad}{} = {}",
                    fmt_ref(p, &a.write),
                    fmt_val(p, &a.expr, &reads)
                );
            }
            Stmt::Loop(l) => {
                let kw = match l.kind {
                    LoopKind::Serial => "do",
                    LoopKind::DoAllStatic => "doall(static)",
                    LoopKind::DoAllDynamic { chunk } => {
                        let _ = writeln!(
                            out,
                            "{pad}doall(dynamic,chunk={chunk}) {} = {}, {}{}",
                            p.var_name(l.var),
                            fmt_affine(p, &l.lo),
                            fmt_affine(p, &l.hi),
                            step_suffix(l.step),
                        );
                        print_pipeline(p, l, depth + 1, out);
                        print_stmts(p, &l.body, depth + 1, out);
                        continue;
                    }
                };
                let align = match l.align {
                    Some(aid) => format!(" align {}", p.array(aid).name),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{pad}{kw} {} = {}, {}{}{}",
                    p.var_name(l.var),
                    fmt_affine(p, &l.lo),
                    fmt_affine(p, &l.hi),
                    step_suffix(l.step),
                    align,
                );
                print_pipeline(p, l, depth + 1, out);
                print_stmts(p, &l.body, depth + 1, out);
            }
            Stmt::If(i) => {
                let _ = writeln!(out, "{pad}if {} then", fmt_cond(p, &i.cond));
                print_stmts(p, &i.then_branch, depth + 1, out);
                if !i.else_branch.is_empty() {
                    let _ = writeln!(out, "{pad}else");
                    print_stmts(p, &i.else_branch, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}endif");
            }
            Stmt::Prefetch(pf) => match &pf.kind {
                PrefetchKind::Line { array, index, covers } => {
                    let idx: Vec<String> =
                        index.iter().map(|a| fmt_affine(p, a)).collect();
                    let _ = writeln!(
                        out,
                        "{pad}! prefetch-line {}({})  [covers r{}]",
                        p.array(*array).name,
                        idx.join(","),
                        covers.0
                    );
                }
                PrefetchKind::Vector { array, over, covers } => {
                    let levels: Vec<String> =
                        over.iter().map(|l| format!("L{}", l.0)).collect();
                    let _ = writeln!(
                        out,
                        "{pad}! prefetch-vector {} over [{}]  [covers r{}]",
                        p.array(*array).name,
                        levels.join(","),
                        covers.0
                    );
                }
            },
        }
    }
}

fn print_pipeline(p: &Program, l: &crate::Loop, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for pf in &l.pipeline {
        let idx: Vec<String> = pf.index.iter().map(|a| fmt_affine(p, a)).collect();
        let _ = writeln!(
            out,
            "{pad}! pipelined-prefetch {}({}) d={} every={}  [covers r{}]",
            p.array(pf.array).name,
            idx.join(","),
            pf.distance,
            pf.every,
            pf.covers.0
        );
    }
}

fn step_suffix(step: i64) -> String {
    if step == 1 {
        String::new()
    } else {
        format!(", {step}")
    }
}

/// Render an affine expression with variable names.
pub fn fmt_affine(p: &Program, a: &Affine) -> String {
    if a.terms().is_empty() {
        return a.constant_term().to_string();
    }
    let mut s = String::new();
    for (i, &(v, c)) in a.terms().iter().enumerate() {
        let name = p.var_name(v);
        if i > 0 && c >= 0 {
            s.push('+');
        }
        match c {
            1 => s.push_str(name),
            -1 => {
                s.push('-');
                s.push_str(name);
            }
            c => {
                let _ = write!(s, "{c}*{name}");
            }
        }
    }
    let k = a.constant_term();
    if k > 0 {
        let _ = write!(s, "+{k}");
    } else if k < 0 {
        let _ = write!(s, "{k}");
    }
    s
}

fn fmt_ref(p: &Program, r: &crate::ArrayRef) -> String {
    let idx: Vec<String> = r.index.iter().map(|a| fmt_affine(p, a)).collect();
    format!("{}({})", p.array(r.array).name, idx.join(","))
}

fn fmt_cond(p: &Program, c: &Cond) -> String {
    match c {
        Cond::Cmp { lhs, op, rhs } => {
            let op = match op {
                crate::CmpOp::Eq => "==",
                crate::CmpOp::Ne => "/=",
                crate::CmpOp::Lt => "<",
                crate::CmpOp::Le => "<=",
                crate::CmpOp::Gt => ">",
                crate::CmpOp::Ge => ">=",
            };
            format!("{} {op} {}", fmt_affine(p, lhs), fmt_affine(p, rhs))
        }
        Cond::NonAffine(inner) => format!("?({})", fmt_cond(p, inner)),
    }
}

fn fmt_val(prog: &Program, e: &ValExpr, reads: &[String]) -> String {
    fn prec(e: &ValExpr) -> u8 {
        match e {
            ValExpr::Add(..) | ValExpr::Sub(..) => 1,
            ValExpr::Mul(..) | ValExpr::Div(..) => 2,
            _ => 3,
        }
    }
    fn go(prog: &Program, e: &ValExpr, reads: &[String], parent_prec: u8) -> String {
        let mine = prec(e);
        let s = match e {
            ValExpr::Read(k) => reads
                .get(*k)
                .cloned()
                .unwrap_or_else(|| format!("<r{k}?>")),
            ValExpr::Lit(v) => {
                if *v >= 0.0 {
                    format!("{v}")
                } else {
                    format!("({v})")
                }
            }
            ValExpr::Var(v) => format!("${}", prog.var_name(*v)),
            ValExpr::Add(a, b) => {
                format!("{} + {}", go(prog, a, reads, 1), go(prog, b, reads, 1))
            }
            ValExpr::Sub(a, b) => {
                format!("{} - {}", go(prog, a, reads, 1), go(prog, b, reads, 2))
            }
            ValExpr::Mul(a, b) => {
                format!("{}*{}", go(prog, a, reads, 2), go(prog, b, reads, 2))
            }
            ValExpr::Div(a, b) => {
                format!("{}/{}", go(prog, a, reads, 2), go(prog, b, reads, 3))
            }
            ValExpr::Neg(a) => format!("-{}", go(prog, a, reads, 3)),
            ValExpr::Sqrt(a) => format!("sqrt({})", go(prog, a, reads, 0)),
            ValExpr::Abs(a) => format!("abs({})", go(prog, a, reads, 0)),
            ValExpr::Min(a, b) => {
                format!("min({}, {})", go(prog, a, reads, 0), go(prog, b, reads, 0))
            }
            ValExpr::Max(a, b) => {
                format!("max({}, {})", go(prog, a, reads, 0), go(prog, b, reads, 0))
            }
        };
        if mine < parent_prec {
            format!("({s})")
        } else {
            s
        }
    }
    go(prog, e, reads, 0)
}

#[cfg(test)]
mod unit {
    use crate::{CondB, ProgramBuilder};

    #[test]
    fn prints_a_small_program() {
        let mut pb = ProgramBuilder::new("demo");
        let a = pb.shared("A", &[8, 8]);
        let b = pb.private("T", &[8]);
        pb.parallel_epoch("sweep", |e| {
            e.doall("j", 1, 6, |e, j| {
                e.serial("i", 0, 7, |e, i| {
                    e.assign(
                        a.at2(i, j),
                        (a.at2(i, j - 1).rd() + a.at2(i, j + 1).rd()) * 0.5 - b.at1(i).rd(),
                    );
                });
                e.if_(CondB::eq(j, 1), |e| {
                    e.assign(b.at1(0), 0.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        let text = crate::print_program(&p);
        assert!(text.contains("program demo"), "{text}");
        assert!(text.contains("shared A(8,8)"), "{text}");
        assert!(text.contains("private T(8)"), "{text}");
        assert!(text.contains("doall(static) j = 1, 6"), "{text}");
        assert!(text.contains("A(i,j) = (A(i,j-1) + A(i,j+1))*0.5 - T(i)"), "{text}");
        assert!(text.contains("if j == 1 then"), "{text}");
    }
}
