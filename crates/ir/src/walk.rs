//! Traversal utilities: visiting statements and collecting array references
//! together with their loop/branch context.

use crate::{ArrayRef, Cond, Loop, LoopId, LoopKind, Stmt, VarId};
use crate::Affine;

/// Read or write position of a collected reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefAccess {
    Read,
    Write,
}

/// Snapshot of an enclosing loop header.
#[derive(Clone, Debug)]
pub struct LoopCtx {
    pub id: LoopId,
    pub var: VarId,
    pub lo: Affine,
    pub hi: Affine,
    pub step: i64,
    pub kind: LoopKind,
    /// Data-aligned scheduling template (see [`crate::Loop::align`]).
    pub align: Option<crate::ArrayId>,
    /// True when this loop's body contains no further loops.
    pub is_innermost: bool,
}

/// One array reference plus everything the CCDP analyses need to know about
/// where it sits.
#[derive(Clone, Debug)]
pub struct CollectedRef {
    pub r: ArrayRef,
    pub access: RefAccess,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopCtx>,
    /// Any enclosing `if`?
    pub under_if: bool,
    /// Any enclosing `if` with a non-affine condition?
    pub under_nonaffine_if: bool,
    /// Walk-order sequence number (defines "textually earlier" within the
    /// statement list; used by the moving-back scheduler).
    pub seq: u32,
}

impl CollectedRef {
    /// The directly enclosing loop, if any.
    pub fn enclosing_loop(&self) -> Option<&LoopCtx> {
        self.loops.last()
    }

    /// Is this reference inside an innermost loop (paper Fig. 1's first
    /// filter)?
    pub fn in_innermost_loop(&self) -> bool {
        self.enclosing_loop().is_some_and(|l| l.is_innermost)
    }
}

/// Does a statement list contain any loop?
fn has_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Loop(_) => true,
        Stmt::If(i) => has_loop(&i.then_branch) || has_loop(&i.else_branch),
        _ => false,
    })
}

struct Collector {
    out: Vec<CollectedRef>,
    loops: Vec<LoopCtx>,
    if_depth: u32,
    nonaffine_if_depth: u32,
    seq: u32,
}

impl Collector {
    fn push_ref(&mut self, r: &ArrayRef, access: RefAccess) {
        let seq = self.seq;
        self.seq += 1;
        self.out.push(CollectedRef {
            r: r.clone(),
            access,
            loops: self.loops.clone(),
            under_if: self.if_depth > 0,
            under_nonaffine_if: self.nonaffine_if_depth > 0,
            seq,
        });
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    for r in &a.reads {
                        self.push_ref(r, RefAccess::Read);
                    }
                    self.push_ref(&a.write, RefAccess::Write);
                }
                Stmt::Loop(l) => {
                    self.loops.push(LoopCtx {
                        id: l.id,
                        var: l.var,
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: l.step,
                        kind: l.kind,
                        align: l.align,
                        is_innermost: !has_loop(&l.body),
                    });
                    self.walk(&l.body);
                    self.loops.pop();
                }
                Stmt::If(i) => {
                    let nonaffine = !i.cond.is_affine();
                    self.if_depth += 1;
                    if nonaffine {
                        self.nonaffine_if_depth += 1;
                    }
                    self.walk(&i.then_branch);
                    self.walk(&i.else_branch);
                    if nonaffine {
                        self.nonaffine_if_depth -= 1;
                    }
                    self.if_depth -= 1;
                }
                Stmt::Prefetch(_) => {
                    // Prefetches are not data references for analysis purposes.
                }
            }
        }
    }
}

/// Collect every array reference in a statement list (an epoch body),
/// outermost-to-innermost walk order.
pub fn collect_refs_in_stmts(stmts: &[Stmt]) -> Vec<CollectedRef> {
    let mut c = Collector {
        out: Vec::new(),
        loops: Vec::new(),
        if_depth: 0,
        nonaffine_if_depth: 0,
        seq: 0,
    };
    c.walk(stmts);
    c.out
}

/// Depth-first pre-order visit of every statement (including nested).
pub fn for_each_stmt<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::Loop(l) => for_each_stmt(&l.body, f),
            Stmt::If(i) => {
                for_each_stmt(&i.then_branch, f);
                for_each_stmt(&i.else_branch, f);
            }
            _ => {}
        }
    }
}

/// Visit every loop mutably (pre-order). Used by transformation passes.
pub fn for_each_loop_mut(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Loop)) {
    for s in stmts {
        match s {
            Stmt::Loop(l) => {
                f(l);
                for_each_loop_mut(&mut l.body, f);
            }
            Stmt::If(i) => {
                for_each_loop_mut(&mut i.then_branch, f);
                for_each_loop_mut(&mut i.else_branch, f);
            }
            _ => {}
        }
    }
}

/// Find the (unique) DOALL loop in a parallel epoch body, with the serial
/// wrapper loops around it (outermost first). Returns `None` when no DOALL
/// is present.
pub fn find_doall(stmts: &[Stmt]) -> Option<(Vec<&Loop>, &Loop)> {
    fn go<'a>(stmts: &'a [Stmt], wrappers: &mut Vec<&'a Loop>) -> Option<&'a Loop> {
        for s in stmts {
            if let Stmt::Loop(l) = s {
                if l.kind.is_doall() {
                    return Some(l);
                }
                wrappers.push(l);
                if let Some(d) = go(&l.body, wrappers) {
                    return Some(d);
                }
                wrappers.pop();
            }
        }
        None
    }
    let mut wrappers = Vec::new();
    let d = go(stmts, &mut wrappers)?;
    Some((wrappers, d))
}

/// Is `cond` usable by compile-time analysis and `NonAffine` otherwise —
/// recursively unwrap to the affine core for runtime evaluation.
pub fn cond_core(c: &Cond) -> &Cond {
    match c {
        Cond::NonAffine(inner) => cond_core(inner),
        other => other,
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{CondB, ProgramBuilder};

    fn two_level_program() -> crate::Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 0, 15, |e, j| {
                e.serial("i", 0, 15, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j).rd() + 1.0);
                });
                e.if_(CondB::eq(j, 0), |e| {
                    e.assign(a.at2(0, j), 0.0);
                });
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn innermost_detection() {
        let p = two_level_program();
        let refs = collect_refs_in_stmts(&p.epochs()[0].stmts);
        // refs inside the i-loop are innermost; the if-guarded write under
        // only the doall is not (the doall body contains the i-loop).
        let inner: Vec<_> = refs.iter().filter(|r| r.in_innermost_loop()).collect();
        assert_eq!(inner.len(), 2); // read + write of the i-loop assign
        let guarded = refs.iter().find(|r| r.under_if).unwrap();
        assert!(!guarded.in_innermost_loop());
        assert_eq!(guarded.loops.len(), 1);
    }

    #[test]
    fn seq_numbers_strictly_increase() {
        let p = two_level_program();
        let refs = collect_refs_in_stmts(&p.epochs()[0].stmts);
        for w in refs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn find_doall_with_wrapper() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8, 8]);
        pb.parallel_epoch("e", |e| {
            e.serial("t", 0, 3, |e, _t| {
                e.doall("i", 0, 7, |e, i| {
                    e.assign(a.at2(i, 0), 1.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        let (wrappers, d) = find_doall(&p.epochs()[0].stmts).unwrap();
        assert_eq!(wrappers.len(), 1);
        assert!(d.kind.is_doall());
    }

    #[test]
    fn for_each_stmt_counts_all() {
        let p = two_level_program();
        let mut n = 0;
        for_each_stmt(&p.epochs()[0].stmts, &mut |_| n += 1);
        // doall, serial, assign, if, assign
        assert_eq!(n, 5);
    }
}
