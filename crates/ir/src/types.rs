//! Identifier newtypes and array declarations.

/// Identifies an array within one [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ArrayId(pub u32);

/// Identifies a loop variable within one [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// Identifies a *static* array reference (one textual occurrence) within one
/// [`crate::Program`]. Analysis results — staleness, prefetch coverage — are
/// keyed by `RefId`, exactly as the paper's compiler annotates source
/// references.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RefId(pub u32);

impl ArrayId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VarId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RefId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether an array lives in the shared address space (distributed across
/// PEs, subject to the coherence problem) or is private to each PE.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sharing {
    /// One distributed instance; the coherence problem applies.
    Shared,
    /// One private instance *per PE* (scratch space, accumulators).
    Private,
}

/// A rectangular `f64` array. Storage is **column-major** (Fortran order):
/// `extents[0]` is the fastest-varying (contiguous) dimension.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    pub id: ArrayId,
    pub name: String,
    pub extents: Vec<usize>,
    pub sharing: Sharing,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Column-major linear strides: `strides[0] == 1`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = Vec::with_capacity(self.extents.len());
        let mut acc = 1usize;
        for &e in &self.extents {
            s.push(acc);
            acc *= e;
        }
        s
    }

    /// Column-major linear offset of a coordinate vector.
    ///
    /// Debug-asserts bounds; release builds rely on the validator plus the
    /// simulator's bounds checks.
    pub fn linearize(&self, coords: &[i64]) -> usize {
        debug_assert_eq!(coords.len(), self.extents.len());
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!(
                c >= 0 && (c as usize) < self.extents[d],
                "array {}: index {} out of bounds 0..{} in dim {}",
                self.name,
                c,
                self.extents[d],
                d
            );
            off += c as usize * stride;
            stride *= self.extents[d];
        }
        off
    }

    /// Inverse of [`ArrayDecl::linearize`].
    pub fn delinearize(&self, mut off: usize) -> Vec<i64> {
        let mut coords = Vec::with_capacity(self.extents.len());
        for &e in &self.extents {
            coords.push((off % e) as i64);
            off /= e;
        }
        coords
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn arr(extents: &[usize]) -> ArrayDecl {
        ArrayDecl {
            id: ArrayId(0),
            name: "A".into(),
            extents: extents.to_vec(),
            sharing: Sharing::Shared,
        }
    }

    #[test]
    fn column_major_linearization() {
        let a = arr(&[4, 3]);
        assert_eq!(a.linearize(&[0, 0]), 0);
        assert_eq!(a.linearize(&[1, 0]), 1); // first dim contiguous
        assert_eq!(a.linearize(&[0, 1]), 4);
        assert_eq!(a.linearize(&[3, 2]), 11);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn strides_match_linearize() {
        let a = arr(&[5, 7, 2]);
        let s = a.strides();
        assert_eq!(s, vec![1, 5, 35]);
        assert_eq!(a.linearize(&[2, 3, 1]), 2 + 3 * 5 + 35);
    }

    #[test]
    fn delinearize_roundtrip() {
        let a = arr(&[6, 4, 3]);
        for off in 0..a.len() {
            assert_eq!(a.linearize(&a.delinearize(off)), off);
        }
    }
}
