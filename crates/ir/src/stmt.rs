//! Statements: assignments, loops, conditionals, and prefetch operations.

use crate::{Affine, ArrayId, RefId, ValExpr, VarId};

/// Identifies a loop within one [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LoopId(pub u32);

impl LoopId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One static array reference: `array(index[0], index[1], ...)` with affine
/// subscripts. Whether it is a read or a write is positional (the `write`
/// field vs the `reads` list of an [`Assign`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayRef {
    pub id: RefId,
    pub array: ArrayId,
    pub index: Vec<Affine>,
}

/// `write = expr(reads...)`, the only computation statement.
///
/// `extra_cost` models non-memory, non-FLOP work per instance (index
/// arithmetic beyond the modelled subscripts, branch overhead of the source
/// code this statement abstracts).
#[derive(Clone, Debug)]
pub struct Assign {
    pub write: ArrayRef,
    pub reads: Vec<ArrayRef>,
    pub expr: ValExpr,
    pub extra_cost: u32,
}

/// How a loop's iterations are scheduled (paper Fig. 2 dispatches on this).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// Ordinary sequential loop.
    Serial,
    /// Parallel DOALL, statically scheduled: iteration blocks are assigned to
    /// PEs at compile time (block distribution to match data distribution,
    /// as both the BASE and CCDP codes in the paper do).
    DoAllStatic,
    /// Parallel DOALL, dynamically scheduled: chunks of `chunk` iterations
    /// are handed to idle PEs at run time. The compiler cannot know the
    /// iteration→PE mapping (Fig. 2, case 3).
    DoAllDynamic { chunk: u32 },
}

impl LoopKind {
    pub fn is_doall(self) -> bool {
        !matches!(self, LoopKind::Serial)
    }
}

/// A prefetch scheduled by software pipelining (Mowry), attached to the loop
/// it pipelines across. At iteration `i` the executing PE issues a cache-line
/// prefetch for `target` evaluated at iteration `i + distance` (if that
/// iteration is assigned to the same PE); a prologue at the PE's first
/// iteration covers the initial `distance` iterations.
#[derive(Clone, Debug)]
pub struct PipelinedPrefetch {
    /// The reference being covered (same `RefId` as the covered read).
    pub covers: RefId,
    /// Subscripts of the prefetched element *at the issuing iteration* —
    /// i.e. the covered reference's subscripts with the loop variable already
    /// substituted by `var + distance`.
    pub array: ArrayId,
    pub index: Vec<Affine>,
    pub distance: u32,
    /// Issue cadence in iterations: 1 = every iteration; `line_words/|c·s|`
    /// when the reference has self-spatial locality along the loop (one
    /// prefetch per cache line — the paper §4.2's "exploit self-spatial
    /// reuse via loop unrolling", modelled without literal unrolling).
    pub every: u32,
}

/// A counted loop `for var in lo..=hi step step`, with affine bounds in the
/// enclosing loop variables.
#[derive(Clone, Debug)]
pub struct Loop {
    pub id: LoopId,
    pub var: VarId,
    pub lo: Affine,
    pub hi: Affine,
    pub step: i64,
    pub kind: LoopKind,
    pub body: Vec<Stmt>,
    /// For a static DOALL: distribute iterations like this array's
    /// distributed dimension (CRAFT `doshared` alignment to a template) —
    /// iteration `v` executes on the PE owning index `v` of that dimension.
    /// `None` = plain block-of-count scheduling.
    pub align: Option<ArrayId>,
    /// Software-pipelined prefetches attached by the scheduler (empty until
    /// the CCDP prefetch scheduling pass runs).
    pub pipeline: Vec<PipelinedPrefetch>,
}

/// Comparison operators for affine conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// A branch condition.
#[derive(Clone, Debug)]
pub enum Cond {
    /// Affine comparison the compiler can reason about.
    Cmp { lhs: Affine, op: CmpOp, rhs: Affine },
    /// A condition the compiler must treat as opaque (data-dependent branch);
    /// the wrapped condition is still evaluated at run time so execution is
    /// deterministic. Analyses must assume both branches possible.
    NonAffine(Box<Cond>),
}

impl Cond {
    /// Is the condition analyzable at compile time?
    pub fn is_affine(&self) -> bool {
        matches!(self, Cond::Cmp { .. })
    }
}

/// A two-way branch.
#[derive(Clone, Debug)]
pub struct IfStmt {
    pub cond: Cond,
    pub then_branch: Vec<Stmt>,
    pub else_branch: Vec<Stmt>,
}

/// An explicit prefetch operation inserted by the CCDP scheduling pass
/// (vector prefetch generation and moving-back produce these; software
/// pipelining uses [`PipelinedPrefetch`] loop annotations instead).
#[derive(Clone, Debug)]
pub struct PrefetchStmt {
    pub kind: PrefetchKind,
}

/// The two prefetch operation types of the paper (§4.3).
#[derive(Clone, Debug)]
pub enum PrefetchKind {
    /// Fetch the cache line containing `array(index...)` into the prefetch
    /// queue (the T3D's word-granularity DTB-Annex prefetch, generalized to
    /// a line). Produced by moving-back.
    Line {
        /// Reference this prefetch covers.
        covers: RefId,
        array: ArrayId,
        index: Vec<Affine>,
    },
    /// Fetch the whole section that reference `covers` will touch over the
    /// iteration ranges of the loops in `over` (innermost-first order), as a
    /// strided block transfer (`shmem_get`-style). Placed immediately before
    /// `over.last()` — the outermost pulled loop. For a DOALL in `over`,
    /// only the issuing PE's assigned iteration range is covered.
    Vector { covers: RefId, array: ArrayId, over: Vec<LoopId> },
}

impl PrefetchKind {
    pub fn covers(&self) -> RefId {
        match self {
            PrefetchKind::Line { covers, .. } | PrefetchKind::Vector { covers, .. } => *covers,
        }
    }

    pub fn array(&self) -> ArrayId {
        match self {
            PrefetchKind::Line { array, .. } | PrefetchKind::Vector { array, .. } => *array,
        }
    }
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    Assign(Assign),
    Loop(Loop),
    If(IfStmt),
    Prefetch(PrefetchStmt),
}

impl Stmt {
    pub fn as_loop(&self) -> Option<&Loop> {
        match self {
            Stmt::Loop(l) => Some(l),
            _ => None,
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(3, 4) && !CmpOp::Lt.eval(4, 4));
        assert!(CmpOp::Le.eval(4, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(4, 4));
    }

    #[test]
    fn nonaffine_wrapping() {
        let c = Cond::Cmp {
            lhs: Affine::constant(0),
            op: CmpOp::Eq,
            rhs: Affine::constant(0),
        };
        assert!(c.is_affine());
        assert!(!Cond::NonAffine(Box::new(c)).is_affine());
    }

    #[test]
    fn loop_kind_classification() {
        assert!(!LoopKind::Serial.is_doall());
        assert!(LoopKind::DoAllStatic.is_doall());
        assert!(LoopKind::DoAllDynamic { chunk: 4 }.is_doall());
    }
}
