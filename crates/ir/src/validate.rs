//! Structural validation of programs.
//!
//! Run automatically by [`crate::ProgramBuilder::finish`]; transformation
//! passes (prefetch materialization) re-run it on their output so a bug in a
//! pass surfaces here rather than as a simulator panic.

use std::collections::HashSet;

use crate::{
    walk, Affine, ArrayRef, Cond, Epoch, EpochKind, Program, ProgramItem, Stmt, VarId,
};

/// A structural defect found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    RankMismatch { array: String, expected: usize, got: usize },
    ZeroExtent { array: String },
    DuplicateRefId { id: u32 },
    DuplicateLoopId { id: u32 },
    UnboundVar { var: u32, context: String },
    SerialEpochHasDoall { epoch: String },
    ParallelEpochDoallCount { epoch: String, count: usize },
    NestedDoall { epoch: String },
    AssignOutsideDoall { epoch: String },
    ReadListTooShort { epoch: String },
    BadCall { routine: u32 },
    RecursiveRoutine { routine: String },
    EmptyRepeat,
    DuplicateArrayName { name: String },
    /// A reference (or prefetch) names an `ArrayId` the program never
    /// declared. Without this check the bad id only surfaces as an
    /// out-of-bounds panic deep inside `dist::layout`.
    UnknownArray { id: u32 },
    /// A loop whose step is zero or negative: `while v <= hi` would either
    /// spin forever or run backwards.
    NonPositiveStep { step: i64 },
    /// A loop with constant bounds and `lo > hi`: zero (or negative) trip
    /// count, i.e. a silently empty epoch body.
    EmptyConstantLoop { lo: i64, hi: i64 },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::RankMismatch { array, expected, got } => {
                write!(f, "reference to {array} has {got} subscripts, array has rank {expected}")
            }
            ValidateError::ZeroExtent { array } => write!(f, "array {array} has a zero extent"),
            ValidateError::DuplicateRefId { id } => write!(f, "duplicate RefId {id}"),
            ValidateError::DuplicateLoopId { id } => write!(f, "duplicate LoopId {id}"),
            ValidateError::UnboundVar { var, context } => {
                write!(f, "v{var} used outside its loop in {context}")
            }
            ValidateError::SerialEpochHasDoall { epoch } => {
                write!(f, "serial epoch '{epoch}' contains a DOALL loop")
            }
            ValidateError::ParallelEpochDoallCount { epoch, count } => {
                write!(f, "parallel epoch '{epoch}' contains {count} DOALL loops (need exactly 1)")
            }
            ValidateError::NestedDoall { epoch } => {
                write!(f, "epoch '{epoch}' nests a DOALL inside a DOALL")
            }
            ValidateError::AssignOutsideDoall { epoch } => {
                write!(f, "parallel epoch '{epoch}' has an assignment outside its DOALL")
            }
            ValidateError::ReadListTooShort { epoch } => {
                write!(f, "assignment in '{epoch}' reads more slots than its read list has")
            }
            ValidateError::BadCall { routine } => write!(f, "call to unknown routine {routine}"),
            ValidateError::RecursiveRoutine { routine } => {
                write!(f, "routine '{routine}' is (mutually) recursive")
            }
            ValidateError::EmptyRepeat => write!(f, "repeat with count 0"),
            ValidateError::DuplicateArrayName { name } => {
                write!(f, "two arrays named '{name}'")
            }
            ValidateError::UnknownArray { id } => {
                write!(f, "reference to undeclared array id {id}")
            }
            ValidateError::NonPositiveStep { step } => {
                write!(f, "loop step {step} is not positive")
            }
            ValidateError::EmptyConstantLoop { lo, hi } => {
                write!(f, "loop bounds {lo}..{hi} give a zero/negative trip count")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a whole program.
pub fn validate(p: &Program) -> Result<(), ValidateError> {
    let mut names = HashSet::new();
    for a in &p.arrays {
        if !names.insert(a.name.as_str()) {
            return Err(ValidateError::DuplicateArrayName { name: a.name.clone() });
        }
        if a.extents.contains(&0) {
            return Err(ValidateError::ZeroExtent { array: a.name.clone() });
        }
    }

    check_items(p, &p.items, &mut Vec::new())?;
    for r in &p.routines {
        check_items(p, &r.items, &mut vec![r.id.0])?;
    }

    // Global id uniqueness across the whole program. A routine may be
    // called from several sites, so the schedule can contain the same epoch
    // (same ids) more than once — check each epoch exactly once.
    let mut ref_ids = HashSet::new();
    let mut loop_ids = HashSet::new();
    let mut seen_epochs = HashSet::new();
    let mut n_loops = 0usize;
    for e in p.epochs() {
        if !seen_epochs.insert(e.id) {
            continue;
        }
        for cr in walk::collect_refs_in_stmts(&e.stmts) {
            if !ref_ids.insert(cr.r.id.0) {
                return Err(ValidateError::DuplicateRefId { id: cr.r.id.0 });
            }
        }
        walk::for_each_stmt(&e.stmts, &mut |s| {
            if let Stmt::Loop(l) = s {
                loop_ids.insert(l.id.0);
                n_loops += 1;
            }
        });
    }
    if loop_ids.len() != n_loops {
        return Err(ValidateError::DuplicateLoopId { id: 0 });
    }

    Ok(())
}

fn check_items(
    p: &Program,
    items: &[ProgramItem],
    call_stack: &mut Vec<u32>,
) -> Result<(), ValidateError> {
    for item in items {
        match item {
            ProgramItem::Epoch(e) => check_epoch(p, e)?,
            ProgramItem::Call(r) => {
                if r.0 as usize >= p.routines.len() {
                    return Err(ValidateError::BadCall { routine: r.0 });
                }
                if call_stack.contains(&r.0) {
                    return Err(ValidateError::RecursiveRoutine {
                        routine: p.routine(*r).name.clone(),
                    });
                }
                call_stack.push(r.0);
                check_items(p, &p.routine(*r).items, call_stack)?;
                call_stack.pop();
            }
            ProgramItem::Repeat { count, body } => {
                if *count == 0 {
                    return Err(ValidateError::EmptyRepeat);
                }
                check_items(p, body, call_stack)?;
            }
        }
    }
    Ok(())
}

fn check_epoch(p: &Program, e: &Epoch) -> Result<(), ValidateError> {
    // Count DOALLs and check nesting.
    let mut doalls = 0usize;
    let mut nested = false;
    fn count_doalls(stmts: &[Stmt], inside_doall: bool, n: &mut usize, nested: &mut bool) {
        for s in stmts {
            match s {
                Stmt::Loop(l) => {
                    let is_d = l.kind.is_doall();
                    if is_d {
                        *n += 1;
                        if inside_doall {
                            *nested = true;
                        }
                    }
                    count_doalls(&l.body, inside_doall || is_d, n, nested);
                }
                Stmt::If(i) => {
                    count_doalls(&i.then_branch, inside_doall, n, nested);
                    count_doalls(&i.else_branch, inside_doall, n, nested);
                }
                _ => {}
            }
        }
    }
    count_doalls(&e.stmts, false, &mut doalls, &mut nested);

    match e.kind {
        EpochKind::Serial => {
            if doalls > 0 {
                return Err(ValidateError::SerialEpochHasDoall { epoch: e.label.clone() });
            }
        }
        EpochKind::Parallel => {
            if doalls != 1 {
                return Err(ValidateError::ParallelEpochDoallCount {
                    epoch: e.label.clone(),
                    count: doalls,
                });
            }
            if nested {
                return Err(ValidateError::NestedDoall { epoch: e.label.clone() });
            }
            // No assignments outside the DOALL: wrapper code is executed
            // redundantly by all PEs and must be pure index work.
            fn assign_outside(stmts: &[Stmt]) -> bool {
                for s in stmts {
                    match s {
                        Stmt::Assign(_) => return true,
                        Stmt::Loop(l) => {
                            if l.kind.is_doall() {
                                continue; // inside is fine
                            }
                            if assign_outside(&l.body) {
                                return true;
                            }
                        }
                        Stmt::If(i) => {
                            if assign_outside(&i.then_branch) || assign_outside(&i.else_branch)
                            {
                                return true;
                            }
                        }
                        Stmt::Prefetch(_) => {}
                    }
                }
                false
            }
            if assign_outside(&e.stmts) {
                return Err(ValidateError::AssignOutsideDoall { epoch: e.label.clone() });
            }
        }
    }

    // Per-statement checks with variable scoping.
    let mut bound: Vec<VarId> = Vec::new();
    check_stmts(p, e, &e.stmts, &mut bound)
}

fn check_affine_vars(
    a: &Affine,
    bound: &[VarId],
    context: &str,
) -> Result<(), ValidateError> {
    for v in a.vars() {
        if !bound.contains(&v) {
            return Err(ValidateError::UnboundVar { var: v.0, context: context.to_string() });
        }
    }
    Ok(())
}

fn check_array_id(p: &Program, id: crate::ArrayId) -> Result<(), ValidateError> {
    if id.0 as usize >= p.arrays.len() {
        return Err(ValidateError::UnknownArray { id: id.0 });
    }
    Ok(())
}

fn check_ref(p: &Program, e: &Epoch, r: &ArrayRef, bound: &[VarId]) -> Result<(), ValidateError> {
    check_array_id(p, r.array)?;
    let a = p.array(r.array);
    if a.rank() != r.index.len() {
        return Err(ValidateError::RankMismatch {
            array: a.name.clone(),
            expected: a.rank(),
            got: r.index.len(),
        });
    }
    for ix in &r.index {
        check_affine_vars(ix, bound, &format!("epoch '{}'", e.label))?;
    }
    Ok(())
}

fn check_cond(e: &Epoch, c: &Cond, bound: &[VarId]) -> Result<(), ValidateError> {
    match c {
        Cond::Cmp { lhs, rhs, .. } => {
            check_affine_vars(lhs, bound, &format!("epoch '{}' cond", e.label))?;
            check_affine_vars(rhs, bound, &format!("epoch '{}' cond", e.label))
        }
        Cond::NonAffine(inner) => check_cond(e, inner, bound),
    }
}

fn check_val_vars(
    e: &Epoch,
    v: &crate::ValExpr,
    bound: &[VarId],
) -> Result<(), ValidateError> {
    use crate::ValExpr as V;
    match v {
        V::Var(var) => {
            if !bound.contains(var) {
                return Err(ValidateError::UnboundVar {
                    var: var.0,
                    context: format!("value expression in epoch '{}'", e.label),
                });
            }
            Ok(())
        }
        V::Read(_) | V::Lit(_) => Ok(()),
        V::Add(a, b) | V::Sub(a, b) | V::Mul(a, b) | V::Div(a, b) | V::Min(a, b)
        | V::Max(a, b) => {
            check_val_vars(e, a, bound)?;
            check_val_vars(e, b, bound)
        }
        V::Neg(a) | V::Sqrt(a) | V::Abs(a) => check_val_vars(e, a, bound),
    }
}

fn check_stmts(
    p: &Program,
    e: &Epoch,
    stmts: &[Stmt],
    bound: &mut Vec<VarId>,
) -> Result<(), ValidateError> {
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                if a.expr.reads_needed() > a.reads.len() {
                    return Err(ValidateError::ReadListTooShort { epoch: e.label.clone() });
                }
                check_val_vars(e, &a.expr, bound)?;
                for r in &a.reads {
                    check_ref(p, e, r, bound)?;
                }
                check_ref(p, e, &a.write, bound)?;
            }
            Stmt::Loop(l) => {
                check_affine_vars(&l.lo, bound, &format!("epoch '{}' loop bound", e.label))?;
                check_affine_vars(&l.hi, bound, &format!("epoch '{}' loop bound", e.label))?;
                if l.step <= 0 {
                    return Err(ValidateError::NonPositiveStep { step: l.step });
                }
                // Constant bounds with lo > hi: statically empty, which is
                // always a generator bug (a silently empty epoch) rather
                // than an intentional no-op.
                if l.lo.terms().is_empty() && l.hi.terms().is_empty() {
                    let (lo, hi) = (l.lo.constant_term(), l.hi.constant_term());
                    if lo > hi {
                        return Err(ValidateError::EmptyConstantLoop { lo, hi });
                    }
                }
                bound.push(l.var);
                for pf in &l.pipeline {
                    check_array_id(p, pf.array)?;
                    for ix in &pf.index {
                        check_affine_vars(ix, bound, "pipelined prefetch")?;
                    }
                }
                check_stmts(p, e, &l.body, bound)?;
                bound.pop();
            }
            Stmt::If(i) => {
                check_cond(e, &i.cond, bound)?;
                check_stmts(p, e, &i.then_branch, bound)?;
                check_stmts(p, e, &i.else_branch, bound)?;
            }
            Stmt::Prefetch(pf) => match &pf.kind {
                crate::PrefetchKind::Line { array, index, .. } => {
                    check_array_id(p, *array)?;
                    for ix in index {
                        check_affine_vars(ix, bound, "prefetch")?;
                    }
                }
                crate::PrefetchKind::Vector { array, .. } => check_array_id(p, *array)?,
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn serial_epoch_rejects_doall() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4]);
        pb.serial_epoch("bad", |e| {
            e.doall("i", 0, 3, |e, i| e.assign(a.at1(i), 0.0));
        });
        assert!(matches!(
            pb.finish(),
            Err(ValidateError::SerialEpochHasDoall { .. })
        ));
    }

    #[test]
    fn parallel_epoch_needs_exactly_one_doall() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4]);
        pb.parallel_epoch("bad", |e| {
            e.serial("i", 0, 3, |e, i| e.assign(a.at1(i), 0.0));
        });
        assert!(matches!(
            pb.finish(),
            Err(ValidateError::ParallelEpochDoallCount { count: 0, .. })
        ));
    }

    #[test]
    fn parallel_epoch_rejects_assign_in_wrapper() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4]);
        pb.parallel_epoch("bad", |e| {
            e.serial("t", 0, 3, |e, _t| {
                e.assign(a.at1(0), 0.0);
                e.doall("i", 0, 3, |e, i| e.assign(a.at1(i), 0.0));
            });
        });
        assert!(matches!(
            pb.finish(),
            Err(ValidateError::AssignOutsideDoall { .. })
        ));
    }

    #[test]
    fn good_program_validates() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8, 8]);
        pb.serial_epoch("init", |e| {
            e.serial("j", 0, 7, |e, j| {
                e.serial("i", 0, 7, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.parallel_epoch("work", |e| {
            e.serial("t", 0, 1, |e, _t| {
                e.doall("j", 0, 7, |e, j| {
                    e.serial("i", 1, 7, |e, i| {
                        e.assign(a.at2(i, j), a.at2(i - 1, j).rd() * 0.5);
                    });
                });
            });
        });
        assert!(pb.finish().is_ok());
    }

    #[test]
    fn non_positive_step_and_empty_constant_loop_rejected() {
        let build = || {
            let mut pb = ProgramBuilder::new("t");
            let a = pb.shared("A", &[8]);
            pb.serial_epoch("s", |e| {
                e.serial("i", 0, 7, |e, i| e.assign(a.at1(i), 1.0));
            });
            pb.finish().unwrap()
        };
        // The builder refuses to construct these headers, so mutate a valid
        // program the way a buggy transformation pass would.
        let mut p = build();
        {
            let ProgramItem::Epoch(e) = &mut p.items[0] else { panic!("epoch") };
            let Stmt::Loop(l) = &mut e.stmts[0] else { panic!("loop") };
            l.step = 0;
        }
        assert_eq!(validate(&p), Err(ValidateError::NonPositiveStep { step: 0 }));

        let mut p = build();
        {
            let ProgramItem::Epoch(e) = &mut p.items[0] else { panic!("epoch") };
            let Stmt::Loop(l) = &mut e.stmts[0] else { panic!("loop") };
            l.lo = Affine::constant(5);
            l.hi = Affine::constant(2);
        }
        assert_eq!(
            validate(&p),
            Err(ValidateError::EmptyConstantLoop { lo: 5, hi: 2 })
        );
        for e in [
            ValidateError::NonPositiveStep { step: -3 },
            ValidateError::EmptyConstantLoop { lo: 5, hi: 2 },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn unknown_array_and_duplicate_ref_id_rejected() {
        let build = || {
            let mut pb = ProgramBuilder::new("t");
            let a = pb.shared("A", &[8]);
            pb.serial_epoch("s", |e| {
                e.serial("i", 1, 7, |e, i| {
                    e.assign(a.at1(i), a.at1(i - 1).rd() * 0.5);
                });
            });
            pb.finish().unwrap()
        };
        // A transformation pass emitting a stale ArrayId must be caught here,
        // not as an index panic inside dist::layout.
        let mut p = build();
        {
            let ProgramItem::Epoch(e) = &mut p.items[0] else { panic!("epoch") };
            let Stmt::Loop(l) = &mut e.stmts[0] else { panic!("loop") };
            let Stmt::Assign(a) = &mut l.body[0] else { panic!("assign") };
            a.reads[0].array = crate::ArrayId(7);
        }
        assert_eq!(validate(&p), Err(ValidateError::UnknownArray { id: 7 }));

        // Two statements sharing one RefId would alias in every id-indexed
        // side table (stale analysis, plan handling, simulator counters).
        let mut p = build();
        let dup = {
            let ProgramItem::Epoch(e) = &mut p.items[0] else { panic!("epoch") };
            let Stmt::Loop(l) = &mut e.stmts[0] else { panic!("loop") };
            let Stmt::Assign(a) = &mut l.body[0] else { panic!("assign") };
            a.reads[0].id = a.write.id;
            a.write.id.0
        };
        assert_eq!(validate(&p), Err(ValidateError::DuplicateRefId { id: dup }));
    }

    #[test]
    fn zero_extent_rejected() {
        let mut pb = ProgramBuilder::new("t");
        let _ = pb.shared("A", &[0]);
        assert!(matches!(pb.finish(), Err(ValidateError::ZeroExtent { .. })));
    }
}
