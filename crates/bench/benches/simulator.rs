//! Host-performance of the T3D simulator: simulated-events per host second
//! under each execution scheme.

use ccdp_core::{compile_ccdp, PipelineConfig};
use ccdp_kernels::mxm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use t3d_sim::{MachineConfig, Scheme, SimOptions, Simulator};

fn bench_schemes(c: &mut Criterion) {
    let pr = mxm::Params { m: 64, l: 48, p: 32 };
    let program = mxm::build(&pr);
    // Rough event count: refs per mult-statement instance.
    let events = (pr.m * pr.l * pr.p * 4) as u64;
    let mut g = c.benchmark_group("simulator_mxm");
    g.throughput(Throughput::Elements(events));

    g.bench_function("seq", |b| {
        b.iter(|| {
            let layout = ccdp_dist::Layout::new(&program, 1);
            black_box(
                Simulator::new(
                    &program,
                    layout,
                    MachineConfig::t3d(1),
                    Scheme::Sequential,
                    SimOptions::default(),
                )
                .run()
                .cycles,
            )
        });
    });

    for n_pes in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("base", n_pes), &n_pes, |b, &n| {
            b.iter(|| {
                let layout = ccdp_dist::Layout::new(&program, n);
                black_box(
                    Simulator::new(
                        &program,
                        layout,
                        MachineConfig::t3d(n),
                        Scheme::Base,
                        SimOptions::default(),
                    )
                    .run()
                    .cycles,
                )
            });
        });
        let cfg = PipelineConfig::t3d(n_pes);
        let art = compile_ccdp(&program, &cfg);
        g.bench_with_input(BenchmarkId::new("ccdp", n_pes), &n_pes, |b, &n| {
            b.iter(|| {
                let layout = ccdp_dist::Layout::new(&program, n);
                black_box(
                    Simulator::new(
                        &art.transformed,
                        layout,
                        MachineConfig::t3d(n),
                        Scheme::Ccdp { plan: art.plan.clone() },
                        SimOptions::default(),
                    )
                    .run()
                    .cycles,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
