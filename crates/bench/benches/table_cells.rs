//! One criterion benchmark per paper table: the host cost of regenerating a
//! representative cell of Table 1 and Table 2 (full `compare` runs at
//! reduced size). The actual table *values* are produced by the `table1` /
//! `table2` binaries; this tracks that regenerating them stays cheap.

use ccdp_bench::{cell_config, paper_kernels, Scale};
use ccdp_core::{compare, Scheme};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PAIR: [Scheme; 2] = [Scheme::Base, Scheme::Ccdp];

fn bench_table1_cell(c: &mut Criterion) {
    let kernels = paper_kernels(Scale::Quick);
    let mxm = &kernels[0];
    c.bench_function("table1_cell_mxm_p8", |b| {
        b.iter(|| {
            black_box(
                compare(&mxm.program, &cell_config(mxm, 8), &PAIR)
                    .expect("coherent")
                    .speedup(Scheme::Ccdp),
            )
        });
    });
}

fn bench_table2_cell(c: &mut Criterion) {
    let kernels = paper_kernels(Scale::Quick);
    let tomcatv = &kernels[2];
    c.bench_function("table2_cell_tomcatv_p8", |b| {
        b.iter(|| {
            black_box(
                compare(&tomcatv.program, &cell_config(tomcatv, 8), &PAIR)
                    .expect("coherent")
                    .improvement_pct(),
            )
        });
    });
}

criterion_group!(benches, bench_table1_cell, bench_table2_cell);
criterion_main!(benches);
