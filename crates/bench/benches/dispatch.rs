//! Expression-dispatch microbenches: the boxed [`ValExpr`] tree walk vs the
//! postfix stack machine vs the shape-specialized direct-threaded
//! evaluator ([`CExpr::eval`]), plus the end-to-end effect of the chunked
//! batch sweep on a pure-private kernel (reference tree walker vs compiled
//! trace). All paths are bit-identical by construction — these benches
//! exist to keep the fast paths honest about actually being fast.

use ccdp_ir::{ProgramBuilder, ValExpr, VarEnv, VarId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use t3d_sim::compiled::CExpr;
use t3d_sim::{MachineConfig, Scheme, SimOptions, Simulator};

/// The four-kernel staple: MXM's multiply-accumulate `c + a * b`.
fn mac_expr() -> ValExpr {
    use ValExpr::*;
    Add(
        Box::new(Read(0)),
        Box::new(Mul(Box::new(Read(1)), Box::new(Read(2)))),
    )
}

/// A shape with no specialization: forces the postfix fallback in `eval`.
fn general_expr() -> ValExpr {
    use ValExpr::*;
    Max(
        Box::new(Mul(
            Box::new(Abs(Box::new(Sub(Box::new(Read(0)), Box::new(Read(1)))))),
            Box::new(Add(Box::new(Read(2)), Box::new(Var(VarId(0))))),
        )),
        Box::new(Sqrt(Box::new(Read(3)))),
    )
}

fn bench_eval(c: &mut Criterion) {
    let mut env = VarEnv::new(1);
    env.set(VarId(0), 3);
    let reads = [1.25f64, -0.5, 3.75, 9.0];
    let mut g = c.benchmark_group("expr_eval");
    for (name, e) in [("mac", mac_expr()), ("general", general_expr())] {
        let ce = CExpr::compile(&e);
        g.bench_with_input(BenchmarkId::new("tree", name), &e, |b, e| {
            b.iter(|| black_box(e.eval(black_box(&reads), &env)));
        });
        g.bench_with_input(BenchmarkId::new("postfix", name), &ce, |b, ce| {
            b.iter(|| black_box(ce.eval_postfix(black_box(&reads), &env)));
        });
        g.bench_with_input(BenchmarkId::new("direct", name), &ce, |b, ce| {
            b.iter(|| black_box(ce.eval(black_box(&reads), &env)));
        });
    }
    g.finish();
}

/// A pure-private two-statement loop nest: the body batches, so the
/// compiled path runs the chunked values-only sweep while the tree walker
/// pays full per-access dispatch. Same cycles, same bytes — the gap is
/// pure host-dispatch overhead.
fn bench_sweep(c: &mut Criterion) {
    const N: i64 = 256;
    let mut pb = ProgramBuilder::new("sweep");
    let t = pb.private("T", &[N as usize]);
    let u = pb.private("U", &[N as usize]);
    pb.serial_epoch("e", |e| {
        e.serial("r", 0, 63, |e, _| {
            e.serial("i", 0, N - 1, |e, i| {
                e.assign(t.at1(i), t.at1(i).rd() * 1.0001 + u.at1(i).rd());
                e.assign(u.at1(i), u.at1(i).rd() * 0.9999);
            });
        });
    });
    let program = pb.finish().unwrap();
    let mut g = c.benchmark_group("batch_sweep");
    g.throughput(Throughput::Elements((64 * N) as u64));
    for (name, treewalk) in [("treewalk", true), ("compiled_chunked", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let layout = ccdp_dist::Layout::new(&program, 1);
                let opts = SimOptions { force_treewalk: treewalk, ..SimOptions::default() };
                black_box(
                    Simulator::new(
                        &program,
                        layout,
                        MachineConfig::t3d(1),
                        Scheme::Sequential,
                        opts,
                    )
                    .run()
                    .cycles,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eval, bench_sweep);
criterion_main!(benches);
