//! Host-performance of the compiler side: stale reference analysis,
//! prefetch target analysis, and prefetch scheduling/materialization.
//!
//! These are *host* benchmarks (how fast the reproduction's compiler runs),
//! complementary to the simulated-cycle tables produced by the `table1` /
//! `table2` binaries.

use ccdp_analysis::analyze_stale;
use ccdp_dist::Layout;
use ccdp_kernels::{swim, tomcatv};
use ccdp_prefetch::{plan_prefetches, prefetch_targets, ScheduleOptions, TargetOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_stale_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("stale_analysis");
    for n_pes in [4usize, 16, 64] {
        let program = tomcatv::build(&tomcatv::Params { n: 129, iters: 10 });
        let layout = tomcatv::layout(&program, n_pes);
        g.bench_with_input(BenchmarkId::new("tomcatv129", n_pes), &n_pes, |b, _| {
            b.iter(|| black_box(analyze_stale(&program, &layout)));
        });
    }
    let program = swim::build(&swim::Params { n: 129, iters: 10 });
    let layout = swim::layout(&program, 16);
    g.bench_function("swim129_p16", |b| {
        b.iter(|| black_box(analyze_stale(&program, &layout)));
    });
    g.finish();
}

fn bench_target_and_schedule(c: &mut Criterion) {
    let program = tomcatv::build(&tomcatv::Params { n: 129, iters: 10 });
    let layout = tomcatv::layout(&program, 16);
    let stale = analyze_stale(&program, &layout);
    let mut g = c.benchmark_group("prefetch_passes");
    g.bench_function("target_analysis", |b| {
        b.iter(|| black_box(prefetch_targets(&program, &stale, &TargetOptions::default())));
    });
    g.bench_function("plan_and_materialize", |b| {
        b.iter(|| {
            black_box(plan_prefetches(
                &program,
                &layout,
                &stale,
                &TargetOptions::default(),
                &ScheduleOptions::default(),
            ))
        });
    });
    g.finish();
}

fn bench_layout_and_memory_setup(c: &mut Criterion) {
    let program = swim::build(&swim::Params { n: 257, iters: 10 });
    c.bench_function("memory_setup_swim257_p64", |b| {
        let layout = Layout::new(&program, 64);
        b.iter(|| black_box(t3d_sim::Memory::new(&program, &layout)));
    });
}

criterion_group!(
    benches,
    bench_stale_analysis,
    bench_target_and_schedule,
    bench_layout_and_memory_setup
);
criterion_main!(benches);
