//! Benchmark harness: regenerates the paper's Tables 1 and 2 and the
//! ablation studies.
//!
//! The evaluation grid is 4 kernels × 7 PE counts × [`GRID_SCHEMES`]
//! (BASE, CCDP, and the hardware-coherence rivals MESI and Dragon), plus
//! one sequential run per kernel as the speedup denominator. Each cell is
//! an independent simulation, so the driver fans the grid out over host
//! threads.
//!
//! Scaling: `Scale::Paper` uses the paper's full problem sizes
//! (MXM 256×128×64, VPENTA 720², TOMCATV/SWIM 513²×100 iterations with
//! steady-state extrapolation after 3 sampled iterations); `Scale::Quick`
//! runs ~1/4-linear-size instances for CI-speed shape checks.
//!
//! Environment knobs (`CCDP_SCALE`, `CCDP_SEED`, `CCDP_FORCE_TREEWALK`)
//! are parsed through [`ccdp_core::EnvOverrides`] — the single parsing
//! point — never ad hoc here.

pub mod journal;
pub mod report;
pub mod resilience;
pub mod stress;
pub mod synth;

use ccdp_core::{
    compare, compare_with_seq, run_seq, EnvOverrides, PipelineConfig, PipelineError,
    ScalePreset, Scheme, SchemeMatrix,
};
use ccdp_ir::Program;
use ccdp_kernels::{mxm, swim, tomcatv, vpenta};
use t3d_sim::{ConfigError, SimOptions};

/// The PE counts of the paper's tables.
pub const PAPER_PES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The schemes of the headline comparison grid: the paper's pair plus the
/// hardware-coherence rivals. (`Scheme::InvalidateOnly` stays available via
/// the ablations' five-way study.)
pub const GRID_SCHEMES: [Scheme; 4] =
    [Scheme::Base, Scheme::Ccdp, Scheme::Mesi, Scheme::Dragon];

/// Problem-size selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The paper's full sizes (minutes of host time).
    Paper,
    /// Reduced sizes (seconds), same qualitative shape.
    Quick,
}

impl Scale {
    /// The scale selected by `CCDP_SCALE`, via the pipeline's single env
    /// parsing point ([`EnvOverrides::from_env`]): unset defaults to quick,
    /// a typo is a structured error rather than a silent downgrade.
    pub fn from_env() -> Result<Scale, PipelineError> {
        Ok(Scale::from_preset(EnvOverrides::from_env()?.scale))
    }

    /// The harness scale for a validated preset.
    pub fn from_preset(p: ScalePreset) -> Scale {
        match p {
            ScalePreset::Quick => Scale::Quick,
            ScalePreset::Paper => Scale::Paper,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// Decision-stream seed for fault-injecting runs: `--seed N` (or
/// `--seed=N`) in `args`, else the `CCDP_SEED` env var (parsed through
/// [`EnvOverrides`]), else 0. The chosen seed is recorded in every JSON
/// report so a run can be reproduced. Malformed values are structured
/// [`PipelineError::InvalidConfig`] errors naming the source and value.
pub fn seed_from(args: &[String]) -> Result<u64, PipelineError> {
    let parse = |v: &str| {
        v.parse::<u64>().map_err(|_| {
            PipelineError::InvalidConfig(ConfigError::BadEnv {
                var: "--seed",
                value: v.to_string(),
                need: "expected a u64",
            })
        })
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            let v = it.next().ok_or_else(|| {
                PipelineError::InvalidConfig(ConfigError::BadEnv {
                    var: "--seed",
                    value: "<missing>".to_string(),
                    need: "expected a u64",
                })
            })?;
            return parse(v);
        }
        if let Some(v) = a.strip_prefix("--seed=") {
            return parse(v);
        }
    }
    Ok(EnvOverrides::from_env()?.seed.unwrap_or(0))
}

/// Presence of a bare `--name` flag in `args`.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Value of a `--name V` / `--name=V` flag in `args`.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// One kernel ready for the sweep.
pub struct BenchKernel {
    pub name: &'static str,
    pub program: Program,
    /// Repeat-sampling (time-stepped codes only).
    pub repeat_sample: Option<u32>,
    /// Kernel-specific layout (TOMCATV/SWIM use the generalized
    /// distribution); `None` = default block layout.
    pub layout: Option<fn(&Program, usize) -> ccdp_dist::Layout>,
}

/// The paper's four kernels at the chosen scale.
pub fn paper_kernels(scale: Scale) -> Vec<BenchKernel> {
    let (mxm_p, vp_p, tc_p, sw_p) = match scale {
        Scale::Paper => (
            mxm::Params::paper(),
            vpenta::Params::paper(),
            tomcatv::Params::paper(),
            swim::Params::paper(),
        ),
        Scale::Quick => (
            mxm::Params { m: 64, l: 32, p: 16 },
            vpenta::Params { n: 96 },
            tomcatv::Params { n: 65, iters: 10 },
            swim::Params { n: 65, iters: 10 },
        ),
    };
    vec![
        BenchKernel {
            name: "MXM",
            program: mxm::build(&mxm_p),
            repeat_sample: None,
            layout: None,
        },
        BenchKernel {
            name: "VPENTA",
            program: vpenta::build(&vp_p),
            repeat_sample: None,
            layout: None,
        },
        BenchKernel {
            name: "TOMCATV",
            program: tomcatv::build(&tc_p),
            repeat_sample: Some(3),
            layout: Some(tomcatv::layout),
        },
        BenchKernel {
            name: "SWIM",
            program: swim::build(&sw_p),
            repeat_sample: Some(3),
            layout: Some(swim::layout),
        },
    ]
}

/// Pipeline configuration for one cell of the table: the kernel's layout
/// and repeat-sampling on top of T3D defaults, with the environment
/// overrides applied. This is the single entry point for cell configs;
/// ablations start from it and apply a tweak.
pub fn cell_config(k: &BenchKernel, n_pes: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::t3d(n_pes).with_sim(SimOptions {
        repeat_sample: k.repeat_sample,
        oracle_examples: 4,
        ..Default::default()
    });
    // Malformed env values were already rejected at bin startup
    // (`Scale::from_env` / `seed_from` validate the whole environment), so
    // a parse failure here can only repeat an error the caller has seen.
    if let Ok(env) = EnvOverrides::from_env() {
        env.apply(&mut cfg);
    }
    if let Some(f) = k.layout {
        cfg = cfg.with_layout(f(&k.program, n_pes));
    }
    cfg
}

/// Run one kernel cell with a configuration tweak applied on top of the
/// kernel's defaults (ablation studies).
pub fn run_cell_with(
    k: &BenchKernel,
    n_pes: usize,
    schemes: &[Scheme],
    tweak: impl FnOnce(&mut PipelineConfig),
) -> Result<SchemeMatrix, PipelineError> {
    let mut cfg = cell_config(k, n_pes);
    tweak(&mut cfg);
    compare(&k.program, &cfg, schemes)
}

/// Host-side wall-clock observations of one grid run: *host* throughput
/// (simulated cycles per host second), not simulated time. Feeds the `perf`
/// section of the benchmark report and the CI regression gate.
#[derive(Clone, Debug)]
pub struct GridTiming {
    /// Whole-grid wall time, including the per-kernel sequential runs.
    pub wall_seconds: f64,
    /// Worker threads used (`min(host parallelism, cell count)`).
    pub threads: usize,
    /// The simulator's intra-run worker knob in effect for every cell
    /// (`SimOptions::sim_threads`, set by `CCDP_SIM_THREADS` or a probe
    /// tweak; 1 = the serial engine).
    pub sim_threads: usize,
    /// Per-kernel sequential-run timing (run once, reused by every cell).
    pub seq: Vec<CellTiming>,
    /// Per-cell timing, indexed like the grid: `cells[kernel][pe]`.
    pub cells: Vec<Vec<CellTiming>>,
    /// Intra-run scaling probe points ([`measure_scaling`]), attached by
    /// the report bin on fresh healthy runs; empty when not probed.
    pub scaling: Vec<ScalingPoint>,
}

impl GridTiming {
    /// Total simulated cycles produced by the run.
    pub fn sim_cycles(&self) -> u64 {
        let seq: u64 = self.seq.iter().map(|c| c.sim_cycles).sum();
        let cells: u64 =
            self.cells.iter().flatten().map(|c| c.sim_cycles).sum();
        seq + cells
    }

    /// Shard-path counters aggregated over every cell of the timed grid
    /// (feeds the report's `perf.shard` object, schema v10).
    pub fn shard(&self) -> ShardAgg {
        let mut agg = ShardAgg::default();
        for c in self.cells.iter().flatten() {
            agg.merge(&c.shard);
        }
        agg
    }

    /// Aggregate host throughput in simulated cycles per second.
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_cycles() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Wall time and simulated work of one simulation bundle.
#[derive(Clone, Debug, Default)]
pub struct CellTiming {
    pub wall_seconds: f64,
    /// Simulated cycles the bundle produced (summed over every scheme run
    /// for a grid cell; the run's own cycles for a `seq` entry).
    pub sim_cycles: u64,
    /// Per-scheme breakdown of `sim_cycles`, keyed by [`Scheme::key`]
    /// (empty for `seq` entries). Feeds the `perf` section's per-scheme
    /// rows (schema v6).
    pub scheme_cycles: Vec<(&'static str, u64)>,
    /// Shard-path counters summed over the cell's scheme runs (zero for
    /// `seq` entries, which never shard).
    pub shard: ShardAgg,
}

impl CellTiming {
    /// Timing of one grid cell from its completed matrix.
    pub fn from_matrix(wall_seconds: f64, m: &SchemeMatrix) -> CellTiming {
        let mut shard = ShardAgg::default();
        for r in &m.runs {
            shard.absorb(&r.result.shard);
        }
        CellTiming {
            wall_seconds,
            sim_cycles: m.runs.iter().map(|r| r.result.cycles).sum(),
            scheme_cycles: m.runs.iter().map(|r| (r.scheme.key(), r.result.cycles)).collect(),
            shard,
        }
    }
}

/// Aggregated epoch-sharding counters over a set of simulation runs: how
/// many DOALL instances ran on the statically proven fast path (no shard
/// log, no merge-time conflict scan), how many were dynamically checked,
/// and how many fell back to the serial schedule. Feeds the `perf.shard`
/// object of the report (schema v10).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardAgg {
    /// Instances sharded on a static `Disjoint` proof.
    pub static_proven: u64,
    /// Instances sharded optimistically with the dynamic conflict log.
    pub dynamic_logged: u64,
    /// Dynamically logged instances rejected at merge and rerun serially.
    pub conflicts: u64,
    /// Proven budgeted instances whose sliced budget tripped in a worker.
    pub budget_reruns: u64,
    /// Instances that went straight to the serial schedule, all structured
    /// reasons combined.
    pub declined: u64,
}

impl ShardAgg {
    /// Fold one run's shard statistics into the aggregate.
    pub fn absorb(&mut self, s: &t3d_sim::ShardStats) {
        self.static_proven += s.static_proven;
        self.dynamic_logged += s.dynamic_logged;
        self.conflicts += s.conflicts;
        self.budget_reruns += s.budget_reruns;
        self.declined += s.declined_treewalk
            + s.declined_few_pes
            + s.declined_hardware
            + s.declined_wall_deadline
            + s.declined_budget_unproven;
    }

    /// Combine two aggregates.
    pub fn merge(&mut self, o: &ShardAgg) {
        self.static_proven += o.static_proven;
        self.dynamic_logged += o.dynamic_logged;
        self.conflicts += o.conflicts;
        self.budget_reruns += o.budget_reruns;
        self.declined += o.declined;
    }

    /// Merge-time conflict scans avoided by static proofs.
    pub fn dynamic_checks_skipped(&self) -> u64 {
        self.static_proven
    }
}

/// Run `n_jobs` jobs on a bounded worker pool, preserving job order in the
/// returned results. Workers pull the next job index from a shared counter,
/// so the fan-out never exceeds `threads` no matter how large the grid is.
pub fn pooled<T: Send>(
    n_jobs: usize,
    threads: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(n_jobs) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let r = job(i);
                *out[i].lock().expect("job slot") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("job slot").expect("job ran"))
        .collect()
}

/// Run the full grid: for each kernel, one [`SchemeMatrix`] per PE count
/// covering `schemes`. Cells run on a worker pool bounded by the host's
/// available parallelism; the first coherence violation anywhere in the
/// grid fails the whole run.
pub fn run_grid(
    kernels: &[BenchKernel],
    pes: &[usize],
    schemes: &[Scheme],
) -> Result<Vec<Vec<SchemeMatrix>>, PipelineError> {
    run_grid_timed(kernels, pes, schemes).map(|(grid, _)| grid)
}

/// [`run_grid`] plus host-side timing of every cell. The sequential
/// denominator of each kernel is simulated once and reused across its PE
/// cells (it does not depend on the PE count; see
/// [`ccdp_core::compare_with_seq`]), so the grid does
/// kernels×(pes×schemes + 1) simulations instead of
/// kernels×pes×(schemes + 1).
pub fn run_grid_timed(
    kernels: &[BenchKernel],
    pes: &[usize],
    schemes: &[Scheme],
) -> Result<(Vec<Vec<SchemeMatrix>>, GridTiming), PipelineError> {
    run_grid_timed_with(kernels, pes, schemes, |_| {})
}

/// [`run_grid_timed`] with a configuration tweak applied to every cell on
/// top of the kernel defaults and environment overrides (the tweak runs
/// after [`cell_config`], so it wins). Used by the scaling probes, which
/// force `SimOptions::sim_threads` per run.
pub fn run_grid_timed_with(
    kernels: &[BenchKernel],
    pes: &[usize],
    schemes: &[Scheme],
    tweak: impl Fn(&mut PipelineConfig) + Sync,
) -> Result<(Vec<Vec<SchemeMatrix>>, GridTiming), PipelineError> {
    use std::time::Instant;

    let t0 = Instant::now();
    // What `cell_config` + tweak leave in the simulator's worker knob —
    // recorded so the report (and the perf gate) know which engine
    // configuration the wall numbers describe.
    let sim_threads = {
        let mut probe = PipelineConfig::t3d(2);
        if let Ok(env) = EnvOverrides::from_env() {
            env.apply(&mut probe);
        }
        tweak(&mut probe);
        probe.sim.sim_threads.max(1)
    };
    let n_cells = kernels.len() * pes.len();
    if n_cells == 0 {
        let grid = kernels.iter().map(|_| Vec::new()).collect();
        let timing = GridTiming {
            wall_seconds: t0.elapsed().as_secs_f64(),
            threads: 0,
            sim_threads,
            seq: Vec::new(),
            cells: Vec::new(),
            scaling: Vec::new(),
        };
        return Ok((grid, timing));
    }
    let threads =
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(n_cells);
    let cfg_for = |k: &BenchKernel, n_pes: usize| {
        let mut cfg = cell_config(k, n_pes);
        tweak(&mut cfg);
        cfg
    };

    // Stage 1: the per-kernel sequential denominators.
    let seq_runs = pooled(kernels.len(), threads, |ki| {
        let k = &kernels[ki];
        let t = Instant::now();
        let r = run_seq(&k.program, &cfg_for(k, pes[0]));
        (r, t.elapsed().as_secs_f64())
    });
    let mut seqs = Vec::with_capacity(kernels.len());
    let mut seq_timing = Vec::with_capacity(kernels.len());
    for (r, secs) in seq_runs {
        let r = r?;
        seq_timing.push(CellTiming {
            wall_seconds: secs,
            sim_cycles: r.cycles,
            scheme_cycles: Vec::new(),
            shard: ShardAgg::default(),
        });
        seqs.push(r);
    }

    // Stage 2: the scheme cells, reusing the kernel's sequential run.
    let cell_runs = pooled(n_cells, threads, |i| {
        let (ki, pi) = (i / pes.len(), i % pes.len());
        let k = &kernels[ki];
        let t = Instant::now();
        let r =
            compare_with_seq(&k.program, &cfg_for(k, pes[pi]), seqs[ki].clone(), schemes);
        (r, t.elapsed().as_secs_f64())
    });
    let mut grid: Vec<Vec<SchemeMatrix>> = Vec::with_capacity(kernels.len());
    let mut cells: Vec<Vec<CellTiming>> = Vec::with_capacity(kernels.len());
    let mut it = cell_runs.into_iter();
    for _ in kernels {
        let mut row = Vec::with_capacity(pes.len());
        let mut trow = Vec::with_capacity(pes.len());
        for _ in pes {
            let (r, secs) = it.next().expect("one result per cell");
            let c = r?;
            trow.push(CellTiming::from_matrix(secs, &c));
            row.push(c);
        }
        grid.push(row);
        cells.push(trow);
    }
    let timing = GridTiming {
        wall_seconds: t0.elapsed().as_secs_f64(),
        threads,
        sim_threads,
        seq: seq_timing,
        cells,
        scaling: Vec::new(),
    };
    Ok((grid, timing))
}

/// One point of the intra-run scaling probe: the same grid timed with the
/// simulator's worker knob forced to `sim_threads`.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// The forced `SimOptions::sim_threads` value.
    pub sim_threads: usize,
    /// Host wall time of the whole grid at this thread count.
    pub wall_seconds: f64,
    /// Simulated cycles produced (identical at every thread count — the
    /// sharded path is bit-exact; see `tests/parallel_equivalence.rs`).
    pub sim_cycles: u64,
}

/// Time the same grid once per entry of `threads`, forcing the simulator's
/// intra-run worker knob for every cell. Feeds the report's `perf.scaling`
/// rows. Wall numbers are host observations and vary run to run; the
/// simulated results are deterministic and thread-count-independent.
pub fn measure_scaling(
    kernels: &[BenchKernel],
    pes: &[usize],
    schemes: &[Scheme],
    threads: &[usize],
) -> Result<Vec<ScalingPoint>, PipelineError> {
    let mut out = Vec::with_capacity(threads.len());
    for &t in threads {
        let (_, timing) =
            run_grid_timed_with(kernels, pes, schemes, move |cfg| cfg.sim.sim_threads = t)?;
        out.push(ScalingPoint {
            sim_threads: t,
            wall_seconds: timing.wall_seconds,
            sim_cycles: timing.sim_cycles(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn quick_grid_single_cell_runs() {
        let kernels = paper_kernels(Scale::Quick);
        assert_eq!(kernels.len(), 4);
        let grid = run_grid(&kernels[..1], &[2], &GRID_SCHEMES).expect("coherent grid");
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 1);
        let m = &grid[0][0];
        assert_eq!(m.runs.len(), GRID_SCHEMES.len());
        for s in GRID_SCHEMES {
            let r = m.get(s).expect("requested scheme present");
            assert!(r.result.oracle.is_coherent(), "{} incoherent", s.name());
        }
        assert!(m.get(Scheme::Mesi).unwrap().result.total_stats().bus_txns > 0);
    }

    #[test]
    fn scaling_probe_is_thread_count_invariant_in_simulated_work() {
        let kernels = paper_kernels(Scale::Quick);
        let points = measure_scaling(&kernels[..1], &[4], &[Scheme::Ccdp], &[1, 2])
            .expect("coherent probe runs");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].sim_threads, 1);
        assert_eq!(points[1].sim_threads, 2);
        // The knob changes host wall time only — never the simulation.
        assert_eq!(points[0].sim_cycles, points[1].sim_cycles);
        assert!(points.iter().all(|p| p.wall_seconds > 0.0 && p.sim_cycles > 0));
        // And the recorded engine configuration reflects the forced knob.
        let (_, t) = run_grid_timed_with(&kernels[..1], &[4], &[Scheme::Ccdp], |cfg| {
            cfg.sim.sim_threads = 3;
        })
        .expect("coherent grid");
        assert_eq!(t.sim_threads, 3);
    }

    #[test]
    fn seed_from_prefers_flag_over_env() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(seed_from(&args(&["--seed", "17"])).unwrap(), 17);
        assert_eq!(seed_from(&args(&["--quick", "--seed=99"])).unwrap(), 99);
        let err = seed_from(&args(&["--seed", "banana"])).unwrap_err();
        assert!(format!("{err}").contains("banana"), "{err}");
        assert!(seed_from(&args(&["--seed"])).is_err());
        // No flag and no env (tests don't set CCDP_SEED): default 0.
        if std::env::var("CCDP_SEED").is_err() && std::env::var("CCDP_SCALE").is_err() {
            assert_eq!(seed_from(&args(&[])).unwrap(), 0);
        }
    }

    #[test]
    fn scale_maps_presets() {
        assert_eq!(Scale::from_preset(ScalePreset::Quick), Scale::Quick);
        assert_eq!(Scale::from_preset(ScalePreset::Paper), Scale::Paper);
        assert_eq!(Scale::Quick.name(), "quick");
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn grid_timing_sums_per_scheme_cycles() {
        let kernels = paper_kernels(Scale::Quick);
        let (grid, timing) =
            run_grid_timed(&kernels[..1], &[2], &[Scheme::Base, Scheme::Ccdp])
                .expect("coherent grid");
        let cell = &timing.cells[0][0];
        assert_eq!(cell.scheme_cycles.len(), 2);
        assert_eq!(cell.scheme_cycles[0].0, "base");
        assert_eq!(
            cell.sim_cycles,
            cell.scheme_cycles.iter().map(|(_, c)| c).sum::<u64>()
        );
        assert_eq!(
            cell.sim_cycles,
            grid[0][0].runs.iter().map(|r| r.result.cycles).sum::<u64>()
        );
        assert!(timing.sim_cycles() > cell.sim_cycles, "seq cycles counted too");
    }
}
