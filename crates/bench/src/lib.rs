//! Benchmark harness: regenerates the paper's Tables 1 and 2 and the
//! ablation studies.
//!
//! The paper's evaluation grid is 4 kernels × 7 PE counts × {BASE, CCDP}
//! (plus one sequential run per kernel as the speedup denominator). Each
//! cell is an independent simulation, so the driver fans the grid out over
//! host threads.
//!
//! Scaling: `Scale::Paper` uses the paper's full problem sizes
//! (MXM 256×128×64, VPENTA 720², TOMCATV/SWIM 513²×100 iterations with
//! steady-state extrapolation after 3 sampled iterations); `Scale::Quick`
//! runs ~1/4-linear-size instances for CI-speed shape checks.

pub mod journal;
pub mod report;
pub mod resilience;
pub mod stress;
pub mod synth;

use ccdp_core::{compare, compare_with_seq, run_seq, Comparison, PipelineConfig, PipelineError};
use ccdp_ir::Program;
use ccdp_kernels::{mxm, swim, tomcatv, vpenta};
use t3d_sim::SimOptions;

/// The PE counts of the paper's tables.
pub const PAPER_PES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Problem-size selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The paper's full sizes (minutes of host time).
    Paper,
    /// Reduced sizes (seconds), same qualitative shape.
    Quick,
}

/// `CCDP_SCALE` held something other than "quick" or "paper".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleError {
    pub value: String,
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized CCDP_SCALE value {:?} (expected \"quick\" or \"paper\")",
            self.value
        )
    }
}

impl std::error::Error for ScaleError {}

impl Scale {
    /// Parse from the `CCDP_SCALE` env var: unset defaults to quick;
    /// `"quick"` and `"paper"` select explicitly; anything else is an error
    /// (a typo must not silently downgrade a paper-scale run).
    pub fn from_env() -> Result<Scale, ScaleError> {
        match std::env::var("CCDP_SCALE") {
            Err(_) => Ok(Scale::Quick),
            Ok(v) => Scale::parse(&v),
        }
    }

    /// Parse a scale name.
    pub fn parse(v: &str) -> Result<Scale, ScaleError> {
        match v {
            "quick" | "" => Ok(Scale::Quick),
            "paper" => Ok(Scale::Paper),
            other => Err(ScaleError { value: other.to_string() }),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// `--seed` / `CCDP_SEED` held something that is not a u64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedError {
    pub value: String,
}

impl std::fmt::Display for SeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable seed {:?} (expected a u64)", self.value)
    }
}

impl std::error::Error for SeedError {}

/// Decision-stream seed for fault-injecting runs: `--seed N` (or
/// `--seed=N`) in `args`, else the `CCDP_SEED` env var, else 0. The chosen
/// seed is recorded in every JSON report so a run can be reproduced.
pub fn seed_from(args: &[String]) -> Result<u64, SeedError> {
    let parse = |v: &str| v.parse::<u64>().map_err(|_| SeedError { value: v.to_string() });
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            let v = it.next().ok_or_else(|| SeedError { value: "<missing>".into() })?;
            return parse(v);
        }
        if let Some(v) = a.strip_prefix("--seed=") {
            return parse(v);
        }
    }
    match std::env::var("CCDP_SEED") {
        Ok(v) => parse(&v),
        Err(_) => Ok(0),
    }
}

/// Presence of a bare `--name` flag in `args`.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Value of a `--name V` / `--name=V` flag in `args`.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// One kernel ready for the sweep.
pub struct BenchKernel {
    pub name: &'static str,
    pub program: Program,
    /// Repeat-sampling (time-stepped codes only).
    pub repeat_sample: Option<u32>,
    /// Kernel-specific layout (TOMCATV/SWIM use the generalized
    /// distribution); `None` = default block layout.
    pub layout: Option<fn(&Program, usize) -> ccdp_dist::Layout>,
}

/// The paper's four kernels at the chosen scale.
pub fn paper_kernels(scale: Scale) -> Vec<BenchKernel> {
    let (mxm_p, vp_p, tc_p, sw_p) = match scale {
        Scale::Paper => (
            mxm::Params::paper(),
            vpenta::Params::paper(),
            tomcatv::Params::paper(),
            swim::Params::paper(),
        ),
        Scale::Quick => (
            mxm::Params { m: 64, l: 32, p: 16 },
            vpenta::Params { n: 96 },
            tomcatv::Params { n: 65, iters: 10 },
            swim::Params { n: 65, iters: 10 },
        ),
    };
    vec![
        BenchKernel {
            name: "MXM",
            program: mxm::build(&mxm_p),
            repeat_sample: None,
            layout: None,
        },
        BenchKernel {
            name: "VPENTA",
            program: vpenta::build(&vp_p),
            repeat_sample: None,
            layout: None,
        },
        BenchKernel {
            name: "TOMCATV",
            program: tomcatv::build(&tc_p),
            repeat_sample: Some(3),
            layout: Some(tomcatv::layout),
        },
        BenchKernel {
            name: "SWIM",
            program: swim::build(&sw_p),
            repeat_sample: Some(3),
            layout: Some(swim::layout),
        },
    ]
}

/// Pipeline configuration for one cell of the table: the kernel's layout
/// and repeat-sampling on top of T3D defaults. This is the single entry
/// point for cell configs; ablations start from it and apply a tweak.
pub fn cell_config(k: &BenchKernel, n_pes: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::t3d(n_pes).with_sim(SimOptions {
        repeat_sample: k.repeat_sample,
        oracle_examples: 4,
        ..Default::default()
    });
    if let Some(f) = k.layout {
        cfg = cfg.with_layout(f(&k.program, n_pes));
    }
    cfg
}

/// Run one kernel cell with a configuration tweak applied on top of the
/// kernel's defaults (ablation studies).
pub fn run_cell_with(
    k: &BenchKernel,
    n_pes: usize,
    tweak: impl FnOnce(&mut PipelineConfig),
) -> Result<Comparison, PipelineError> {
    let mut cfg = cell_config(k, n_pes);
    tweak(&mut cfg);
    compare(&k.program, &cfg)
}

/// Host-side wall-clock observations of one grid run: *host* throughput
/// (simulated cycles per host second), not simulated time. Feeds the `perf`
/// section of the benchmark report and the CI regression gate.
#[derive(Clone, Debug)]
pub struct GridTiming {
    /// Whole-grid wall time, including the per-kernel sequential runs.
    pub wall_seconds: f64,
    /// Worker threads used (`min(host parallelism, cell count)`).
    pub threads: usize,
    /// Per-kernel sequential-run timing (run once, reused by every cell).
    pub seq: Vec<CellTiming>,
    /// Per-cell timing, indexed like the grid: `cells[kernel][pe]`.
    pub cells: Vec<Vec<CellTiming>>,
}

impl GridTiming {
    /// Total simulated cycles produced by the run.
    pub fn sim_cycles(&self) -> u64 {
        let seq: u64 = self.seq.iter().map(|c| c.sim_cycles).sum();
        let cells: u64 =
            self.cells.iter().flatten().map(|c| c.sim_cycles).sum();
        seq + cells
    }

    /// Aggregate host throughput in simulated cycles per second.
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_cycles() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Wall time and simulated work of one simulation bundle.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellTiming {
    pub wall_seconds: f64,
    /// Simulated cycles the bundle produced (BASE + CCDP for a grid cell;
    /// the run's own cycles for a `seq` entry).
    pub sim_cycles: u64,
}

/// Run `n_jobs` jobs on a bounded worker pool, preserving job order in the
/// returned results. Workers pull the next job index from a shared counter,
/// so the fan-out never exceeds `threads` no matter how large the grid is.
pub fn pooled<T: Send>(
    n_jobs: usize,
    threads: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(n_jobs) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let r = job(i);
                *out[i].lock().expect("job slot") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("job slot").expect("job ran"))
        .collect()
}

/// Run the full grid: for each kernel, one [`Comparison`] per PE count.
/// Cells run on a worker pool bounded by the host's available parallelism;
/// the first coherence violation anywhere in the grid fails the whole run.
pub fn run_grid(
    kernels: &[BenchKernel],
    pes: &[usize],
) -> Result<Vec<Vec<Comparison>>, PipelineError> {
    run_grid_timed(kernels, pes).map(|(grid, _)| grid)
}

/// [`run_grid`] plus host-side timing of every cell. The sequential
/// denominator of each kernel is simulated once and reused across its PE
/// cells (it does not depend on the PE count; see
/// [`ccdp_core::compare_with_seq`]), so the grid does kernels×(pes + 1)
/// simulations instead of kernels×pes×2 + kernels×pes.
pub fn run_grid_timed(
    kernels: &[BenchKernel],
    pes: &[usize],
) -> Result<(Vec<Vec<Comparison>>, GridTiming), PipelineError> {
    use std::time::Instant;

    let t0 = Instant::now();
    let n_cells = kernels.len() * pes.len();
    if n_cells == 0 {
        let grid = kernels.iter().map(|_| Vec::new()).collect();
        let timing = GridTiming {
            wall_seconds: t0.elapsed().as_secs_f64(),
            threads: 0,
            seq: Vec::new(),
            cells: Vec::new(),
        };
        return Ok((grid, timing));
    }
    let threads =
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(n_cells);

    // Stage 1: the per-kernel sequential denominators.
    let seq_runs = pooled(kernels.len(), threads, |ki| {
        let k = &kernels[ki];
        let t = Instant::now();
        let r = run_seq(&k.program, &cell_config(k, pes[0]));
        (r, t.elapsed().as_secs_f64())
    });
    let mut seqs = Vec::with_capacity(kernels.len());
    let mut seq_timing = Vec::with_capacity(kernels.len());
    for (r, secs) in seq_runs {
        let r = r?;
        seq_timing.push(CellTiming { wall_seconds: secs, sim_cycles: r.cycles });
        seqs.push(r);
    }

    // Stage 2: the BASE/CCDP cells, reusing the kernel's sequential run.
    let cell_runs = pooled(n_cells, threads, |i| {
        let (ki, pi) = (i / pes.len(), i % pes.len());
        let k = &kernels[ki];
        let t = Instant::now();
        let r = compare_with_seq(&k.program, &cell_config(k, pes[pi]), seqs[ki].clone());
        (r, t.elapsed().as_secs_f64())
    });
    let mut grid: Vec<Vec<Comparison>> = Vec::with_capacity(kernels.len());
    let mut cells: Vec<Vec<CellTiming>> = Vec::with_capacity(kernels.len());
    let mut it = cell_runs.into_iter();
    for _ in kernels {
        let mut row = Vec::with_capacity(pes.len());
        let mut trow = Vec::with_capacity(pes.len());
        for _ in pes {
            let (r, secs) = it.next().expect("one result per cell");
            let c = r?;
            trow.push(CellTiming {
                wall_seconds: secs,
                sim_cycles: c.base.cycles + c.ccdp.cycles,
            });
            row.push(c);
        }
        grid.push(row);
        cells.push(trow);
    }
    let timing = GridTiming {
        wall_seconds: t0.elapsed().as_secs_f64(),
        threads,
        seq: seq_timing,
        cells,
    };
    Ok((grid, timing))
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn quick_grid_single_cell_runs() {
        let kernels = paper_kernels(Scale::Quick);
        assert_eq!(kernels.len(), 4);
        let grid = run_grid(&kernels[..1], &[2]).expect("coherent grid");
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 1);
        assert!(grid[0][0].ccdp.oracle.is_coherent());
    }

    #[test]
    fn seed_from_prefers_flag_over_env() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(seed_from(&args(&["--seed", "17"])), Ok(17));
        assert_eq!(seed_from(&args(&["--quick", "--seed=99"])), Ok(99));
        assert!(seed_from(&args(&["--seed", "banana"])).is_err());
        assert!(seed_from(&args(&["--seed"])).is_err());
        // No flag and no env (tests don't set CCDP_SEED): default 0.
        if std::env::var("CCDP_SEED").is_err() {
            assert_eq!(seed_from(&args(&[])), Ok(0));
        }
    }

    #[test]
    fn scale_parse_accepts_known_rejects_unknown() {
        assert_eq!(Scale::parse("quick"), Ok(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Ok(Scale::Paper));
        let err = Scale::parse("fast").unwrap_err();
        assert_eq!(err.value, "fast");
        assert!(format!("{err}").contains("fast"));
        assert_eq!(Scale::Quick.name(), "quick");
        assert_eq!(Scale::Paper.name(), "paper");
    }
}
