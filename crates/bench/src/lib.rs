//! Benchmark harness: regenerates the paper's Tables 1 and 2 and the
//! ablation studies.
//!
//! The paper's evaluation grid is 4 kernels × 7 PE counts × {BASE, CCDP}
//! (plus one sequential run per kernel as the speedup denominator). Each
//! cell is an independent simulation, so the driver fans the grid out over
//! host threads.
//!
//! Scaling: `Scale::Paper` uses the paper's full problem sizes
//! (MXM 256×128×64, VPENTA 720², TOMCATV/SWIM 513²×100 iterations with
//! steady-state extrapolation after 3 sampled iterations); `Scale::Quick`
//! runs ~1/4-linear-size instances for CI-speed shape checks.

pub mod report;
pub mod stress;
pub mod synth;

use ccdp_core::{compare, Comparison, PipelineConfig, PipelineError};
use ccdp_ir::Program;
use ccdp_kernels::{mxm, swim, tomcatv, vpenta};
use t3d_sim::SimOptions;

/// The PE counts of the paper's tables.
pub const PAPER_PES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Problem-size selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The paper's full sizes (minutes of host time).
    Paper,
    /// Reduced sizes (seconds), same qualitative shape.
    Quick,
}

/// `CCDP_SCALE` held something other than "quick" or "paper".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleError {
    pub value: String,
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized CCDP_SCALE value {:?} (expected \"quick\" or \"paper\")",
            self.value
        )
    }
}

impl std::error::Error for ScaleError {}

impl Scale {
    /// Parse from the `CCDP_SCALE` env var: unset defaults to quick;
    /// `"quick"` and `"paper"` select explicitly; anything else is an error
    /// (a typo must not silently downgrade a paper-scale run).
    pub fn from_env() -> Result<Scale, ScaleError> {
        match std::env::var("CCDP_SCALE") {
            Err(_) => Ok(Scale::Quick),
            Ok(v) => Scale::parse(&v),
        }
    }

    /// Parse a scale name.
    pub fn parse(v: &str) -> Result<Scale, ScaleError> {
        match v {
            "quick" | "" => Ok(Scale::Quick),
            "paper" => Ok(Scale::Paper),
            other => Err(ScaleError { value: other.to_string() }),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// `--seed` / `CCDP_SEED` held something that is not a u64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedError {
    pub value: String,
}

impl std::fmt::Display for SeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unparseable seed {:?} (expected a u64)", self.value)
    }
}

impl std::error::Error for SeedError {}

/// Decision-stream seed for fault-injecting runs: `--seed N` (or
/// `--seed=N`) in `args`, else the `CCDP_SEED` env var, else 0. The chosen
/// seed is recorded in every JSON report so a run can be reproduced.
pub fn seed_from(args: &[String]) -> Result<u64, SeedError> {
    let parse = |v: &str| v.parse::<u64>().map_err(|_| SeedError { value: v.to_string() });
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            let v = it.next().ok_or_else(|| SeedError { value: "<missing>".into() })?;
            return parse(v);
        }
        if let Some(v) = a.strip_prefix("--seed=") {
            return parse(v);
        }
    }
    match std::env::var("CCDP_SEED") {
        Ok(v) => parse(&v),
        Err(_) => Ok(0),
    }
}

/// One kernel ready for the sweep.
pub struct BenchKernel {
    pub name: &'static str,
    pub program: Program,
    /// Repeat-sampling (time-stepped codes only).
    pub repeat_sample: Option<u32>,
    /// Kernel-specific layout (TOMCATV/SWIM use the generalized
    /// distribution); `None` = default block layout.
    pub layout: Option<fn(&Program, usize) -> ccdp_dist::Layout>,
}

/// The paper's four kernels at the chosen scale.
pub fn paper_kernels(scale: Scale) -> Vec<BenchKernel> {
    let (mxm_p, vp_p, tc_p, sw_p) = match scale {
        Scale::Paper => (
            mxm::Params::paper(),
            vpenta::Params::paper(),
            tomcatv::Params::paper(),
            swim::Params::paper(),
        ),
        Scale::Quick => (
            mxm::Params { m: 64, l: 32, p: 16 },
            vpenta::Params { n: 96 },
            tomcatv::Params { n: 65, iters: 10 },
            swim::Params { n: 65, iters: 10 },
        ),
    };
    vec![
        BenchKernel {
            name: "MXM",
            program: mxm::build(&mxm_p),
            repeat_sample: None,
            layout: None,
        },
        BenchKernel {
            name: "VPENTA",
            program: vpenta::build(&vp_p),
            repeat_sample: None,
            layout: None,
        },
        BenchKernel {
            name: "TOMCATV",
            program: tomcatv::build(&tc_p),
            repeat_sample: Some(3),
            layout: Some(tomcatv::layout),
        },
        BenchKernel {
            name: "SWIM",
            program: swim::build(&sw_p),
            repeat_sample: Some(3),
            layout: Some(swim::layout),
        },
    ]
}

/// Pipeline configuration for one cell of the table: the kernel's layout
/// and repeat-sampling on top of T3D defaults. This is the single entry
/// point for cell configs; ablations start from it and apply a tweak.
pub fn cell_config(k: &BenchKernel, n_pes: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::t3d(n_pes).with_sim(SimOptions {
        repeat_sample: k.repeat_sample,
        oracle_examples: 4,
        ..Default::default()
    });
    if let Some(f) = k.layout {
        cfg = cfg.with_layout(f(&k.program, n_pes));
    }
    cfg
}

/// Run one kernel cell with a configuration tweak applied on top of the
/// kernel's defaults (ablation studies).
pub fn run_cell_with(
    k: &BenchKernel,
    n_pes: usize,
    tweak: impl FnOnce(&mut PipelineConfig),
) -> Result<Comparison, PipelineError> {
    let mut cfg = cell_config(k, n_pes);
    tweak(&mut cfg);
    compare(&k.program, &cfg)
}

/// Run the full grid: for each kernel, one [`Comparison`] per PE count.
/// Cells run on host threads (each cell is an independent simulation); the
/// first coherence violation anywhere in the grid fails the whole run.
pub fn run_grid(
    kernels: &[BenchKernel],
    pes: &[usize],
) -> Result<Vec<Vec<Comparison>>, PipelineError> {
    std::thread::scope(|s| {
        let handles: Vec<Vec<_>> = kernels
            .iter()
            .map(|k| {
                pes.iter()
                    .map(|&n| {
                        let program = &k.program;
                        s.spawn(move || compare(program, &cell_config(k, n)))
                    })
                    .collect()
            })
            .collect();
        handles
            .into_iter()
            .map(|hs| hs.into_iter().map(|h| h.join().expect("cell run")).collect())
            .collect()
    })
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn quick_grid_single_cell_runs() {
        let kernels = paper_kernels(Scale::Quick);
        assert_eq!(kernels.len(), 4);
        let grid = run_grid(&kernels[..1], &[2]).expect("coherent grid");
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 1);
        assert!(grid[0][0].ccdp.oracle.is_coherent());
    }

    #[test]
    fn seed_from_prefers_flag_over_env() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(seed_from(&args(&["--seed", "17"])), Ok(17));
        assert_eq!(seed_from(&args(&["--quick", "--seed=99"])), Ok(99));
        assert!(seed_from(&args(&["--seed", "banana"])).is_err());
        assert!(seed_from(&args(&["--seed"])).is_err());
        // No flag and no env (tests don't set CCDP_SEED): default 0.
        if std::env::var("CCDP_SEED").is_err() {
            assert_eq!(seed_from(&args(&[])), Ok(0));
        }
    }

    #[test]
    fn scale_parse_accepts_known_rejects_unknown() {
        assert_eq!(Scale::parse("quick"), Ok(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Ok(Scale::Paper));
        let err = Scale::parse("fast").unwrap_err();
        assert_eq!(err.value, "fast");
        assert!(format!("{err}").contains("fast"));
        assert_eq!(Scale::Quick.name(), "quick");
        assert_eq!(Scale::Paper.name(), "paper");
    }
}
