//! Random program synthesis for end-to-end property testing.
//!
//! Generates small, *valid* programs (DOALL independence guaranteed by
//! construction) with a mix of the structures the CCDP pipeline must handle:
//! serial and parallel epochs, aligned and unaligned DOALLs, dynamic
//! scheduling, multi-phase (wrapper) epochs, branches, repeats, and stencil
//! reads with random offsets.
//!
//! Test invariants (see `tests/synth_pipeline.rs`):
//! * SEQ, BASE, and CCDP compute identical results;
//! * the CCDP run reports zero stale-read violations;
//! * every potentially-stale reference ends up `Fresh` or `Bypass`.

use ccdp_ir::{
    Affine, CondB, PrefetchKind, Program, ProgramBuilder, ProgramItem, RefId, Stmt, Var, VExpr,
};
use ccdp_prefetch::{Handling, PrefetchPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesis knobs.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    pub max_arrays: usize,
    pub max_epochs: usize,
    pub extent: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { max_arrays: 4, max_epochs: 6, extent: 20 }
    }
}

/// Generate a random valid program from a seed.
pub fn random_program(seed: u64, cfg: &SynthConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.extent as i64;
    let n_arrays = rng.gen_range(2..=cfg.max_arrays);
    let mut pb = ProgramBuilder::new("synth");
    let arrays: Vec<_> = (0..n_arrays)
        .map(|k| pb.shared(&format!("A{k}"), &[cfg.extent, cfg.extent]))
        .collect();

    // Initialisation epoch: every array gets index-dependent values,
    // column-aligned writes.
    pb.parallel_epoch("init", |e| {
        e.doall_aligned("j0", 0, n - 1, &arrays[0], |e, j| {
            e.serial("i0", 0, n - 1, |e, i| {
                for (k, a) in arrays.iter().enumerate() {
                    e.assign(
                        a.at2(i, j),
                        i.val() * 0.01 + j.val() * (0.001 * (k + 1) as f64) + 1.0,
                    );
                }
            });
        });
    });

    let n_epochs = rng.gen_range(2..=cfg.max_epochs);
    for ei in 0..n_epochs {
        // Output array written this epoch; inputs read from the others.
        let out = rng.gen_range(0..n_arrays);
        let shape = rng.gen_range(0..6);
        let label = format!("e{ei}");
        let off = |rng: &mut StdRng| rng.gen_range(-2i64..=2);
        let margin = 2i64;

        // Build one statement: out(i,j) = f(inputs at offset positions).
        // Reading `out` itself only at exactly (i,j) keeps the DOALL
        // independent.
        let stmt = |e: &mut ccdp_ir::BlockCtx,
                    rng: &mut StdRng,
                    i: Var,
                    j: Var| {
            let mut expr: VExpr = arrays[out].at2(i, j).rd() * 0.5;
            let n_reads = rng.gen_range(1..=3);
            for _ in 0..n_reads {
                let src = rng.gen_range(0..n_arrays);
                if src == out {
                    expr = expr + arrays[out].at2(i, j).rd() * 0.125;
                } else {
                    let (di, dj) = (off(rng), off(rng));
                    let transpose = rng.gen_bool(0.2);
                    let term = if transpose {
                        arrays[src].at2(j + di, i + dj).rd()
                    } else {
                        arrays[src].at2(i + di, j + dj).rd()
                    };
                    expr = expr + term * 0.25;
                }
            }
            e.assign(arrays[out].at2(i, j), expr);
        };

        match shape {
            // Plain aligned parallel epoch.
            0 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall_aligned("j", margin, n - 1 - margin, &arrays[out], |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Unaligned (count-block) parallel epoch.
            1 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall("j", margin, n - 1 - margin, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Dynamically scheduled epoch.
            2 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                let chunk = rng.gen_range(1..=4);
                pb.parallel_epoch(&label, |e| {
                    e.doall_dynamic("j", margin, n - 1 - margin, chunk, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Multi-phase epoch: serial wrapper over a DOALL (sweep).
            3 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.serial("w", margin, n - 1 - margin, |e, w| {
                        e.doall("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, w);
                        });
                    });
                });
            }
            // Serial epoch.
            4 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.serial_epoch(&label, |e| {
                    e.serial("j", margin, n - 1 - margin, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Parallel epoch with a branch around the statement (Fig. 2
            // cases 5/6).
            _ => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall_aligned("j", margin, n - 1 - margin, &arrays[out], |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            e.if_else(
                                CondB::gt(i, margin + 1),
                                |e| stmt(e, &mut r, i, j),
                                |e| {
                                    e.assign(
                                        arrays[out].at2(i, j),
                                        arrays[out].at2(i, j).rd() * 0.75,
                                    );
                                },
                            );
                        });
                    });
                });
            }
        }
    }

    // Occasionally wrap a trailing pair of epochs in a repeat.
    if rng.gen_bool(0.5) {
        let reps = rng.gen_range(2..=3);
        let out = rng.gen_range(0..n_arrays);
        let src = (out + 1) % n_arrays;
        pb.repeat(reps, |rep| {
            rep.parallel_epoch("rep_r", |e| {
                e.doall_aligned("j", 2, n - 3, &arrays[out], |e, j| {
                    e.serial("i", 2, n - 3, |e, i| {
                        e.assign(
                            arrays[out].at2(i, j),
                            arrays[out].at2(i, j).rd() * 0.5
                                + arrays[src].at2(i + 1, j - 1).rd() * 0.25,
                        );
                    });
                });
            });
            rep.parallel_epoch("rep_w", |e| {
                e.doall_aligned("j", 2, n - 3, &arrays[src], |e, j| {
                    e.serial("i", 2, n - 3, |e, i| {
                        e.assign(
                            arrays[src].at2(i, j),
                            arrays[src].at2(i, j).rd() * 0.5
                                + arrays[out].at2(i, j).rd() * 0.25,
                        );
                    });
                });
            });
        });
    }

    pb.finish().expect("synthesized program must validate")
}

/// One seeded corruption of a compiled (transformed program, plan) pair.
///
/// These are the defect classes the static verifier and the dynamic oracle
/// are cross-validated against: each mutation either silently removes
/// coherence protection (`FlipHandling`) or removes/invalidates the prefetch
/// coverage a `Fresh` read depends on (the rest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMutation {
    /// A `Fresh`/`Bypass` read demoted to a plain cached read.
    FlipHandling { rid: RefId, from: Handling },
    /// A materialized line/vector prefetch statement deleted.
    DropPrefetchStmt { covers: RefId },
    /// A pipelined-prefetch loop annotation deleted.
    DropPipelined { covers: RefId },
    /// A vector prefetch replaced by a single constant-index line prefetch
    /// (the transfer shrinks from the whole section to one line).
    ShrinkVector { covers: RefId },
    /// A line prefetch's leading subscript shifted off its read's cache
    /// line.
    WeakenLine { covers: RefId, shift: i64 },
}

impl PlanMutation {
    /// Does this mutation change how the *use* of the read is handled (as
    /// opposed to only degrading prefetch coverage)? Coverage-only
    /// mutations are dynamically coherent — `Fresh`/`Bypass` re-fetch at
    /// use — so they must never perturb simulated numerics, only timing.
    pub fn changes_handling(&self) -> bool {
        matches!(self, PlanMutation::FlipHandling { .. })
    }
}

impl std::fmt::Display for PlanMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanMutation::FlipHandling { rid, from } => {
                write!(f, "flip ref #{} from {from:?} to Normal", rid.index())
            }
            PlanMutation::DropPrefetchStmt { covers } => {
                write!(f, "drop prefetch statement covering ref #{}", covers.index())
            }
            PlanMutation::DropPipelined { covers } => {
                write!(f, "drop pipelined prefetch covering ref #{}", covers.index())
            }
            PlanMutation::ShrinkVector { covers } => {
                write!(f, "shrink vector prefetch covering ref #{} to one line", covers.index())
            }
            PlanMutation::WeakenLine { covers, shift } => {
                write!(f, "shift line prefetch covering ref #{} by {shift}", covers.index())
            }
        }
    }
}

/// Walker state shared by the site-counting and site-applying passes; both
/// traverse in the same order, so site index `k` always lands on the same
/// construct.
struct MutState {
    target: usize,
    next: usize,
    applied: Option<PlanMutation>,
    array_ranks: Vec<usize>,
}

impl MutState {
    fn hit(&mut self) -> bool {
        let h = self.applied.is_none() && self.next == self.target;
        self.next += 1;
        h
    }
}

// Shift that moves a word prefetch at least one full line away regardless of
// which word of the line the read touches (default line is 4 words).
const WEAKEN_SHIFT: i64 = 8;

fn mutate_stmts(stmts: &mut Vec<Stmt>, st: &mut MutState) {
    let mut k = 0;
    while k < stmts.len() {
        if st.applied.is_some() {
            return;
        }
        let mut remove = false;
        match &mut stmts[k] {
            Stmt::Prefetch(pf) => {
                let covers = match &pf.kind {
                    PrefetchKind::Line { covers, .. } | PrefetchKind::Vector { covers, .. } => {
                        *covers
                    }
                };
                if st.hit() {
                    st.applied = Some(PlanMutation::DropPrefetchStmt { covers });
                    remove = true;
                } else if st.hit() {
                    match &mut pf.kind {
                        PrefetchKind::Line { index, .. } => {
                            index[0] = index[0].add_const(WEAKEN_SHIFT);
                            st.applied =
                                Some(PlanMutation::WeakenLine { covers, shift: WEAKEN_SHIFT });
                        }
                        PrefetchKind::Vector { covers, array, .. } => {
                            let (c, a) = (*covers, *array);
                            let rank = st.array_ranks[a.index()];
                            pf.kind = PrefetchKind::Line {
                                covers: c,
                                array: a,
                                index: vec![Affine::constant(0); rank],
                            };
                            st.applied = Some(PlanMutation::ShrinkVector { covers: c });
                        }
                    }
                }
            }
            Stmt::Loop(l) => {
                let mut pi = 0;
                while pi < l.pipeline.len() {
                    if st.hit() {
                        let covers = l.pipeline[pi].covers;
                        l.pipeline.remove(pi);
                        st.applied = Some(PlanMutation::DropPipelined { covers });
                        break;
                    }
                    pi += 1;
                }
                if st.applied.is_none() {
                    mutate_stmts(&mut l.body, st);
                }
            }
            Stmt::If(i) => {
                mutate_stmts(&mut i.then_branch, st);
                if st.applied.is_none() {
                    mutate_stmts(&mut i.else_branch, st);
                }
            }
            Stmt::Assign(_) => {}
        }
        if remove {
            stmts.remove(k);
            return;
        }
        k += 1;
    }
}

fn mutate_items(items: &mut [ProgramItem], st: &mut MutState) {
    for item in items {
        if st.applied.is_some() {
            return;
        }
        match item {
            ProgramItem::Epoch(e) => mutate_stmts(&mut e.stmts, st),
            ProgramItem::Repeat { body, .. } => mutate_items(body, st),
            ProgramItem::Call(_) => {} // routine bodies handled once below
        }
    }
}

fn count_construct_sites(program: &Program) -> usize {
    // Line and vector prefetch statements contribute two sites (drop +
    // weaken/shrink), pipelined annotations one.
    fn stmts(ss: &[Stmt]) -> usize {
        ss.iter()
            .map(|s| match s {
                Stmt::Prefetch(_) => 2,
                Stmt::Loop(l) => l.pipeline.len() + stmts(&l.body),
                Stmt::If(i) => stmts(&i.then_branch) + stmts(&i.else_branch),
                Stmt::Assign(_) => 0,
            })
            .sum()
    }
    fn items(is: &[ProgramItem]) -> usize {
        is.iter()
            .map(|it| match it {
                ProgramItem::Epoch(e) => stmts(&e.stmts),
                ProgramItem::Repeat { body, .. } => items(body),
                ProgramItem::Call(_) => 0,
            })
            .sum()
    }
    items(&program.items) + program.routines.iter().map(|r| items(&r.items)).sum::<usize>()
}

/// Seed a single deterministic corruption into a compiled `(transformed,
/// plan)` pair. Sites are enumerated in a fixed order (handling flips
/// first, then constructs in program order) and `seed` indexes into them,
/// so a sweep over seeds exercises every mutable site. Returns `None` only
/// when the plan protects nothing (no non-`Normal` handling and no
/// materialized prefetch) — nothing to corrupt.
pub fn mutate_plan(
    seed: u64,
    program: &mut Program,
    plan: &mut PrefetchPlan,
) -> Option<PlanMutation> {
    let flips: Vec<usize> = (0..plan.handling.len())
        .filter(|&i| plan.handling[i] != Handling::Normal)
        .collect();
    let construct_sites = count_construct_sites(program);
    let total = flips.len() + construct_sites;
    if total == 0 {
        return None;
    }
    let idx = (seed % total as u64) as usize;
    if idx < flips.len() {
        let i = flips[idx];
        let from = plan.handling[i];
        plan.handling[i] = Handling::Normal;
        return Some(PlanMutation::FlipHandling { rid: RefId(i as u32), from });
    }
    let mut st = MutState {
        target: idx - flips.len(),
        next: 0,
        applied: None,
        array_ranks: program.arrays.iter().map(|a| a.rank()).collect(),
    };
    mutate_items(&mut program.items, &mut st);
    if st.applied.is_none() {
        for r in &mut program.routines {
            mutate_items(&mut r.items, &mut st);
            if st.applied.is_some() {
                break;
            }
        }
    }
    debug_assert!(st.applied.is_some(), "site count and walk order disagree");
    st.applied
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = random_program(42, &cfg);
        let b = random_program(42, &cfg);
        assert_eq!(ccdp_ir::print_program(&a), ccdp_ir::print_program(&b));
    }

    #[test]
    fn many_seeds_validate() {
        let cfg = SynthConfig::default();
        for seed in 0..40 {
            let p = random_program(seed, &cfg);
            assert!(ccdp_ir::validate(&p).is_ok(), "seed {seed}");
            assert!(!p.epochs().is_empty());
        }
    }
}
