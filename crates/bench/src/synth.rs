//! Random program synthesis for end-to-end property testing.
//!
//! Generates small, *valid* programs (DOALL independence guaranteed by
//! construction) with a mix of the structures the CCDP pipeline must handle:
//! serial and parallel epochs, aligned and unaligned DOALLs, dynamic
//! scheduling, multi-phase (wrapper) epochs, branches, repeats, and stencil
//! reads with random offsets.
//!
//! Test invariants (see `tests/synth_pipeline.rs`):
//! * SEQ, BASE, and CCDP compute identical results;
//! * the CCDP run reports zero stale-read violations;
//! * every potentially-stale reference ends up `Fresh` or `Bypass`.

use ccdp_ir::{CondB, Program, ProgramBuilder, Var, VExpr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesis knobs.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    pub max_arrays: usize,
    pub max_epochs: usize,
    pub extent: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { max_arrays: 4, max_epochs: 6, extent: 20 }
    }
}

/// Generate a random valid program from a seed.
pub fn random_program(seed: u64, cfg: &SynthConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.extent as i64;
    let n_arrays = rng.gen_range(2..=cfg.max_arrays);
    let mut pb = ProgramBuilder::new("synth");
    let arrays: Vec<_> = (0..n_arrays)
        .map(|k| pb.shared(&format!("A{k}"), &[cfg.extent, cfg.extent]))
        .collect();

    // Initialisation epoch: every array gets index-dependent values,
    // column-aligned writes.
    pb.parallel_epoch("init", |e| {
        e.doall_aligned("j0", 0, n - 1, &arrays[0], |e, j| {
            e.serial("i0", 0, n - 1, |e, i| {
                for (k, a) in arrays.iter().enumerate() {
                    e.assign(
                        a.at2(i, j),
                        i.val() * 0.01 + j.val() * (0.001 * (k + 1) as f64) + 1.0,
                    );
                }
            });
        });
    });

    let n_epochs = rng.gen_range(2..=cfg.max_epochs);
    for ei in 0..n_epochs {
        // Output array written this epoch; inputs read from the others.
        let out = rng.gen_range(0..n_arrays);
        let shape = rng.gen_range(0..6);
        let label = format!("e{ei}");
        let off = |rng: &mut StdRng| rng.gen_range(-2i64..=2);
        let margin = 2i64;

        // Build one statement: out(i,j) = f(inputs at offset positions).
        // Reading `out` itself only at exactly (i,j) keeps the DOALL
        // independent.
        let stmt = |e: &mut ccdp_ir::BlockCtx,
                    rng: &mut StdRng,
                    i: Var,
                    j: Var| {
            let mut expr: VExpr = arrays[out].at2(i, j).rd() * 0.5;
            let n_reads = rng.gen_range(1..=3);
            for _ in 0..n_reads {
                let src = rng.gen_range(0..n_arrays);
                if src == out {
                    expr = expr + arrays[out].at2(i, j).rd() * 0.125;
                } else {
                    let (di, dj) = (off(rng), off(rng));
                    let transpose = rng.gen_bool(0.2);
                    let term = if transpose {
                        arrays[src].at2(j + di, i + dj).rd()
                    } else {
                        arrays[src].at2(i + di, j + dj).rd()
                    };
                    expr = expr + term * 0.25;
                }
            }
            e.assign(arrays[out].at2(i, j), expr);
        };

        match shape {
            // Plain aligned parallel epoch.
            0 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall_aligned("j", margin, n - 1 - margin, &arrays[out], |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Unaligned (count-block) parallel epoch.
            1 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall("j", margin, n - 1 - margin, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Dynamically scheduled epoch.
            2 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                let chunk = rng.gen_range(1..=4);
                pb.parallel_epoch(&label, |e| {
                    e.doall_dynamic("j", margin, n - 1 - margin, chunk, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Multi-phase epoch: serial wrapper over a DOALL (sweep).
            3 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.serial("w", margin, n - 1 - margin, |e, w| {
                        e.doall("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, w);
                        });
                    });
                });
            }
            // Serial epoch.
            4 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.serial_epoch(&label, |e| {
                    e.serial("j", margin, n - 1 - margin, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Parallel epoch with a branch around the statement (Fig. 2
            // cases 5/6).
            _ => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall_aligned("j", margin, n - 1 - margin, &arrays[out], |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            e.if_else(
                                CondB::gt(i, margin + 1),
                                |e| stmt(e, &mut r, i, j),
                                |e| {
                                    e.assign(
                                        arrays[out].at2(i, j),
                                        arrays[out].at2(i, j).rd() * 0.75,
                                    );
                                },
                            );
                        });
                    });
                });
            }
        }
    }

    // Occasionally wrap a trailing pair of epochs in a repeat.
    if rng.gen_bool(0.5) {
        let reps = rng.gen_range(2..=3);
        let out = rng.gen_range(0..n_arrays);
        let src = (out + 1) % n_arrays;
        pb.repeat(reps, |rep| {
            rep.parallel_epoch("rep_r", |e| {
                e.doall_aligned("j", 2, n - 3, &arrays[out], |e, j| {
                    e.serial("i", 2, n - 3, |e, i| {
                        e.assign(
                            arrays[out].at2(i, j),
                            arrays[out].at2(i, j).rd() * 0.5
                                + arrays[src].at2(i + 1, j - 1).rd() * 0.25,
                        );
                    });
                });
            });
            rep.parallel_epoch("rep_w", |e| {
                e.doall_aligned("j", 2, n - 3, &arrays[src], |e, j| {
                    e.serial("i", 2, n - 3, |e, i| {
                        e.assign(
                            arrays[src].at2(i, j),
                            arrays[src].at2(i, j).rd() * 0.5
                                + arrays[out].at2(i, j).rd() * 0.25,
                        );
                    });
                });
            });
        });
    }

    pb.finish().expect("synthesized program must validate")
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = random_program(42, &cfg);
        let b = random_program(42, &cfg);
        assert_eq!(ccdp_ir::print_program(&a), ccdp_ir::print_program(&b));
    }

    #[test]
    fn many_seeds_validate() {
        let cfg = SynthConfig::default();
        for seed in 0..40 {
            let p = random_program(seed, &cfg);
            assert!(ccdp_ir::validate(&p).is_ok(), "seed {seed}");
            assert!(!p.epochs().is_empty());
        }
    }
}
