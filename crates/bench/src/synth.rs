//! Random program synthesis for end-to-end property testing.
//!
//! Generates small, *valid* programs (DOALL independence guaranteed by
//! construction) with a mix of the structures the CCDP pipeline must handle:
//! serial and parallel epochs, aligned and unaligned DOALLs, dynamic
//! scheduling, multi-phase (wrapper) epochs, branches, repeats, and stencil
//! reads with random offsets.
//!
//! Test invariants (see `tests/synth_pipeline.rs`):
//! * SEQ, BASE, and CCDP compute identical results;
//! * the CCDP run reports zero stale-read violations;
//! * every potentially-stale reference ends up `Fresh` or `Bypass`.

use ccdp_ir::{
    find_doall, Affine, ArrayId, ArrayRef, Assign, CondB, EpochId, EpochKind, LoopId, LoopKind,
    PrefetchKind, Program, ProgramBuilder, ProgramItem, RefId, Sharing, Stmt, ValExpr, Var, VExpr,
};
use ccdp_prefetch::{Handling, PrefetchPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesis knobs.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    pub max_arrays: usize,
    pub max_epochs: usize,
    pub extent: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { max_arrays: 4, max_epochs: 6, extent: 20 }
    }
}

/// Generate a random valid program from a seed.
pub fn random_program(seed: u64, cfg: &SynthConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.extent as i64;
    let n_arrays = rng.gen_range(2..=cfg.max_arrays);
    let mut pb = ProgramBuilder::new("synth");
    let arrays: Vec<_> = (0..n_arrays)
        .map(|k| pb.shared(&format!("A{k}"), &[cfg.extent, cfg.extent]))
        .collect();

    // Initialisation epoch: every array gets index-dependent values,
    // column-aligned writes.
    pb.parallel_epoch("init", |e| {
        e.doall_aligned("j0", 0, n - 1, &arrays[0], |e, j| {
            e.serial("i0", 0, n - 1, |e, i| {
                for (k, a) in arrays.iter().enumerate() {
                    e.assign(
                        a.at2(i, j),
                        i.val() * 0.01 + j.val() * (0.001 * (k + 1) as f64) + 1.0,
                    );
                }
            });
        });
    });

    let n_epochs = rng.gen_range(2..=cfg.max_epochs);
    for ei in 0..n_epochs {
        // Output array written this epoch; inputs read from the others.
        let out = rng.gen_range(0..n_arrays);
        let shape = rng.gen_range(0..6);
        let label = format!("e{ei}");
        let off = |rng: &mut StdRng| rng.gen_range(-2i64..=2);
        let margin = 2i64;

        // Build one statement: out(i,j) = f(inputs at offset positions).
        // Reading `out` itself only at exactly (i,j) keeps the DOALL
        // independent.
        let stmt = |e: &mut ccdp_ir::BlockCtx,
                    rng: &mut StdRng,
                    i: Var,
                    j: Var| {
            let mut expr: VExpr = arrays[out].at2(i, j).rd() * 0.5;
            let n_reads = rng.gen_range(1..=3);
            for _ in 0..n_reads {
                let src = rng.gen_range(0..n_arrays);
                if src == out {
                    expr = expr + arrays[out].at2(i, j).rd() * 0.125;
                } else {
                    let (di, dj) = (off(rng), off(rng));
                    let transpose = rng.gen_bool(0.2);
                    let term = if transpose {
                        arrays[src].at2(j + di, i + dj).rd()
                    } else {
                        arrays[src].at2(i + di, j + dj).rd()
                    };
                    expr = expr + term * 0.25;
                }
            }
            e.assign(arrays[out].at2(i, j), expr);
        };

        match shape {
            // Plain aligned parallel epoch.
            0 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall_aligned("j", margin, n - 1 - margin, &arrays[out], |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Unaligned (count-block) parallel epoch.
            1 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall("j", margin, n - 1 - margin, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Dynamically scheduled epoch.
            2 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                let chunk = rng.gen_range(1..=4);
                pb.parallel_epoch(&label, |e| {
                    e.doall_dynamic("j", margin, n - 1 - margin, chunk, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Multi-phase epoch: serial wrapper over a DOALL (sweep).
            3 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.serial("w", margin, n - 1 - margin, |e, w| {
                        e.doall("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, w);
                        });
                    });
                });
            }
            // Serial epoch.
            4 => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.serial_epoch(&label, |e| {
                    e.serial("j", margin, n - 1 - margin, |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            stmt(e, &mut r, i, j);
                        });
                    });
                });
            }
            // Parallel epoch with a branch around the statement (Fig. 2
            // cases 5/6).
            _ => {
                let mut r = StdRng::seed_from_u64(rng.gen());
                pb.parallel_epoch(&label, |e| {
                    e.doall_aligned("j", margin, n - 1 - margin, &arrays[out], |e, j| {
                        e.serial("i", margin, n - 1 - margin, |e, i| {
                            e.if_else(
                                CondB::gt(i, margin + 1),
                                |e| stmt(e, &mut r, i, j),
                                |e| {
                                    e.assign(
                                        arrays[out].at2(i, j),
                                        arrays[out].at2(i, j).rd() * 0.75,
                                    );
                                },
                            );
                        });
                    });
                });
            }
        }
    }

    // Occasionally wrap a trailing pair of epochs in a repeat.
    if rng.gen_bool(0.5) {
        let reps = rng.gen_range(2..=3);
        let out = rng.gen_range(0..n_arrays);
        let src = (out + 1) % n_arrays;
        pb.repeat(reps, |rep| {
            rep.parallel_epoch("rep_r", |e| {
                e.doall_aligned("j", 2, n - 3, &arrays[out], |e, j| {
                    e.serial("i", 2, n - 3, |e, i| {
                        e.assign(
                            arrays[out].at2(i, j),
                            arrays[out].at2(i, j).rd() * 0.5
                                + arrays[src].at2(i + 1, j - 1).rd() * 0.25,
                        );
                    });
                });
            });
            rep.parallel_epoch("rep_w", |e| {
                e.doall_aligned("j", 2, n - 3, &arrays[src], |e, j| {
                    e.serial("i", 2, n - 3, |e, i| {
                        e.assign(
                            arrays[src].at2(i, j),
                            arrays[src].at2(i, j).rd() * 0.5
                                + arrays[out].at2(i, j).rd() * 0.25,
                        );
                    });
                });
            });
        });
    }

    pb.finish().expect("synthesized program must validate")
}

/// One seeded corruption of a compiled (transformed program, plan) pair.
///
/// These are the defect classes the static verifier and the dynamic oracle
/// are cross-validated against: each mutation either silently removes
/// coherence protection (`FlipHandling`) or removes/invalidates the prefetch
/// coverage a `Fresh` read depends on (the rest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMutation {
    /// A `Fresh`/`Bypass` read demoted to a plain cached read.
    FlipHandling { rid: RefId, from: Handling },
    /// A materialized line/vector prefetch statement deleted.
    DropPrefetchStmt { covers: RefId },
    /// A pipelined-prefetch loop annotation deleted.
    DropPipelined { covers: RefId },
    /// A vector prefetch replaced by a single constant-index line prefetch
    /// (the transfer shrinks from the whole section to one line).
    ShrinkVector { covers: RefId },
    /// A line prefetch's leading subscript shifted off its read's cache
    /// line.
    WeakenLine { covers: RefId, shift: i64 },
}

impl PlanMutation {
    /// Does this mutation change how the *use* of the read is handled (as
    /// opposed to only degrading prefetch coverage)? Coverage-only
    /// mutations are dynamically coherent — `Fresh`/`Bypass` re-fetch at
    /// use — so they must never perturb simulated numerics, only timing.
    pub fn changes_handling(&self) -> bool {
        matches!(self, PlanMutation::FlipHandling { .. })
    }
}

impl std::fmt::Display for PlanMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanMutation::FlipHandling { rid, from } => {
                write!(f, "flip ref #{} from {from:?} to Normal", rid.index())
            }
            PlanMutation::DropPrefetchStmt { covers } => {
                write!(f, "drop prefetch statement covering ref #{}", covers.index())
            }
            PlanMutation::DropPipelined { covers } => {
                write!(f, "drop pipelined prefetch covering ref #{}", covers.index())
            }
            PlanMutation::ShrinkVector { covers } => {
                write!(f, "shrink vector prefetch covering ref #{} to one line", covers.index())
            }
            PlanMutation::WeakenLine { covers, shift } => {
                write!(f, "shift line prefetch covering ref #{} by {shift}", covers.index())
            }
        }
    }
}

/// Walker state shared by the site-counting and site-applying passes; both
/// traverse in the same order, so site index `k` always lands on the same
/// construct.
struct MutState {
    target: usize,
    next: usize,
    applied: Option<PlanMutation>,
    array_ranks: Vec<usize>,
}

impl MutState {
    fn hit(&mut self) -> bool {
        let h = self.applied.is_none() && self.next == self.target;
        self.next += 1;
        h
    }
}

// Shift that moves a word prefetch at least one full line away regardless of
// which word of the line the read touches (default line is 4 words).
const WEAKEN_SHIFT: i64 = 8;

fn mutate_stmts(stmts: &mut Vec<Stmt>, st: &mut MutState) {
    let mut k = 0;
    while k < stmts.len() {
        if st.applied.is_some() {
            return;
        }
        let mut remove = false;
        match &mut stmts[k] {
            Stmt::Prefetch(pf) => {
                let covers = match &pf.kind {
                    PrefetchKind::Line { covers, .. } | PrefetchKind::Vector { covers, .. } => {
                        *covers
                    }
                };
                if st.hit() {
                    st.applied = Some(PlanMutation::DropPrefetchStmt { covers });
                    remove = true;
                } else if st.hit() {
                    match &mut pf.kind {
                        PrefetchKind::Line { index, .. } => {
                            index[0] = index[0].add_const(WEAKEN_SHIFT);
                            st.applied =
                                Some(PlanMutation::WeakenLine { covers, shift: WEAKEN_SHIFT });
                        }
                        PrefetchKind::Vector { covers, array, .. } => {
                            let (c, a) = (*covers, *array);
                            let rank = st.array_ranks[a.index()];
                            pf.kind = PrefetchKind::Line {
                                covers: c,
                                array: a,
                                index: vec![Affine::constant(0); rank],
                            };
                            st.applied = Some(PlanMutation::ShrinkVector { covers: c });
                        }
                    }
                }
            }
            Stmt::Loop(l) => {
                let mut pi = 0;
                while pi < l.pipeline.len() {
                    if st.hit() {
                        let covers = l.pipeline[pi].covers;
                        l.pipeline.remove(pi);
                        st.applied = Some(PlanMutation::DropPipelined { covers });
                        break;
                    }
                    pi += 1;
                }
                if st.applied.is_none() {
                    mutate_stmts(&mut l.body, st);
                }
            }
            Stmt::If(i) => {
                mutate_stmts(&mut i.then_branch, st);
                if st.applied.is_none() {
                    mutate_stmts(&mut i.else_branch, st);
                }
            }
            Stmt::Assign(_) => {}
        }
        if remove {
            stmts.remove(k);
            return;
        }
        k += 1;
    }
}

fn mutate_items(items: &mut [ProgramItem], st: &mut MutState) {
    for item in items {
        if st.applied.is_some() {
            return;
        }
        match item {
            ProgramItem::Epoch(e) => mutate_stmts(&mut e.stmts, st),
            ProgramItem::Repeat { body, .. } => mutate_items(body, st),
            ProgramItem::Call(_) => {} // routine bodies handled once below
        }
    }
}

fn count_construct_sites(program: &Program) -> usize {
    // Line and vector prefetch statements contribute two sites (drop +
    // weaken/shrink), pipelined annotations one.
    fn stmts(ss: &[Stmt]) -> usize {
        ss.iter()
            .map(|s| match s {
                Stmt::Prefetch(_) => 2,
                Stmt::Loop(l) => l.pipeline.len() + stmts(&l.body),
                Stmt::If(i) => stmts(&i.then_branch) + stmts(&i.else_branch),
                Stmt::Assign(_) => 0,
            })
            .sum()
    }
    fn items(is: &[ProgramItem]) -> usize {
        is.iter()
            .map(|it| match it {
                ProgramItem::Epoch(e) => stmts(&e.stmts),
                ProgramItem::Repeat { body, .. } => items(body),
                ProgramItem::Call(_) => 0,
            })
            .sum()
    }
    items(&program.items) + program.routines.iter().map(|r| items(&r.items)).sum::<usize>()
}

/// Seed a single deterministic corruption into a compiled `(transformed,
/// plan)` pair. Sites are enumerated in a fixed order (handling flips
/// first, then constructs in program order) and `seed` indexes into them,
/// so a sweep over seeds exercises every mutable site. Returns `None` only
/// when the plan protects nothing (no non-`Normal` handling and no
/// materialized prefetch) — nothing to corrupt.
pub fn mutate_plan(
    seed: u64,
    program: &mut Program,
    plan: &mut PrefetchPlan,
) -> Option<PlanMutation> {
    let flips: Vec<usize> = (0..plan.handling.len())
        .filter(|&i| plan.handling[i] != Handling::Normal)
        .collect();
    let construct_sites = count_construct_sites(program);
    let total = flips.len() + construct_sites;
    if total == 0 {
        return None;
    }
    let idx = (seed % total as u64) as usize;
    if idx < flips.len() {
        let i = flips[idx];
        let from = plan.handling[i];
        plan.handling[i] = Handling::Normal;
        return Some(PlanMutation::FlipHandling { rid: RefId(i as u32), from });
    }
    let mut st = MutState {
        target: idx - flips.len(),
        next: 0,
        applied: None,
        array_ranks: program.arrays.iter().map(|a| a.rank()).collect(),
    };
    mutate_items(&mut program.items, &mut st);
    if st.applied.is_none() {
        for r in &mut program.routines {
            mutate_items(&mut r.items, &mut st);
            if st.applied.is_some() {
                break;
            }
        }
    }
    debug_assert!(st.applied.is_some(), "site count and walk order disagree");
    st.applied
}

/// One seeded corruption of an *original* (pre-compilation) program's shard
/// independence — the program-level counterpart of [`PlanMutation`], which
/// corrupts the prefetch plan. A write to one fixed element of a shared
/// array already written under a statically scheduled DOALL is injected at
/// the head of the DOALL body, so every PE block writes (and reads) the same
/// cache line. The static shard analysis must answer non-`Disjoint` for that
/// loop (lint `CCDP006`), and an epoch-sharded run must record a merge-time
/// conflict for it — `tests/shard_analysis.rs` cross-validates both against
/// each other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramMutation {
    /// `array(0,…,0) = array(0,…,0) * 0.5 + 1.0` inserted at the head of
    /// the DOALL body of epoch `epoch`.
    CrossBlockWrite { epoch: String, doall: LoopId, array: ArrayId, write: RefId },
}

impl ProgramMutation {
    /// Mirror of [`PlanMutation::changes_handling`]: does this mutation
    /// change the simulated numerics? Every program mutation does (the
    /// injected write lands on a live element), so harnesses assert verdict
    /// agreement — static non-`Disjoint` plus a dynamic merge conflict —
    /// never byte-identity with the unmutated run.
    pub fn changes_numerics(&self) -> bool {
        matches!(self, ProgramMutation::CrossBlockWrite { .. })
    }
}

impl std::fmt::Display for ProgramMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramMutation::CrossBlockWrite { epoch, doall, array, write } => write!(
                f,
                "inject cross-block write ref #{} to array #{} element 0 into doall L{} of epoch '{epoch}'",
                write.index(),
                array.index(),
                doall.index()
            ),
        }
    }
}

/// An eligible injection site: a parallel epoch whose DOALL is statically
/// scheduled and writes at least one shared array.
#[derive(Clone)]
struct ShardSite {
    epoch: EpochId,
    label: String,
    doall: LoopId,
    array: ArrayId,
    rank: usize,
}

fn first_shared_write(program: &Program, stmts: &[Stmt]) -> Option<ArrayId> {
    for s in stmts {
        match s {
            Stmt::Assign(a) if program.array(a.write.array).sharing == Sharing::Shared => {
                return Some(a.write.array);
            }
            Stmt::Loop(l) => {
                if let Some(x) = first_shared_write(program, &l.body) {
                    return Some(x);
                }
            }
            Stmt::If(i) => {
                if let Some(x) = first_shared_write(program, &i.then_branch)
                    .or_else(|| first_shared_write(program, &i.else_branch))
                {
                    return Some(x);
                }
            }
            _ => {}
        }
    }
    None
}

fn collect_shard_sites(program: &Program, items: &[ProgramItem], out: &mut Vec<ShardSite>) {
    for it in items {
        match it {
            ProgramItem::Epoch(e) if e.kind == EpochKind::Parallel => {
                if let Some((_, d)) = find_doall(&e.stmts) {
                    if d.kind == LoopKind::DoAllStatic {
                        if let Some(a) = first_shared_write(program, &d.body) {
                            out.push(ShardSite {
                                epoch: e.id,
                                label: e.label.clone(),
                                doall: d.id,
                                array: a,
                                rank: program.array(a).rank(),
                            });
                        }
                    }
                }
            }
            ProgramItem::Repeat { body, .. } => collect_shard_sites(program, body, out),
            _ => {}
        }
    }
}

/// Insert `stmt` at the head of the epoch's static DOALL body. Returns
/// whether the target epoch was found under `items`.
fn inject_conflict(items: &mut [ProgramItem], epoch: EpochId, stmt: &Stmt) -> bool {
    fn into_doall(stmts: &mut [Stmt], stmt: &Stmt) -> bool {
        for s in stmts {
            if let Stmt::Loop(l) = s {
                if l.kind == LoopKind::DoAllStatic {
                    l.body.insert(0, stmt.clone());
                    return true;
                }
                if into_doall(&mut l.body, stmt) {
                    return true;
                }
            }
        }
        false
    }
    for it in items {
        match it {
            ProgramItem::Epoch(e) if e.id == epoch => return into_doall(&mut e.stmts, stmt),
            // Not collapsible into a pattern guard: guards take the binding
            // immutably, and the recursion mutates `body`.
            #[allow(clippy::collapsible_match)]
            ProgramItem::Repeat { body, .. } => {
                if inject_conflict(body, epoch, stmt) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Seed a single deterministic shard-independence corruption into an
/// **original** (pre-compilation) program. Sites are the eligible DOALLs in
/// program order (main items, then routines) and `seed` indexes into them,
/// so a sweep over seeds exercises every eligible epoch. Returns `None` only
/// when no parallel epoch has a statically scheduled DOALL writing a shared
/// array — nothing whose disjointness could be corrupted.
pub fn mutate_program(seed: u64, program: &mut Program) -> Option<ProgramMutation> {
    let mut sites = Vec::new();
    collect_shard_sites(program, &program.items, &mut sites);
    for r in &program.routines {
        collect_shard_sites(program, &r.items, &mut sites);
    }
    if sites.is_empty() {
        return None;
    }
    let site = sites[(seed % sites.len() as u64) as usize].clone();
    let write = RefId(program.n_refs);
    let read = RefId(program.n_refs + 1);
    program.n_refs += 2;
    let zeros = vec![Affine::constant(0); site.rank];
    let stmt = Stmt::Assign(Assign {
        write: ArrayRef { id: write, array: site.array, index: zeros.clone() },
        reads: vec![ArrayRef { id: read, array: site.array, index: zeros }],
        expr: ValExpr::Add(
            Box::new(ValExpr::Mul(Box::new(ValExpr::Read(0)), Box::new(ValExpr::Lit(0.5)))),
            Box::new(ValExpr::Lit(1.0)),
        ),
        extra_cost: 0,
    });
    let ok = inject_conflict(&mut program.items, site.epoch, &stmt)
        || program.routines.iter_mut().any(|r| inject_conflict(&mut r.items, site.epoch, &stmt));
    debug_assert!(ok, "site enumeration and injection walk disagree");
    Some(ProgramMutation::CrossBlockWrite {
        epoch: site.label,
        doall: site.doall,
        array: site.array,
        write,
    })
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = random_program(42, &cfg);
        let b = random_program(42, &cfg);
        assert_eq!(ccdp_ir::print_program(&a), ccdp_ir::print_program(&b));
    }

    #[test]
    fn many_seeds_validate() {
        let cfg = SynthConfig::default();
        for seed in 0..40 {
            let p = random_program(seed, &cfg);
            assert!(ccdp_ir::validate(&p).is_ok(), "seed {seed}");
            assert!(!p.epochs().is_empty());
        }
    }

    /// The shard-conflict mutator must produce a *valid* program (the
    /// corruption it models is a semantic race, not an IR defect) with
    /// fresh `RefId`s, and be deterministic in the seed.
    #[test]
    fn program_mutator_injects_a_valid_cross_block_write() {
        let cfg = SynthConfig::default();
        for seed in 0..20 {
            let mut p = random_program(seed, &cfg);
            let before = p.n_refs;
            let m = mutate_program(seed, &mut p)
                .expect("every synth program starts with an aligned init doall");
            assert!(ccdp_ir::validate(&p).is_ok(), "seed {seed}: {m}");
            assert_eq!(p.n_refs, before + 2);
            let ProgramMutation::CrossBlockWrite { write, .. } = &m;
            assert!(write.index() >= before as usize, "seed {seed}: stale RefId");
            assert!(m.changes_numerics());

            let mut q = random_program(seed, &cfg);
            let m2 = mutate_program(seed, &mut q).unwrap();
            assert_eq!(m, m2, "seed {seed}: mutator not deterministic");
            assert_eq!(ccdp_ir::print_program(&p), ccdp_ir::print_program(&q));
        }
    }
}
