//! CI performance-regression gate: re-runs the quick grid and compares its
//! wall time against the `perf` section of the committed `BENCH_ccdp.json`.
//! Fails (exit 1) when the fresh run is more than the allowed factor slower
//! than the committed baseline; passes with a notice when no baseline is
//! present (first run, or a report regenerated without timing).
//!
//! ```text
//! cargo run -p ccdp-bench --release --bin perf_gate
//! CCDP_PERF_GATE_FACTOR=1.5 cargo run -p ccdp-bench --release --bin perf_gate
//! ```
//!
//! Wall-clock on shared CI runners is noisy, so the default threshold is a
//! generous +25% and the fresh measurement takes the best of two runs.
//!
//! Diagnostics instead of surprises: a baseline written by a *newer*
//! schema than this binary understands is a hard error (exit 2, with the
//! command to regenerate), a missing/absent `perf` section — normal for a
//! resumed or failing report run — passes with a loud notice naming
//! exactly what is missing, and a baseline measured at a different
//! `sim_threads` than this run's `CCDP_SIM_THREADS` is a hard error
//! (exit 2): comparing across engine configurations would measure the
//! knob, not a regression.

use ccdp_bench::report::{perf_baseline, Baseline, SCHEMA_VERSION};
use ccdp_bench::{paper_kernels, run_grid_timed, Scale, GRID_SCHEMES, PAPER_PES};
use ccdp_core::EnvOverrides;

const BASELINE: &str = "BENCH_ccdp.json";
const DEFAULT_FACTOR: f64 = 1.25;

fn main() {
    let env = EnvOverrides::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let factor = env.perf_gate_factor.unwrap_or(DEFAULT_FACTOR);
    let gate_threads = env.sim_threads.unwrap_or(1) as u64;
    eprintln!("PERF GATE: gating at sim_threads={gate_threads}");
    let baseline = committed_baseline();
    // Refuse a cross-configuration comparison up front, before spending
    // two grid runs on numbers the gate could not honestly compare.
    if let Some((_, base_threads)) = baseline {
        if base_threads != gate_threads {
            eprintln!(
                "PERF GATE: baseline in {BASELINE} was measured at \
                 sim_threads={base_threads}, but this run gates at \
                 sim_threads={gate_threads} (CCDP_SIM_THREADS) — comparing them would \
                 measure the worker knob, not a regression. Re-run with matching \
                 CCDP_SIM_THREADS, or regenerate the baseline with \
                 `cargo run -p ccdp-bench --release --bin report`."
            );
            std::process::exit(2);
        }
    }
    report_baseline_scheme_cycles();
    let kernels = paper_kernels(Scale::Quick);
    // Best of two: the first run also warms the file cache / frequency
    // governor, which is exactly the noise the gate must not alarm on.
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let (_, timing) = run_grid_timed(&kernels, &PAPER_PES, &GRID_SCHEMES).unwrap_or_else(|e| {
            eprintln!("PERF GATE: pipeline failed: {e}");
            std::process::exit(1);
        });
        best = best.min(timing.wall_seconds);
    }
    match baseline {
        None => {
            eprintln!(
                "PERF GATE: SKIPPED — no usable baseline ({BASELINE}: perf.wall_seconds \
                 missing or non-positive; a resumed or failing report run writes no perf \
                 section). Fresh quick grid took {best:.3}s. Regenerate the baseline with \
                 `cargo run -p ccdp-bench --release --bin report` (fresh, no --resume) to \
                 re-arm the gate."
            );
        }
        Some((base, _)) => {
            let limit = base * factor;
            eprintln!(
                "PERF GATE: fresh quick grid {best:.3}s vs committed {base:.3}s \
                 at sim_threads={gate_threads} (limit {limit:.3}s = {factor:.2}x)"
            );
            if best > limit {
                eprintln!("PERF GATE: FAIL — quick grid regressed more than {factor:.2}x");
                std::process::exit(1);
            }
            eprintln!("PERF GATE: ok");
        }
    }
}

/// `(perf.wall_seconds, perf.sim_threads)` from the committed report, when
/// present and valid (pre-v8 documents read as `sim_threads = 1`). The
/// classification itself lives in `report::perf_baseline` (additive
/// sections such as v7's `service` are ignored; only a genuinely newer
/// schema is rejected) — this wrapper just turns it into IO + exit codes.
fn committed_baseline() -> Option<(f64, u64)> {
    let text = match std::fs::read_to_string(BASELINE) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("PERF GATE: cannot read {BASELINE} ({e})");
            return None;
        }
    };
    let doc = match ccdp_json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("PERF GATE: {BASELINE} is not valid JSON ({e})");
            return None;
        }
    };
    match perf_baseline(&doc) {
        Baseline::Wall { wall_seconds, sim_threads } => Some((wall_seconds, sim_threads)),
        Baseline::Missing => None,
        Baseline::NewerSchema(v) => {
            eprintln!(
                "PERF GATE: {BASELINE} has schema_version {v}, newer than this binary \
                 understands ({SCHEMA_VERSION}). Rebuild the gate from the same commit, or \
                 regenerate the baseline with \
                 `cargo run -p ccdp-bench --release --bin report`."
            );
            std::process::exit(2);
        }
    }
}

/// Schema-v6 baselines break the perf cells down per scheme; surface the
/// per-scheme simulated-cycle totals so a regression can be localized to
/// one backend without rerunning anything.
fn report_baseline_scheme_cycles() {
    let Some(doc) =
        std::fs::read_to_string(BASELINE).ok().and_then(|t| ccdp_json::parse(&t).ok())
    else {
        return;
    };
    let Some(cells) = doc.get("perf").and_then(|p| p.get("cells")) else { return };
    let Some(schemes) = doc.get("schemes") else { return };
    let mut line = String::from("PERF GATE: baseline simulated cycles by scheme:");
    let mut any = false;
    for s in schemes.items() {
        let Some(key) = s.as_str() else { continue };
        let total: u64 = cells
            .items()
            .iter()
            .filter_map(|c| c.get("sim_cycles_by_scheme")?.get(key)?.as_u64())
            .sum();
        if total > 0 {
            line.push_str(&format!(" {key}={total}"));
            any = true;
        }
    }
    if any {
        eprintln!("{line}");
    }
}
