//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run -p ccdp-bench --release --bin ablations [-- <which>]
//! CCDP_SCALE=paper cargo run -p ccdp-bench --release --bin ablations
//! ```
//!
//! `which` ∈ {target, sched, queue, latency, scheme, clean, faults, all}
//! (default all). Each study prints one small table; see EXPERIMENTS.md for
//! the recorded paper-scale outputs. The `faults` study injects seeded
//! fault plans (`--seed N` / `CCDP_SEED` select the decision streams).

use ccdp_bench::{paper_kernels, run_cell_with, seed_from, BenchKernel, Scale};
use ccdp_core::{compare, compile_ccdp, PipelineConfig, Scheme, SchemeMatrix};
use t3d_sim::FaultPlan;

const PES: usize = 8;

/// One BASE/CCDP ablation cell; a coherence violation in a tweaked
/// configuration is a real finding, so fail loudly with the evidence.
fn cell(k: &BenchKernel, tweak: impl FnOnce(&mut PipelineConfig)) -> SchemeMatrix {
    run_cell_with(k, PES, &[Scheme::Base, Scheme::Ccdp], tweak)
        .unwrap_or_else(|e| panic!("{}: {e}", k.name))
}

/// Table 2 metric of a BASE/CCDP cell (both schemes always present).
fn imp(m: &SchemeMatrix) -> f64 {
    m.improvement_pct().expect("cell has BASE and CCDP runs")
}

fn ccdp_cycles(m: &SchemeMatrix) -> u64 {
    m.cycles(Scheme::Ccdp).expect("cell has a CCDP run")
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Group-spatial filtering on/off: prefetch counts and performance.
fn ablation_target(kernels: &[BenchKernel]) {
    header("ablation: prefetch target analysis (group-spatial elimination)");
    println!(
        "{:>8} | {:>10} {:>9} {:>9} | {:>10} {:>9} {:>9}",
        "kernel", "imp% (on)", "targets", "follower", "imp% (off)", "targets", "follower"
    );
    for k in kernels {
        let on = cell(k, |_| {});
        let off = cell(k, |cfg| {
            cfg.target.exploit_group_spatial = false;
        });
        println!(
            "{:>8} | {:>10.2} {:>9} {:>9} | {:>10.2} {:>9} {:>9}",
            k.name,
            imp(&on),
            on.plan_stats.targets,
            on.plan_stats.followers,
            imp(&off),
            off.plan_stats.targets,
            off.plan_stats.followers,
        );
    }
}

/// Restrict the scheduler to a single technique.
fn ablation_sched(kernels: &[BenchKernel]) {
    header("ablation: scheduling techniques (improvement % over BASE)");
    println!(
        "{:>8} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "all", "vpg", "sp", "mbp", "none"
    );
    for k in kernels {
        let mut row = vec![];
        for (v, s, m) in [
            (true, true, true),
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (false, false, false),
        ] {
            let c = cell(k, |cfg| {
                cfg.schedule.enable_vpg = v;
                cfg.schedule.enable_sp = s;
                cfg.schedule.enable_mbp = m;
            });
            row.push(imp(&c));
        }
        println!(
            "{:>8} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            k.name, row[0], row[1], row[2], row[3], row[4]
        );
    }
}

/// Prefetch queue depth sweep (VPG disabled so line prefetches matter).
fn ablation_queue(kernels: &[BenchKernel]) {
    header("ablation: prefetch queue depth (VPG disabled; CCDP cycles, relative)");
    let depths = [8usize, 16, 32, 64];
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10}",
        "kernel", "q=8", "q=16", "q=32", "q=64"
    );
    for k in kernels {
        let mut cells = vec![];
        for &q in &depths {
            let c = cell(k, |cfg| {
                cfg.schedule.enable_vpg = false;
                cfg.schedule.queue_words = q;
                cfg.machine.queue_words = q;
            });
            cells.push(ccdp_cycles(&c) as f64);
        }
        let base = cells[1]; // q=16 is the T3D default
        print!("{:>8} |", k.name);
        for c in &cells {
            print!(" {:>10.4}", c / base);
        }
        println!();
    }
}

/// Remote latency sweep: where does CCDP's advantage come from?
fn ablation_latency(kernels: &[BenchKernel]) {
    header("ablation: remote latency sweep (improvement % over BASE)");
    let lats = [50u64, 100, 150, 300, 600];
    print!("{:>8} |", "kernel");
    for l in lats {
        print!(" {:>8}", format!("r={l}"));
    }
    println!();
    for k in kernels {
        print!("{:>8} |", k.name);
        for &l in &lats {
            let c = cell(k, |cfg| {
                cfg.machine.remote_fill = l;
                cfg.machine.remote_uncached = l;
            });
            print!(" {:>8.2}", imp(&c));
        }
        println!();
    }
}

/// Five-way scheme comparison: software schemes against the hardware rivals.
fn ablation_scheme(kernels: &[BenchKernel]) {
    header("ablation: scheme comparison (speedup over SEQ)");
    print!("{:>8} |", "kernel");
    for s in Scheme::ALL {
        print!(" {:>8}", s.name());
    }
    println!();
    for k in kernels {
        let cfg = ccdp_bench::cell_config(k, PES);
        let m = compare(&k.program, &cfg, &Scheme::ALL)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        print!("{:>8} |", k.name);
        for s in Scheme::ALL {
            print!(" {:>8.2}", m.speedup(s).expect("scheme ran"));
        }
        println!();
    }
}

/// Paper §6 future work: also prefetch the non-stale references.
fn ablation_clean(kernels: &[BenchKernel]) {
    header("ablation: prefetch_clean extension (improvement % over BASE)");
    println!(
        "{:>8} | {:>12} {:>12} {:>14}",
        "kernel", "stale only", "stale+clean", "extra targets"
    );
    for k in kernels {
        let off = cell(k, |_| {});
        let on = cell(k, |cfg| {
            cfg.target.prefetch_clean = true;
        });
        let cfg = {
            let mut c = ccdp_bench::cell_config(k, PES);
            c.target.prefetch_clean = true;
            c
        };
        let art = compile_ccdp(&k.program, &cfg);
        println!(
            "{:>8} | {:>12.2} {:>12.2} {:>14}",
            k.name,
            imp(&off),
            imp(&on),
            art.plan.stats.clean_prefetch
        );
    }
}

/// Resilience under injected faults: CCDP cycles degrade but coherence and
/// numerics hold (the cell would panic loudly otherwise).
fn ablation_faults(kernels: &[BenchKernel], seed: u64) {
    header(&format!("ablation: fault injection (CCDP slowdown vs fault-free; seed {seed})"));
    let plans = [
        ("drop=0.1", FaultPlan::none().with_seed(seed).with_drop_rate(0.1)),
        ("delay 4x", FaultPlan::none().with_seed(seed).with_delay(0.1, 4, 3)),
        ("storms", FaultPlan::none().with_seed(seed).with_storms(0.05, 4)),
        ("evict=0.1", FaultPlan::none().with_seed(seed).with_evict_rate(0.1)),
    ];
    print!("{:>8} |", "kernel");
    for (name, _) in &plans {
        print!(" {:>10}", name);
    }
    println!(" {:>12}", "fallbacks*");
    for k in kernels {
        let clean = ccdp_cycles(&cell(k, |_| {})) as f64;
        print!("{:>8} |", k.name);
        let mut fallbacks = 0;
        for (_, plan) in &plans {
            let c = cell(k, |cfg| cfg.sim.faults = *plan);
            print!(" {:>10.4}", ccdp_cycles(&c) as f64 / clean);
            fallbacks += c
                .get(Scheme::Ccdp)
                .expect("cell has a CCDP run")
                .result
                .fault_stats()
                .demand_fallbacks;
        }
        println!(" {fallbacks:>12}");
    }
    println!("(* demand fallbacks summed over the four plans)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--") && !a.chars().all(|c| c.is_ascii_digit()))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let seed = seed_from(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!("running ablations ({which}) at {scale:?} scale, P={PES} ...");
    let kernels = paper_kernels(scale);
    match which.as_str() {
        "target" => ablation_target(&kernels),
        "sched" => ablation_sched(&kernels),
        "queue" => ablation_queue(&kernels),
        "latency" => ablation_latency(&kernels),
        "scheme" => ablation_scheme(&kernels),
        "clean" => ablation_clean(&kernels),
        "faults" => ablation_faults(&kernels, seed),
        _ => {
            ablation_target(&kernels);
            ablation_sched(&kernels);
            ablation_queue(&kernels);
            ablation_latency(&kernels);
            ablation_scheme(&kernels);
            ablation_clean(&kernels);
            ablation_faults(&kernels, seed);
        }
    }
}
