//! Stress/soak sweep over injected faults: drop-rate curve × kernels × PE
//! counts, plus a mixed soak plan — every cell checked for coherence and
//! golden numerics, demand fallbacks checked for monotonicity, and the
//! degradation curve merged into `BENCH_ccdp.json` as a `stress` section.
//!
//! ```text
//! cargo run -p ccdp-bench --release --bin stress             # env scale
//! cargo run -p ccdp-bench --release --bin stress -- --quick  # force quick
//! cargo run -p ccdp-bench --release --bin stress -- --seed 7
//! ```
//!
//! Exits non-zero (with the oracle's evidence) on any guarantee violation.

use ccdp_bench::report::SCHEMA_VERSION;
use ccdp_bench::stress::{run_stress, stress_json, stress_pes, StressReport};
use ccdp_bench::{paper_kernels, seed_from, Scale};
use ccdp_json::{Json, ToJson};

const OUT: &str = "BENCH_ccdp.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::from_env().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    let seed = seed_from(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let kernels = paper_kernels(scale);
    let pes = stress_pes(scale);
    eprintln!("running stress sweep at {scale:?} scale, P={pes:?}, seed {seed} ...");
    let t0 = std::time::Instant::now();
    let rep = run_stress(&kernels, &pes, scale, seed).unwrap_or_else(|e| {
        eprintln!("STRESS FAILURE: {e}");
        std::process::exit(1);
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    print_curve(&rep);
    eprintln!("stress sweep: {wall_seconds:.3}s wall");
    merge_into_report(&rep, wall_seconds);
}

/// Human-readable degradation curve: slowdown vs the fault-free run.
fn print_curve(rep: &StressReport) {
    println!(
        "\n=== stress: degradation curve (slowdown vs fault-free; seed {}) ===",
        rep.seed
    );
    println!(
        "{:>8} {:>5} | {:>10} {:>10} {:>12} {:>10}",
        "kernel", "P", "plan", "slowdown", "fallbacks", "dropped"
    );
    for c in &rep.cells {
        println!(
            "{:>8} {:>5} | {:>10} {:>10.4} {:>12} {:>10}",
            c.kernel,
            c.n_pes,
            c.plan,
            c.slowdown(),
            c.faults.demand_fallbacks,
            c.faults.prefetches_dropped,
        );
    }
    println!("\nall cells coherent, all numerics equal the sequential golden run");
}

/// Merge the `stress` section into `BENCH_ccdp.json`, preserving an
/// existing report document when one is present. The sweep's wall time is
/// recorded alongside the curve (host observation, not simulated time).
fn merge_into_report(rep: &StressReport, wall_seconds: f64) {
    let mut section = stress_json(rep);
    if let Json::Obj(pairs) = &mut section {
        pairs.push(("wall_seconds".to_string(), wall_seconds.to_json()));
    }
    let mut doc = std::fs::read_to_string(OUT)
        .ok()
        .and_then(|s| ccdp_json::parse(&s).ok())
        .unwrap_or_else(|| {
            Json::obj([
                ("schema_version", SCHEMA_VERSION.to_json()),
                (
                    "paper",
                    "A Compiler-Directed Cache Coherence Scheme Using Data Prefetching"
                        .to_json(),
                ),
            ])
        });
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(k, _)| k != "stress");
        pairs.push(("stress".to_string(), section));
    }
    match std::fs::write(OUT, doc.to_pretty()) {
        Ok(()) => eprintln!("merged stress section into {OUT}"),
        Err(e) => {
            eprintln!("cannot write {OUT}: {e}");
            std::process::exit(1);
        }
    }
}
