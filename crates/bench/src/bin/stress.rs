//! Stress/soak sweep over injected faults: drop-rate curve × kernels × PE
//! counts, plus a mixed soak plan — every cell checked for coherence and
//! golden numerics, demand fallbacks checked for monotonicity, and the
//! degradation curve merged into `BENCH_ccdp.json` as a `stress` section.
//!
//! Each (kernel × PE count) unit runs isolated: panics are contained and
//! classified, run budgets and a cooperative wall-clock watchdog bound
//! runaway simulations, and every *passed* unit is checkpointed to a
//! journal so `--resume` re-runs only what is missing (failed units are
//! always re-attempted — a sweep is a gate, not an archive of failures).
//!
//! ```text
//! cargo run -p ccdp-bench --release --bin stress             # env scale
//! cargo run -p ccdp-bench --release --bin stress -- --quick  # force quick
//! cargo run -p ccdp-bench --release --bin stress -- --seed 7
//! cargo run -p ccdp-bench --release --bin stress -- --resume
//! ```
//!
//! Exits non-zero (with the oracle's evidence) on any guarantee violation.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use ccdp_bench::journal::{header_line, Journal, STRESS_JOURNAL};
use ccdp_bench::report::SCHEMA_VERSION;
use ccdp_bench::resilience::{classify_pipeline, isolate, CellFailure, GridOptions};
use ccdp_bench::stress::{
    stress_cell_json, stress_cell_opts, stress_pes, stress_plans, stress_section_json,
    StressError,
};
use ccdp_bench::{flag_value, has_flag, paper_kernels, pooled, seed_from, Scale};
use ccdp_core::Scheme;
use ccdp_json::{Json, ToJson};

const OUT: &str = "BENCH_ccdp.json";

fn parse_u64_flag(args: &[String], name: &str) -> Option<u64> {
    flag_value(args, name).map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("unparseable {name} value {v:?} (expected a u64)");
            std::process::exit(2);
        })
    })
}

fn classify_stress(e: StressError) -> CellFailure {
    match e {
        StressError::Pipeline(pe) => classify_pipeline(pe),
        other => CellFailure::Failed { message: other.to_string() },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if has_flag(&args, "--quick") {
        Scale::Quick
    } else {
        Scale::from_env().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    let seed = seed_from(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let resume = has_flag(&args, "--resume");
    let journal_path = PathBuf::from(
        flag_value(&args, "--journal").unwrap_or_else(|| STRESS_JOURNAL.to_string()),
    );
    let opts = GridOptions {
        cycle_budget: parse_u64_flag(&args, "--cycle-budget"),
        step_budget: parse_u64_flag(&args, "--step-budget"),
        cell_timeout: parse_u64_flag(&args, "--cell-timeout").map(Duration::from_secs),
        faults: None,
    };
    let kernels = paper_kernels(scale);
    let pes = stress_pes(scale);
    eprintln!(
        "running stress sweep at {scale:?} scale, P={pes:?}, seed {seed}{} ...",
        if resume { " [resume]" } else { "" }
    );
    let t0 = std::time::Instant::now();

    // The sweep drives the CCDP fault curve plus the hardware smoke cells.
    let stressed = [Scheme::Ccdp, Scheme::Mesi, Scheme::Dragon];
    let header = header_line("stress", scale, seed, &pes, &stressed, &opts);
    let (journal, entries) = if resume {
        Journal::resume(&journal_path, &header)
    } else {
        Journal::create(&journal_path, &header).map(|j| (j, Vec::new()))
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot journal to {}: {e}", journal_path.display());
        std::process::exit(1);
    });
    let mut done: HashMap<(String, usize), Json> = HashMap::new();
    for e in entries {
        done.insert((e.kernel, e.n_pes), e.data);
    }

    // Units still to run: every kernel × PE count not already journaled.
    let mut units: Vec<(usize, usize)> = Vec::new();
    for (ki, k) in kernels.iter().enumerate() {
        for (pi, &n) in pes.iter().enumerate() {
            if !done.contains_key(&(k.name.to_string(), n)) {
                units.push((ki, pi));
            }
        }
    }
    let reused = kernels.len() * pes.len() - units.len();
    if reused > 0 {
        eprintln!("resumed {reused} journaled unit(s) from {}", journal_path.display());
    }

    let plans = stress_plans(seed);
    let threads =
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(units.len().max(1));
    let fresh: Vec<Result<Vec<Json>, CellFailure>> = pooled(units.len(), threads, |i| {
        let (ki, pi) = units[i];
        let (k, n) = (&kernels[ki], pes[pi]);
        let r = isolate(opts.cell_timeout, classify_stress, |deadline| {
            stress_cell_opts(k, n, &plans, &opts, deadline)
        });
        match r {
            Ok(cells) => {
                let jsons: Vec<Json> = cells.iter().map(stress_cell_json).collect();
                if let Err(e) = journal.append(k.name, n, &Json::arr(jsons.iter().cloned())) {
                    eprintln!("warning: journal append failed ({e}); run not resumable");
                }
                Ok(jsons)
            }
            Err(f) => Err(f),
        }
    });

    // Reassemble in grid order, mixing journaled and fresh units.
    let mut fresh_by_unit: HashMap<(usize, usize), Result<Vec<Json>, CellFailure>> =
        units.iter().copied().zip(fresh).collect();
    let mut cells: Vec<Json> = Vec::new();
    let mut failures: Vec<(String, usize, CellFailure)> = Vec::new();
    for (ki, k) in kernels.iter().enumerate() {
        for (pi, &n) in pes.iter().enumerate() {
            match fresh_by_unit.remove(&(ki, pi)) {
                Some(Ok(jsons)) => cells.extend(jsons),
                Some(Err(f)) => failures.push((k.name.to_string(), n, f)),
                None => {
                    let data = done
                        .remove(&(k.name.to_string(), n))
                        .expect("unit neither run nor journaled");
                    cells.extend(data.items().iter().cloned());
                }
            }
        }
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    if !failures.is_empty() {
        eprintln!("STRESS FAILURE: {} unit(s) failed:", failures.len());
        for (kernel, n_pes, f) in &failures {
            eprintln!("  {kernel} P={n_pes}: [{}] {f}", f.class());
        }
        eprintln!("passed units are journaled; rerun with --resume to retry only failures");
        std::process::exit(1);
    }
    print_curve(seed, &cells);
    eprintln!("stress sweep: {wall_seconds:.3}s wall");
    merge_into_report(scale, seed, &pes, cells, wall_seconds);
}

/// Human-readable degradation curve: slowdown vs the fault-free run.
fn print_curve(seed: u64, cells: &[Json]) {
    println!(
        "\n=== stress: degradation curve (slowdown vs fault-free; seed {seed}) ==="
    );
    println!(
        "{:>8} {:>7} {:>5} | {:>10} {:>10} {:>12} {:>10}",
        "kernel", "scheme", "P", "plan", "slowdown", "fallbacks", "dropped"
    );
    for c in cells {
        let get_str = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
        let faults = c.get("faults");
        let fget = |k: &str| {
            faults.and_then(|f| f.get(k)).and_then(Json::as_u64).unwrap_or(0)
        };
        println!(
            "{:>8} {:>7} {:>5} | {:>10} {:>10.4} {:>12} {:>10}",
            get_str("kernel"),
            get_str("scheme"),
            c.get("n_pes").and_then(Json::as_u64).unwrap_or(0),
            get_str("plan"),
            c.get("slowdown").and_then(Json::as_f64).unwrap_or(0.0),
            fget("demand_fallbacks"),
            fget("prefetches_dropped"),
        );
    }
    println!("\nall cells coherent, all numerics equal the sequential golden run");
}

/// Merge the `stress` section into `BENCH_ccdp.json` (atomically),
/// preserving an existing report document when one is present. The sweep's
/// wall time is recorded alongside the curve (host observation, not
/// simulated time).
fn merge_into_report(scale: Scale, seed: u64, pes: &[usize], cells: Vec<Json>, wall: f64) {
    let mut section = stress_section_json(scale, seed, pes, cells);
    if let Json::Obj(pairs) = &mut section {
        pairs.push(("wall_seconds".to_string(), wall.to_json()));
    }
    let mut doc = std::fs::read_to_string(OUT)
        .ok()
        .and_then(|s| ccdp_json::parse(&s).ok())
        .unwrap_or_else(|| {
            Json::obj([
                ("schema_version", SCHEMA_VERSION.to_json()),
                (
                    "paper",
                    "A Compiler-Directed Cache Coherence Scheme Using Data Prefetching"
                        .to_json(),
                ),
            ])
        });
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(k, _)| k != "stress");
        pairs.push(("stress".to_string(), section));
    }
    match ccdp_json::write_atomic(std::path::Path::new(OUT), &doc.to_pretty()) {
        Ok(()) => eprintln!("merged stress section into {OUT}"),
        Err(e) => {
            eprintln!("cannot write {OUT}: {e}");
            std::process::exit(1);
        }
    }
}
