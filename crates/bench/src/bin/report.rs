//! Machine-readable benchmark report: runs the full evaluation grid and
//! writes `BENCH_ccdp.json` — the paper's Tables 1 and 2 plus per-PE and
//! per-epoch cycle breakdowns, prefetch quality metrics, and a `perf`
//! section with the run's host-side throughput (consumed by the CI
//! performance-regression gate).
//!
//! ```text
//! cargo run -p ccdp-bench --release --bin report            # quick scale
//! CCDP_SCALE=paper cargo run -p ccdp-bench --release --bin report
//! cargo run -p ccdp-bench --release --bin report -- --seed 7
//! ```

use ccdp_bench::{paper_kernels, report::report_json, run_grid_timed, seed_from, Scale, PAPER_PES};

const OUT: &str = "BENCH_ccdp.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let seed = seed_from(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!("running report grid at {scale:?} scale (seed {seed}) ...");
    let kernels = paper_kernels(scale);
    let (grid, timing) = run_grid_timed(&kernels, &PAPER_PES).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "grid: {:.3}s wall on {} thread(s), {:.2}M simulated cycles/s",
        timing.wall_seconds,
        timing.threads,
        timing.cycles_per_second() / 1e6
    );
    let doc = report_json(scale, seed, &PAPER_PES, &kernels, &grid, Some(&timing));
    std::fs::write(OUT, doc.to_pretty()).unwrap_or_else(|e| {
        eprintln!("cannot write {OUT}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {OUT}");
}
