//! Machine-readable benchmark report: runs the full evaluation grid and
//! writes `BENCH_ccdp.json` — the paper's Tables 1 and 2 plus per-PE and
//! per-epoch cycle breakdowns, prefetch quality metrics, and a `perf`
//! section with the run's host-side throughput (consumed by the CI
//! performance-regression gate).
//!
//! Every cell runs isolated (panic containment + classification), each
//! completed cell is checkpointed to a journal, and `--resume` replays the
//! journal after a crash, re-simulating only the missing cells — the
//! resumed document is byte-identical to an uninterrupted run, minus the
//! host-timing `perf` section.
//!
//! ```text
//! cargo run -p ccdp-bench --release --bin report            # quick scale
//! CCDP_SCALE=paper cargo run -p ccdp-bench --release --bin report
//! cargo run -p ccdp-bench --release --bin report -- --seed 7
//! cargo run -p ccdp-bench --release --bin report -- --resume
//! cargo run -p ccdp-bench --release --bin report -- \
//!     --cycle-budget 20000000000 --step-budget 2000000000 --cell-timeout 600
//! ```
//!
//! Exits 0 when every cell is ok, 1 when any cell failed (the document and
//! journal are still written), 2 on bad invocation.

use std::path::PathBuf;
use std::time::Duration;

use ccdp_bench::journal::{header_line, run_journaled_grid, GRID_JOURNAL};
use ccdp_bench::report::report_json_cells;
use ccdp_bench::resilience::GridOptions;
use ccdp_bench::{
    flag_value, has_flag, measure_scaling, paper_kernels, seed_from, Scale, GRID_SCHEMES,
    PAPER_PES,
};

const OUT: &str = "BENCH_ccdp.json";

fn parse_u64_flag(args: &[String], name: &str) -> Option<u64> {
    flag_value(args, name).map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("unparseable {name} value {v:?} (expected a u64)");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let seed = seed_from(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let resume = has_flag(&args, "--resume");
    let journal_path = PathBuf::from(
        flag_value(&args, "--journal").unwrap_or_else(|| GRID_JOURNAL.to_string()),
    );
    let opts = GridOptions {
        cycle_budget: parse_u64_flag(&args, "--cycle-budget"),
        step_budget: parse_u64_flag(&args, "--step-budget"),
        cell_timeout: parse_u64_flag(&args, "--cell-timeout").map(Duration::from_secs),
        faults: None,
    };
    eprintln!(
        "running report grid at {scale:?} scale (seed {seed}){} ...",
        if resume { " [resume]" } else { "" }
    );
    let kernels = paper_kernels(scale);
    let header = header_line("report", scale, seed, &PAPER_PES, &GRID_SCHEMES, &opts);
    let mut run = run_journaled_grid(
        &kernels,
        &PAPER_PES,
        &GRID_SCHEMES,
        &opts,
        &journal_path,
        &header,
        resume,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot journal to {}: {e}", journal_path.display());
        std::process::exit(1);
    });
    if run.reused > 0 {
        eprintln!("resumed {} journaled cell(s) from {}", run.reused, journal_path.display());
    }
    match &mut run.timing {
        Some(t) => {
            eprintln!(
                "grid: {:.3}s wall on {} thread(s), sim_threads={}, \
                 {:.2}M simulated cycles/s",
                t.wall_seconds,
                t.threads,
                t.sim_threads,
                t.cycles_per_second() / 1e6
            );
            // Fresh healthy run: probe intra-run scaling on a small quick
            // grid so the perf section records how the sharded engine
            // scales on this host. Simulated results are identical at
            // every thread count (bit-exact parallel path); only the wall
            // numbers differ.
            eprintln!("probing intra-run scaling (quick grid, sim_threads 1/2/4) ...");
            let probe = paper_kernels(Scale::Quick);
            match measure_scaling(&probe[..2], &[4], &GRID_SCHEMES, &[1, 2, 4]) {
                Ok(points) => {
                    for p in &points {
                        eprintln!(
                            "  sim_threads={}: {:.3}s wall",
                            p.sim_threads, p.wall_seconds
                        );
                    }
                    t.scaling = points;
                }
                Err(e) => eprintln!("scaling probe failed ({e}); omitting perf.scaling"),
            }
        }
        None => eprintln!("grid finished (no perf baseline: resumed or failing run)"),
    }
    let names: Vec<&str> = kernels.iter().map(|k| k.name).collect();
    let doc = report_json_cells(
        scale,
        seed,
        &PAPER_PES,
        &GRID_SCHEMES,
        &names,
        &run.cells,
        run.timing.as_ref(),
    );
    ccdp_json::write_atomic(std::path::Path::new(OUT), &doc.to_pretty()).unwrap_or_else(|e| {
        eprintln!("cannot write {OUT}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {OUT}");
    if !run.failures.is_empty() {
        eprintln!("{} cell(s) failed:", run.failures.len());
        for (kernel, n_pes, class, msg) in &run.failures {
            eprintln!("  {kernel} P={n_pes}: [{class}] {msg}");
        }
        std::process::exit(1);
    }
}
