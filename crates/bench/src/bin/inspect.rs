//! Diagnostic: per-scheme event counts for one kernel at one PE count.
//!
//! `cargo run -p ccdp-bench --release --bin inspect -- <kernel> <pes>`

use ccdp_bench::{cell_config, paper_kernels, Scale};
use ccdp_core::{compile_ccdp, run_base, run_ccdp, run_seq};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kname = args.get(1).map(String::as_str).unwrap_or("TOMCATV");
    let pes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let kernels = paper_kernels(scale);
    let k = kernels.iter().find(|k| k.name == kname).unwrap_or_else(|| {
        let names: Vec<_> = kernels.iter().map(|k| k.name).collect();
        eprintln!("unknown kernel {kname:?} (expected one of {names:?})");
        std::process::exit(2);
    });
    let cfg = cell_config(k, pes);

    let art = compile_ccdp(&k.program, &cfg);
    println!("== {} @ {} PEs ==", k.name, pes);
    println!(
        "stale reads: {} / {} shared reads",
        art.stale.n_stale(),
        art.stale.n_shared_reads
    );
    println!("plan: {:?}", art.plan.stats);
    for (rid, t) in {
        let mut v: Vec<_> = art.plan.technique.iter().collect();
        v.sort_by_key(|(r, _)| r.0);
        v
    } {
        println!("  r{} -> {:?}", rid.0, t);
    }

    let seq = run_seq(&k.program, &cfg).expect("valid config");
    let base = run_base(&k.program, &cfg).expect("valid config");
    let (_, ccdp) = run_ccdp(&k.program, &cfg).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1);
    });
    for r in [&seq, &base, &ccdp] {
        let t = r.total_stats();
        println!(
            "{:>5}: cycles {:>14}  hits {:>11}  fills l/r {:>9}/{:>9}  refresh {:>9} \
             unc {:>10} byp {:>8} pf l/v {:>8}/{:>6} drop {} late {} stallcyc {} barrier {}",
            r.scheme,
            r.cycles,
            t.cache_hits,
            t.local_fills,
            t.remote_fills,
            t.refresh_fills,
            t.uncached_reads,
            t.bypass_reads,
            t.line_prefetches_issued,
            t.vector_prefetches_issued,
            t.line_prefetches_dropped,
            t.prefetch_late,
            t.mem_stall_cycles,
            t.barrier_wait_cycles,
        );
    }
    println!(
        "speedups: base {:.2} ccdp {:.2}; improvement {:.2}%",
        seq.cycles as f64 / base.cycles as f64,
        seq.cycles as f64 / ccdp.cycles as f64,
        100.0 * (base.cycles as f64 - ccdp.cycles as f64) / base.cycles as f64
    );

    println!("\nCCDP cycle breakdown (PE 0):");
    for (cat, cycles) in ccdp.per_pe[0].breakdown.iter() {
        if cycles > 0 {
            println!("  {:>16} {:>14}", cat.name(), cycles);
        }
    }
    let q = ccdp.prefetch_quality();
    println!(
        "prefetch quality: coverage {:.3} accuracy {:.3} timeliness {:.3} drops {}",
        q.coverage, q.accuracy, q.timeliness, q.queue_drops
    );
    for e in &ccdp.epochs {
        println!("  epoch {:<16} {:>14} cycles", e.label, e.total().total());
    }
}
