//! Diagnostic: per-scheme event counts for one kernel at one PE count,
//! across the full five-way scheme matrix (SEQ + BASE/CCDP/INV/MESI/DRAGON).
//!
//! `cargo run -p ccdp-bench --release --bin inspect -- <kernel> <pes>`

use ccdp_bench::{cell_config, paper_kernels, Scale};
use ccdp_core::{compare, compile_ccdp, Scheme};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kname = args.get(1).map(String::as_str).unwrap_or("TOMCATV");
    let pes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let kernels = paper_kernels(scale);
    let k = kernels.iter().find(|k| k.name == kname).unwrap_or_else(|| {
        let names: Vec<_> = kernels.iter().map(|k| k.name).collect();
        eprintln!("unknown kernel {kname:?} (expected one of {names:?})");
        std::process::exit(2);
    });
    let cfg = cell_config(k, pes);

    let art = compile_ccdp(&k.program, &cfg);
    println!("== {} @ {} PEs ==", k.name, pes);
    println!(
        "stale reads: {} / {} shared reads",
        art.stale.n_stale(),
        art.stale.n_shared_reads
    );
    println!("plan: {:?}", art.plan.stats);
    for (rid, t) in {
        let mut v: Vec<_> = art.plan.technique.iter().collect();
        v.sort_by_key(|(r, _)| r.0);
        v
    } {
        println!("  r{} -> {:?}", rid.0, t);
    }

    let m = compare(&k.program, &cfg, &Scheme::ALL).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1);
    });
    for r in std::iter::once(&m.seq).chain(m.runs.iter().map(|run| &run.result)) {
        let t = r.total_stats();
        println!(
            "{:>6}: cycles {:>14}  hits {:>11}  fills l/r {:>9}/{:>9}  refresh {:>9} \
             unc {:>10} byp {:>8} bus {:>9} pf l/v {:>8}/{:>6} drop {} late {} stallcyc {} \
             barrier {}",
            r.scheme,
            r.cycles,
            t.cache_hits,
            t.local_fills,
            t.remote_fills,
            t.refresh_fills,
            t.uncached_reads,
            t.bypass_reads,
            t.bus_txns,
            t.line_prefetches_issued,
            t.vector_prefetches_issued,
            t.line_prefetches_dropped,
            t.prefetch_late,
            t.mem_stall_cycles,
            t.barrier_wait_cycles,
        );
    }
    print!("speedups over SEQ:");
    for s in Scheme::ALL {
        print!(" {} {:.2}", s.name(), m.speedup(s).expect("scheme ran"));
    }
    println!(
        "; CCDP improvement over BASE {:.2}%",
        m.improvement_pct().expect("both schemes ran")
    );

    let ccdp = &m.get(Scheme::Ccdp).expect("matrix includes CCDP").result;
    println!("\nCCDP cycle breakdown (PE 0):");
    for (cat, cycles) in ccdp.per_pe[0].breakdown.iter() {
        if cycles > 0 {
            println!("  {:>16} {:>14}", cat.name(), cycles);
        }
    }
    let q = ccdp.prefetch_quality();
    println!(
        "prefetch quality: coverage {:.3} accuracy {:.3} timeliness {:.3} drops {}",
        q.coverage, q.accuracy, q.timeliness, q.queue_drops
    );
    for e in &ccdp.epochs {
        println!("  epoch {:<16} {:>14} cycles", e.label, e.total().total());
    }
}
