//! Regenerate the paper's **Table 2**: percentage improvement in execution
//! time of the CCDP codes over the BASE codes.
//!
//! ```text
//! CCDP_SCALE=paper cargo run -p ccdp-bench --bin table2 --release
//! ```

use ccdp_bench::{paper_kernels, run_grid, Scale, PAPER_PES};
use ccdp_core::{format_improvement_table, MatrixRow, Scheme};

fn main() {
    let scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!("running Table 2 grid at {scale:?} scale ...");
    let kernels = paper_kernels(scale);
    // Table 2 only needs the BASE/CCDP pair; skip the hardware schemes.
    let grid = run_grid(&kernels, &PAPER_PES, &[Scheme::Base, Scheme::Ccdp]).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1);
    });
    let rows: Vec<MatrixRow> = kernels
        .iter()
        .zip(&grid)
        .map(|(k, matrices)| MatrixRow { kernel: k.name, matrices })
        .collect();
    println!("{}", format_improvement_table(&rows));

    println!("paper Table 2 shape targets (for reference):");
    println!("  MXM     64.5% .. 89.8%");
    println!("  VPENTA   4.4% .. 23.9%");
    println!("  TOMCATV 44.8% .. 69.6%");
    println!("  SWIM     2.5% .. 13.2%");
}
