//! Regenerate the paper's **Table 1**, generalized to the N-way scheme
//! grid: speedups of the BASE / CCDP / MESI / Dragon codes over sequential
//! execution, for MXM / VPENTA / TOMCATV / SWIM at 1–64 PEs.
//!
//! ```text
//! CCDP_SCALE=paper cargo run -p ccdp-bench --bin table1 --release
//! ```

use ccdp_bench::{paper_kernels, run_grid, Scale, GRID_SCHEMES, PAPER_PES};
use ccdp_core::{format_speedup_table, MatrixRow};

fn main() {
    let scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!("running Table 1 grid at {scale:?} scale ...");
    let kernels = paper_kernels(scale);
    let grid = run_grid(&kernels, &PAPER_PES, &GRID_SCHEMES).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1);
    });
    let rows: Vec<MatrixRow> = kernels
        .iter()
        .zip(&grid)
        .map(|(k, matrices)| MatrixRow { kernel: k.name, matrices })
        .collect();
    println!("{}", format_speedup_table(&rows));
    eprintln!("all schemes coherent.");
}
