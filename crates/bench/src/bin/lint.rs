//! Static coherence-soundness gate: run the `ccdp-lint` verifier over the
//! paper's four kernels at every PE count plus a synthetic-program sweep,
//! merge the verdicts into `BENCH_ccdp.json` as a `lint` section (schema
//! v5), and exit non-zero on any error-severity finding.
//!
//! ```text
//! cargo run -p ccdp-bench --release --bin lint                # env scale
//! cargo run -p ccdp-bench --release --bin lint -- --quick
//! cargo run -p ccdp-bench --release --bin lint -- --synth 60 --seed 7
//! cargo run -p ccdp-bench --release --bin lint -- --mutate 3  # demo: seed a
//!     # plan corruption into TOMCATV and show the verifier catching it
//! ```
//!
//! The kernel grid and the synth sweep are *expected clean*: the planner's
//! output must verify. Each cell also carries the static shard-independence
//! audit (schema v10): per-program verdict counts plus any CCDP006/CCDP007
//! findings appended to the cell's report. `--mutate` inverts the
//! expectation — it corrupts a compiled plan and exits zero only if the
//! verifier reports the defect, then corrupts the *program* with a
//! cross-block write and requires the shard audit to flag it (CCDP006).

use ccdp_bench::synth::{mutate_plan, mutate_program, random_program, SynthConfig};
use ccdp_bench::report::SCHEMA_VERSION;
use ccdp_bench::{
    cell_config, flag_value, has_flag, paper_kernels, seed_from, Scale, PAPER_PES,
};
use ccdp_core::compile_ccdp;
use ccdp_json::{Json, ToJson};
use ccdp_lint::{verify, verify_sharding, LintCode, LintOptions, LintReport, ShardCounts};

const OUT: &str = "BENCH_ccdp.json";

fn cell_json(kernel: &str, n_pes: usize, rep: &LintReport, shard: &ShardCounts) -> Json {
    Json::obj([
        ("kernel", kernel.to_json()),
        ("n_pes", n_pes.to_json()),
        ("shard", shard.to_json()),
        ("report", rep.to_json()),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if has_flag(&args, "--quick") {
        Scale::Quick
    } else {
        Scale::from_env().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    let seed = seed_from(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let n_synth: usize = flag_value(&args, "--synth")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("unparseable --synth value {v:?} (expected a count)");
                std::process::exit(2);
            })
        })
        .unwrap_or(40);

    if let Some(mseed) = flag_value(&args, "--mutate") {
        let mseed: u64 = mseed.parse().unwrap_or_else(|_| {
            eprintln!("unparseable --mutate value (expected a seed)");
            std::process::exit(2);
        });
        demo_mutation(scale, mseed);
        return;
    }

    eprintln!("linting kernel grid at {scale:?} scale, P={PAPER_PES:?} ...");
    let kernels = paper_kernels(scale);
    let mut cells = Vec::new();
    let (mut errors, mut warnings) = (0usize, 0usize);
    let mut shard_totals = ShardCounts::default();
    for k in &kernels {
        for &n in PAPER_PES.iter() {
            let cfg = cell_config(k, n);
            let art = compile_ccdp(&k.program, &cfg);
            let layout = cfg.layout_for(&k.program);
            let mut rep = verify(
                &art.transformed,
                &art.plan,
                &layout,
                &LintOptions::from_schedule(&cfg.schedule),
            );
            let (shard_findings, shard_counts) =
                verify_sharding(&art.transformed, &layout, cfg.machine.line_words);
            rep.findings.extend(shard_findings);
            if !rep.findings.is_empty() {
                eprintln!("-- {} P={n}:\n{}", k.name, rep.render());
            }
            errors += rep.errors();
            warnings += rep.warnings();
            add_counts(&mut shard_totals, &shard_counts);
            cells.push(cell_json(k.name, n, &rep, &shard_counts));
        }
    }

    eprintln!("linting {n_synth} synthetic programs (seed {seed}) ...");
    let synth_cfg = SynthConfig::default();
    let mut synth_errors = 0usize;
    let mut synth_warnings = 0usize;
    let mut synth_shard = ShardCounts::default();
    for s in 0..n_synth as u64 {
        let p = random_program(seed.wrapping_add(s), &synth_cfg);
        for n in [2usize, 4, 8] {
            let cfg = ccdp_core::PipelineConfig::t3d(n);
            let art = compile_ccdp(&p, &cfg);
            let layout = cfg.layout_for(&p);
            let mut rep = verify(
                &art.transformed,
                &art.plan,
                &layout,
                &LintOptions::from_schedule(&cfg.schedule),
            );
            let (shard_findings, shard_counts) =
                verify_sharding(&art.transformed, &layout, cfg.machine.line_words);
            rep.findings.extend(shard_findings);
            if !rep.is_sound() {
                eprintln!("-- synth seed {} P={n}:\n{}", seed.wrapping_add(s), rep.render());
            }
            synth_errors += rep.errors();
            synth_warnings += rep.warnings();
            add_counts(&mut synth_shard, &shard_counts);
        }
    }

    let section = Json::obj([
        ("scale", scale.name().to_json()),
        ("seed", seed.to_json()),
        ("pes", Json::arr(PAPER_PES.iter().map(|p| p.to_json()))),
        ("kernel_cells", Json::arr(cells)),
        (
            "synth",
            Json::obj([
                ("programs", n_synth.to_json()),
                ("errors", synth_errors.to_json()),
                ("warnings", synth_warnings.to_json()),
                ("shard", synth_shard.to_json()),
            ]),
        ),
        ("shard", shard_totals.to_json()),
        ("errors", (errors + synth_errors).to_json()),
        ("warnings", (warnings + synth_warnings).to_json()),
        ("sound", (errors + synth_errors == 0).to_json()),
    ]);
    merge_into_report(section);

    if errors + synth_errors > 0 {
        eprintln!("lint: {} error finding(s)", errors + synth_errors);
        std::process::exit(1);
    }
    eprintln!(
        "lint: clean ({} kernel cells, {n_synth} synth programs, {} warning(s))",
        kernels.len() * PAPER_PES.len(),
        warnings + synth_warnings
    );
}

/// Fold one program's shard verdict counts into a running total.
fn add_counts(total: &mut ShardCounts, c: &ShardCounts) {
    total.doalls += c.doalls;
    total.disjoint += c.disjoint;
    total.may_conflict += c.may_conflict;
    total.unknown += c.unknown;
}

/// Corrupt a compiled TOMCATV plan with one seeded mutation and show the
/// verifier catching it statically (the EXPERIMENTS.md walk-through); then
/// corrupt the *program* with a cross-block write and show the shard audit
/// flagging the same loop with CCDP006.
fn demo_mutation(scale: Scale, mseed: u64) {
    let kernels = paper_kernels(scale);
    let k = kernels.iter().find(|k| k.name == "TOMCATV").expect("TOMCATV in grid");
    let n = 8;
    let cfg = cell_config(k, n);
    let mut art = compile_ccdp(&k.program, &cfg);
    let layout = cfg.layout_for(&k.program);
    let Some(m) = mutate_plan(mseed, &mut art.transformed, &mut art.plan) else {
        eprintln!("plan has no mutable site");
        std::process::exit(2);
    };
    println!("seeded mutation (seed {mseed}): {m}");
    let rep = verify(
        &art.transformed,
        &art.plan,
        &layout,
        &LintOptions::from_schedule(&cfg.schedule),
    );
    println!("{}", rep.render());
    if rep.is_sound() {
        eprintln!("MISSED: verifier reported no error for this mutation");
        std::process::exit(1);
    }
    println!("caught: {} error finding(s) on TOMCATV P={n}", rep.errors());

    // Shard-conflict mutator demo: inject a cross-block write into MXM
    // (statically all-Disjoint, so the corruption is unambiguous) and
    // require a CCDP006 shard-conflict finding with a concrete witness.
    let k = kernels.iter().find(|k| k.name == "MXM").expect("MXM in grid");
    let cfg = cell_config(k, n);
    let layout = cfg.layout_for(&k.program);
    let mut p = k.program.clone();
    let Some(m) = mutate_program(mseed, &mut p) else {
        eprintln!("program has no shard-mutable site");
        std::process::exit(2);
    };
    println!("\nseeded program mutation (seed {mseed}): {m}");
    let (findings, counts) = verify_sharding(&p, &layout, cfg.machine.line_words);
    for f in &findings {
        println!("{f}");
    }
    if !findings.iter().any(|f| f.code == LintCode::ShardConflict) {
        eprintln!("MISSED: shard audit reported no CCDP006 for this mutation");
        std::process::exit(1);
    }
    println!(
        "caught: CCDP006 on MXM P={n} ({} of {} doalls still disjoint)",
        counts.disjoint, counts.doalls
    );
}

/// Merge the `lint` section into `BENCH_ccdp.json` (atomically), preserving
/// an existing report document when one is present.
fn merge_into_report(section: Json) {
    let mut doc = std::fs::read_to_string(OUT)
        .ok()
        .and_then(|s| ccdp_json::parse(&s).ok())
        .unwrap_or_else(|| {
            Json::obj([
                ("schema_version", SCHEMA_VERSION.to_json()),
                (
                    "paper",
                    "A Compiler-Directed Cache Coherence Scheme Using Data Prefetching"
                        .to_json(),
                ),
            ])
        });
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(k, _)| k != "lint");
        pairs.push(("lint".to_string(), section));
    }
    match ccdp_json::write_atomic(std::path::Path::new(OUT), &doc.to_pretty()) {
        Ok(()) => eprintln!("merged lint section into {OUT}"),
        Err(e) => {
            eprintln!("cannot write {OUT}: {e}");
            std::process::exit(1);
        }
    }
}
