//! Stress/soak sweep: fault rates × kernels × PE counts, checking the
//! graceful-degradation guarantee in every cell.
//!
//! For each (kernel, PE count) the sweep runs CCDP under the drop-rate
//! curve [`DROP_RATES`] plus one mixed soak plan, then smoke-tests the
//! hardware rivals (MESI, Dragon) clean and under the same mixed plan —
//! they issue no prefetches to drop, but delayed fills, queue storms, and
//! evictions charge through the same fault hooks. Every cell enforces:
//!
//! 1. **Coherence** — the oracle reports zero stale reads in every cell.
//! 2. **Numerics** — every shared array equals the sequential golden run
//!    (faults may only move cycles, never values).
//! 3. **Monotone fallbacks** — CCDP demand-fallback counts never decrease
//!    as the drop rate rises (seeded decision streams make drop sets
//!    nested).
//!
//! Any violation is a [`StressError`] carrying the evidence; the `stress`
//! bin exits non-zero on it. A clean sweep becomes the `stress` section of
//! `BENCH_ccdp.json` (the degradation curve).

use ccdp_core::{compile_ccdp, run_seq, PipelineError};
use ccdp_ir::Sharing;
use ccdp_json::{Json, ToJson};
use ccdp_kernels::values_equal;
use t3d_sim::{FaultPlan, FaultStats, Scheme, Simulator, StaleReadExample};

use crate::resilience::GridOptions;
use crate::{cell_config, BenchKernel, Scale};

/// The degradation curve's prefetch-drop rates.
pub const DROP_RATES: [f64; 4] = [0.0, 0.01, 0.1, 0.5];

/// PE counts the sweep covers at each scale.
pub fn stress_pes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![2, 8],
        Scale::Paper => vec![8, 32],
    }
}

/// The sweep's fault plans: the drop-rate curve, then one mixed soak plan
/// exercising every injector at once.
pub fn stress_plans(seed: u64) -> Vec<(String, FaultPlan)> {
    let mut plans: Vec<(String, FaultPlan)> = DROP_RATES
        .iter()
        .map(|&r| {
            (format!("drop={r}"), FaultPlan::none().with_seed(seed).with_drop_rate(r))
        })
        .collect();
    plans.push((
        "mix".to_string(),
        FaultPlan::none()
            .with_seed(seed)
            .with_drop_rate(0.05)
            .with_delay(0.05, 4, 3)
            .with_storms(0.02, 4)
            .with_evict_rate(0.05),
    ));
    plans
}

/// One cell of the sweep: a kernel × PE count × fault plan that passed both
/// the oracle and the numerics check.
#[derive(Clone, Debug)]
pub struct StressCell {
    pub kernel: &'static str,
    /// Coherence scheme the cell ran ("CCDP", "MESI", or "DRAGON").
    pub scheme: &'static str,
    pub n_pes: usize,
    pub plan: String,
    /// The drop rate for curve cells, `None` for the mixed soak plan.
    pub drop_rate: Option<f64>,
    pub cycles: u64,
    /// Cycles of the fault-free cell of the same kernel × PE count.
    pub clean_cycles: u64,
    pub faults: FaultStats,
}

impl StressCell {
    /// Degradation relative to the fault-free run (1.0 = no slowdown).
    pub fn slowdown(&self) -> f64 {
        self.cycles as f64 / self.clean_cycles as f64
    }
}

/// A sweep cell broke one of the guarantees (or the pipeline itself failed).
#[derive(Debug)]
pub enum StressError {
    Pipeline(PipelineError),
    /// The oracle saw stale reads under faults — the coherence break the
    /// subsystem exists to rule out. Carries the oracle's evidence.
    Incoherent {
        kernel: &'static str,
        n_pes: usize,
        plan: String,
        stale_reads: u64,
        examples: Vec<StaleReadExample>,
    },
    /// Faulted numerics diverged from the sequential golden run.
    ValuesDiverged {
        kernel: &'static str,
        n_pes: usize,
        plan: String,
        array: String,
    },
    /// Demand-fallback counts decreased as the drop rate rose.
    NonMonotoneFallbacks {
        kernel: &'static str,
        n_pes: usize,
        lo_rate: f64,
        lo_fallbacks: u64,
        hi_rate: f64,
        hi_fallbacks: u64,
    },
}

impl std::fmt::Display for StressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StressError::Pipeline(e) => write!(f, "pipeline failed: {e}"),
            StressError::Incoherent { kernel, n_pes, plan, stale_reads, examples } => {
                write!(
                    f,
                    "COHERENCE BREAK: {kernel} P={n_pes} [{plan}]: {stale_reads} stale read(s)"
                )?;
                if let Some(e) = examples.first() {
                    write!(
                        f,
                        "; first: ref {:?} on PE {} read addr {} at version {} (memory at {}) in phase {}",
                        e.reference, e.pe, e.addr, e.cached_version, e.memory_version, e.phase
                    )?;
                }
                Ok(())
            }
            StressError::ValuesDiverged { kernel, n_pes, plan, array } => write!(
                f,
                "NUMERICS DIVERGED: {kernel} P={n_pes} [{plan}]: array {array} != sequential golden"
            ),
            StressError::NonMonotoneFallbacks {
                kernel,
                n_pes,
                lo_rate,
                lo_fallbacks,
                hi_rate,
                hi_fallbacks,
            } => write!(
                f,
                "NON-MONOTONE FALLBACKS: {kernel} P={n_pes}: {lo_fallbacks} at drop={lo_rate} \
                 but {hi_fallbacks} at drop={hi_rate}"
            ),
        }
    }
}

impl std::error::Error for StressError {}

impl From<PipelineError> for StressError {
    fn from(e: PipelineError) -> StressError {
        StressError::Pipeline(e)
    }
}

/// A completed (clean) sweep.
pub struct StressReport {
    pub scale: Scale,
    pub seed: u64,
    pub pes: Vec<usize>,
    pub cells: Vec<StressCell>,
}

/// Sweep one kernel at one PE count through every plan. Compiles once,
/// establishes the sequential golden values once, then verifies each
/// faulted run against them.
pub fn stress_cell(
    k: &BenchKernel,
    n_pes: usize,
    plans: &[(String, FaultPlan)],
) -> Result<Vec<StressCell>, StressError> {
    stress_cell_opts(k, n_pes, plans, &GridOptions::default(), None)
}

/// [`stress_cell`] with run budgets and a cooperative wall deadline
/// threaded into every simulation of the unit. `opts.faults` is ignored —
/// the sweep injects its own plans; only the budgets apply.
pub fn stress_cell_opts(
    k: &BenchKernel,
    n_pes: usize,
    plans: &[(String, FaultPlan)],
    opts: &GridOptions,
    deadline: Option<std::time::Instant>,
) -> Result<Vec<StressCell>, StressError> {
    let mut cfg = cell_config(k, n_pes);
    cfg.sim.cycle_budget = opts.cycle_budget;
    cfg.sim.step_budget = opts.step_budget;
    cfg.sim.wall_deadline = deadline;
    cfg.validate()?;
    let seq = run_seq(&k.program, &cfg)?;
    let shared: Vec<_> = k
        .program
        .arrays
        .iter()
        .filter(|a| matches!(a.sharing, Sharing::Shared))
        .map(|a| (a.id, a.name.clone()))
        .collect();
    let golden: Vec<Vec<f64>> =
        shared.iter().map(|&(aid, _)| seq.array_values(&k.program, aid)).collect();
    let art = compile_ccdp(&k.program, &cfg);
    let layout = cfg.layout_for(&k.program);

    let mut cells: Vec<StressCell> = Vec::with_capacity(plans.len());
    let mut clean_cycles = 0u64;
    for (label, plan) in plans {
        plan.validate().map_err(PipelineError::from)?;
        let mut sim = cfg.sim;
        sim.faults = *plan;
        let r = Simulator::new(
            &art.transformed,
            layout.clone(),
            cfg.machine.clone(),
            Scheme::Ccdp { plan: art.plan.clone() },
            sim,
        )
        .try_run()
        .map_err(|a| StressError::Pipeline(PipelineError::from(a)))?;
        if !r.oracle.is_coherent() {
            return Err(StressError::Incoherent {
                kernel: k.name,
                n_pes,
                plan: label.clone(),
                stale_reads: r.oracle.stale_reads,
                examples: r.oracle.examples.clone(),
            });
        }
        for ((aid, name), want) in shared.iter().zip(&golden) {
            if !values_equal(&r.array_values(&k.program, *aid), want) {
                return Err(StressError::ValuesDiverged {
                    kernel: k.name,
                    n_pes,
                    plan: label.clone(),
                    array: name.clone(),
                });
            }
        }
        if plan.is_none() {
            clean_cycles = r.cycles;
        }
        cells.push(StressCell {
            kernel: k.name,
            scheme: "CCDP",
            n_pes,
            plan: label.clone(),
            drop_rate: plan_drop_rate(label, plan),
            cycles: r.cycles,
            clean_cycles: 0, // patched below once known
            faults: r.fault_stats(),
        });
    }
    if clean_cycles == 0 {
        clean_cycles = cells.first().map_or(1, |c| c.cycles);
    }
    for c in &mut cells {
        c.clean_cycles = clean_cycles;
    }
    // Monotone degradation: nested drop decisions mean a prefetch dropped
    // at a lower rate is also dropped at a higher one, so demand fallbacks
    // may only grow along the curve.
    let curve: Vec<&StressCell> = cells.iter().filter(|c| c.drop_rate.is_some()).collect();
    for w in curve.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi.faults.demand_fallbacks < lo.faults.demand_fallbacks {
            return Err(StressError::NonMonotoneFallbacks {
                kernel: k.name,
                n_pes,
                lo_rate: lo.drop_rate.unwrap(),
                lo_fallbacks: lo.faults.demand_fallbacks,
                hi_rate: hi.drop_rate.unwrap(),
                hi_fallbacks: hi.faults.demand_fallbacks,
            });
        }
    }

    // Hardware-coherence smoke: MESI and Dragon, clean and under the mixed
    // soak plan. They carry no prefetch plan to drop, but delayed remote
    // fills, queue storms, and evictions charge through the same fault
    // hooks — coherence and golden numerics must hold for them too.
    if let Some((_, mix)) = plans.iter().find(|(l, _)| l == "mix") {
        for (sname, scheme) in [("MESI", Scheme::Mesi), ("DRAGON", Scheme::Dragon)] {
            let mut hw_clean = 0u64;
            for (label, plan) in [("clean", FaultPlan::none()), ("mix", *mix)] {
                let mut sim = cfg.sim;
                sim.faults = plan;
                let r = Simulator::new(
                    &k.program,
                    layout.clone(),
                    cfg.machine.clone(),
                    scheme.clone(),
                    sim,
                )
                .try_run()
                .map_err(|a| StressError::Pipeline(PipelineError::from(a)))?;
                if !r.oracle.is_coherent() {
                    return Err(StressError::Incoherent {
                        kernel: k.name,
                        n_pes,
                        plan: format!("{sname}/{label}"),
                        stale_reads: r.oracle.stale_reads,
                        examples: r.oracle.examples.clone(),
                    });
                }
                for ((aid, aname), want) in shared.iter().zip(&golden) {
                    if !values_equal(&r.array_values(&k.program, *aid), want) {
                        return Err(StressError::ValuesDiverged {
                            kernel: k.name,
                            n_pes,
                            plan: format!("{sname}/{label}"),
                            array: aname.clone(),
                        });
                    }
                }
                if label == "clean" {
                    hw_clean = r.cycles;
                }
                cells.push(StressCell {
                    kernel: k.name,
                    scheme: sname,
                    n_pes,
                    plan: label.to_string(),
                    drop_rate: None,
                    cycles: r.cycles,
                    clean_cycles: 0, // patched just below
                    faults: r.fault_stats(),
                });
            }
            let n = cells.len();
            for c in &mut cells[n - 2..] {
                c.clean_cycles = hw_clean.max(1);
            }
        }
    }
    Ok(cells)
}

fn plan_drop_rate(label: &str, plan: &FaultPlan) -> Option<f64> {
    label.starts_with("drop=").then_some(plan.drop_rate)
}

/// Run the whole sweep: every kernel × PE count cell on its own host
/// thread, every plan verified inside the cell.
pub fn run_stress(
    kernels: &[BenchKernel],
    pes: &[usize],
    scale: Scale,
    seed: u64,
) -> Result<StressReport, StressError> {
    let plans = stress_plans(seed);
    let results: Vec<Result<Vec<StressCell>, StressError>> = std::thread::scope(|s| {
        let handles: Vec<_> = kernels
            .iter()
            .flat_map(|k| {
                let plans = &plans;
                pes.iter().map(move |&n| s.spawn(move || stress_cell(k, n, plans)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress cell")).collect()
    });
    let mut cells = Vec::new();
    for r in results {
        cells.extend(r?);
    }
    Ok(StressReport { scale, seed, pes: to_vec(pes), cells })
}

fn to_vec(pes: &[usize]) -> Vec<usize> {
    pes.to_vec()
}

/// JSON for one passed sweep cell (journaled verbatim by the resume path).
pub fn stress_cell_json(c: &StressCell) -> Json {
    let mut fields = vec![
        ("kernel", c.kernel.to_json()),
        ("scheme", c.scheme.to_json()),
        ("n_pes", c.n_pes.to_json()),
        ("plan", c.plan.as_str().to_json()),
    ];
    if let Some(r) = c.drop_rate {
        fields.push(("drop_rate", r.to_json()));
    }
    fields.extend([
        ("cycles", c.cycles.to_json()),
        ("clean_cycles", c.clean_cycles.to_json()),
        ("slowdown", c.slowdown().to_json()),
        ("faults", c.faults.to_json()),
        ("coherent", true.to_json()),
        ("values_match_seq", true.to_json()),
    ]);
    Json::obj(fields)
}

/// The `stress` section assembled from per-cell JSON values — the single
/// assembly path for fresh and resumed sweeps alike.
pub fn stress_section_json(scale: Scale, seed: u64, pes: &[usize], cells: Vec<Json>) -> Json {
    Json::obj([
        ("scale", scale.name().to_json()),
        ("seed", seed.to_json()),
        ("pe_counts", pes.to_json()),
        ("drop_rates", DROP_RATES.as_slice().to_json()),
        (
            "invariant",
            "every cell: oracle coherent, values == sequential golden, \
             CCDP demand fallbacks monotone in drop rate; MESI/Dragon \
             smoke-tested clean and under the mixed plan"
                .to_json(),
        ),
        ("cells", Json::arr(cells)),
    ])
}

/// The `stress` section of `BENCH_ccdp.json`: the degradation curve plus
/// the guarantee every cell was checked against.
pub fn stress_json(rep: &StressReport) -> Json {
    stress_section_json(
        rep.scale,
        rep.seed,
        &rep.pes,
        rep.cells.iter().map(stress_cell_json).collect(),
    )
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::paper_kernels;

    #[test]
    fn sweep_is_deterministic_for_a_seed() {
        let kernels = paper_kernels(Scale::Quick);
        let a = run_stress(&kernels[..1], &[2], Scale::Quick, 42).expect("clean sweep");
        let b = run_stress(&kernels[..1], &[2], Scale::Quick, 42).expect("clean sweep");
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cycles, y.cycles, "{} {}", x.kernel, x.plan);
            assert_eq!(x.faults, y.faults, "{} {}", x.kernel, x.plan);
        }
        // A different seed makes different drop decisions (same cell count).
        let c = run_stress(&kernels[..1], &[2], Scale::Quick, 43).expect("clean sweep");
        assert_eq!(a.cells.len(), c.cells.len());
    }

    #[test]
    fn curve_cells_degrade_but_stay_correct() {
        let kernels = paper_kernels(Scale::Quick);
        let rep = run_stress(&kernels[..1], &[4], Scale::Quick, 7).expect("clean sweep");
        // CCDP curve/mix cells plus clean+mix smoke cells for each hardware scheme.
        assert_eq!(rep.cells.len(), stress_plans(7).len() + 4);
        let clean = &rep.cells[0];
        assert_eq!(clean.scheme, "CCDP");
        assert_eq!(clean.drop_rate, Some(0.0));
        assert!(clean.faults.is_zero(), "rate-0 curve cell injected faults");
        let heavy = rep.cells.iter().find(|c| c.drop_rate == Some(0.5)).unwrap();
        assert!(heavy.faults.prefetches_dropped > 0);
        assert!(heavy.faults.demand_fallbacks > 0, "drops must surface as fallbacks");
        let mix = rep
            .cells
            .iter()
            .find(|c| c.scheme == "CCDP" && c.plan == "mix")
            .unwrap();
        assert!(mix.faults.injected() > 0);
        for hw in ["MESI", "DRAGON"] {
            for plan in ["clean", "mix"] {
                let c = rep
                    .cells
                    .iter()
                    .find(|c| c.scheme == hw && c.plan == plan)
                    .unwrap_or_else(|| panic!("missing {hw}/{plan} smoke cell"));
                assert!(c.cycles > 0, "{hw}/{plan} ran to completion");
                assert!(c.clean_cycles > 0, "{hw}/{plan} has a clean baseline");
                assert!(c.drop_rate.is_none(), "hardware cells sit outside the curve");
            }
        }
        let j = stress_json(&rep);
        assert_eq!(j.get("seed").and_then(ccdp_json::Json::as_u64), Some(7));
        assert_eq!(j.get("cells").unwrap().items().len(), rep.cells.len());
        let first = &j.get("cells").unwrap().items()[0];
        assert_eq!(first.get("scheme").and_then(ccdp_json::Json::as_str), Some("CCDP"));
    }
}
