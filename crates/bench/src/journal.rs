//! Crash-safe checkpoint/resume for grid and stress runs.
//!
//! A run appends each completed cell to a JSONL journal
//! (`results/grid.journal.jsonl` by default): one header line
//! fingerprinting the run configuration, then one line per finished cell.
//! If the process is killed — OOM, ^C, a host reboot — a rerun with
//! `--resume` replays the journal, re-simulates only the missing cells,
//! and (because journaled cell JSON is re-emitted verbatim and every cell
//! is deterministic for a given config + seed) produces a report document
//! byte-identical to an uninterrupted run, minus the host-timing `perf`
//! section.
//!
//! Robustness rules:
//!
//! * The header line must match the current run's fingerprint **exactly**
//!   (string equality on compact JSON). Any drift — different scale, seed,
//!   PE list, budget, or fault plan — discards the journal and starts
//!   fresh: resuming someone else's cells would silently mix
//!   configurations.
//! * A torn final line (the classic crash artifact: the process died
//!   mid-`write`) is dropped; every complete line before it is kept. On
//!   resume the journal is compacted (rewritten atomically) so the torn
//!   tail never accumulates.
//! * Only *deterministic* outcomes are checkpointed: `ok`,
//!   `budget_exceeded`, `invalid`, and `failed` cells are settled facts,
//!   while `panicked` / `timed_out` cells may be host flakes and are
//!   re-attempted by the next resume.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use ccdp_core::Scheme;
use ccdp_json::{Json, ToJson};

use crate::report::cell_json;
use crate::resilience::{run_grid_isolated, CellFailure, CellOutcome, GridOptions};
use crate::{BenchKernel, GridTiming, Scale};

/// Default journal location for the `report` bin's grid.
pub const GRID_JOURNAL: &str = "results/grid.journal.jsonl";
/// Default journal location for the `stress` bin's sweep.
pub const STRESS_JOURNAL: &str = "results/stress.journal.jsonl";

/// The run-configuration fingerprint: the journal's header line. Two runs
/// may share a journal only if these bytes match exactly.
pub fn header_line(
    tool: &str,
    scale: Scale,
    seed: u64,
    pes: &[usize],
    schemes: &[Scheme],
    opts: &GridOptions,
) -> String {
    Json::obj([
        ("kind", "header".to_json()),
        ("schema", crate::report::SCHEMA_VERSION.to_json()),
        ("tool", tool.to_json()),
        ("scale", scale.name().to_json()),
        ("seed", seed.to_json()),
        ("pe_counts", pes.to_json()),
        ("schemes", Json::arr(schemes.iter().map(|s| s.key().to_json()))),
        (
            "cycle_budget",
            opts.cycle_budget.map_or(Json::Null, |b| b.to_json()),
        ),
        (
            "step_budget",
            opts.step_budget.map_or(Json::Null, |b| b.to_json()),
        ),
        // The fault plan participates in the fingerprint (it changes every
        // simulated cycle count); the wall-clock timeout does not (it only
        // decides *whether* a cell finished, never what it computed).
        (
            "faults",
            opts.faults.map_or(Json::Null, |f| format!("{f:?}").to_json()),
        ),
    ])
    .to_string()
}

/// One journaled cell: the kernel × PE key plus the checkpointed payload
/// (a grid cell's outcome JSON, or a stress unit's cell array).
pub struct Entry {
    pub kernel: String,
    pub n_pes: usize,
    pub data: Json,
}

/// An append-only checkpoint journal. `append` is `&self` (cells finish on
/// worker threads); each line is fsynced (`sync_data`) before `append`
/// returns, so a kill — or a whole host power loss — can tear at most the
/// line being written, and every line the journal acknowledged is durable.
///
/// The journal tracks its on-disk size so owners can bound growth:
/// [`Journal::bytes`] after each append, [`Journal::lines`] to read the
/// current complete entries back, and [`Journal::rewrite`] to atomically
/// replace the file with a compacted form (temp file + rename + directory
/// fsync — crash-safe at any instant: a kill mid-compaction leaves either
/// the old complete journal or the new complete journal, never a mix).
pub struct Journal {
    inner: Mutex<JournalFile>,
}

struct JournalFile {
    file: fs::File,
    path: std::path::PathBuf,
    bytes: u64,
}

/// Best-effort fsync of a directory, making a just-created or just-renamed
/// entry durable. Not every platform allows opening a directory for sync,
/// so failures are ignored — the journal degrades to flush-on-append.
fn sync_dir(dir: Option<&Path>) {
    if let Some(d) = dir.filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(f) = fs::File::open(d) {
            let _ = f.sync_all();
        }
    }
}

impl Journal {
    /// Start a fresh journal at `path`, truncating anything there. The
    /// parent directory is fsynced so the file itself survives a crash
    /// immediately after creation.
    pub fn create(path: &Path, header: &str) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut file = fs::File::create(path)?;
        writeln!(file, "{header}")?;
        file.sync_data()?;
        sync_dir(path.parent());
        let bytes = header.len() as u64 + 1;
        Ok(Journal {
            inner: Mutex::new(JournalFile { file, path: path.to_path_buf(), bytes }),
        })
    }

    /// Resume from `path`: if the file exists and its header matches, the
    /// surviving complete lines (validated by `valid`) are returned and the
    /// journal is compacted (torn tail dropped, rewritten atomically, with
    /// the parent directory fsynced after the rename) before reopening for
    /// append. A missing file or a fingerprint mismatch starts fresh with
    /// no lines. This is the generic core; [`Journal::resume`] layers the
    /// grid-cell entry shape on top, and the `ccdp-serve` job journal its
    /// own.
    pub fn resume_lines(
        path: &Path,
        header: &str,
        valid: impl Fn(&str) -> bool,
    ) -> std::io::Result<(Journal, Vec<String>)> {
        // Read as bytes: a line torn mid-multibyte-character is invalid
        // UTF-8, and that must drop the torn tail, not the whole journal.
        // (Complete lines were written from Rust strings and are always
        // valid, so lossy conversion can only mangle the torn tail, which
        // the `valid` filter then rejects.)
        let text = match fs::read(path) {
            Ok(t) => String::from_utf8_lossy(&t).into_owned(),
            Err(_) => return Ok((Journal::create(path, header)?, Vec::new())),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(first) if first == header => {}
            _ => {
                eprintln!(
                    "journal {} does not match this run's configuration; starting fresh",
                    path.display()
                );
                return Ok((Journal::create(path, header)?, Vec::new()));
            }
        }
        let mut entries = Vec::new();
        for line in lines {
            if !valid(line) {
                // A torn or foreign line: everything after it is suspect.
                break;
            }
            entries.push(line.to_string());
        }
        let mut compact = header.to_string();
        compact.push('\n');
        for line in &entries {
            compact.push_str(line);
            compact.push('\n');
        }
        // write_atomic syncs the rewritten file and the directory entry, so
        // the compacted journal is durable before we append to it.
        let bytes = compact.len() as u64;
        ccdp_json::write_atomic(path, &compact)?;
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok((
            Journal {
                inner: Mutex::new(JournalFile { file, path: path.to_path_buf(), bytes }),
            },
            entries,
        ))
    }

    /// Resume a grid-cell journal (see [`Journal::resume_lines`]).
    pub fn resume(path: &Path, header: &str) -> std::io::Result<(Journal, Vec<Entry>)> {
        let (journal, lines) =
            Journal::resume_lines(path, header, |l| parse_entry(l).is_some())?;
        let entries = lines
            .iter()
            .map(|l| parse_entry(l).expect("resume_lines validated this line"))
            .collect();
        Ok((journal, entries))
    }

    /// Append one raw journal line (no trailing newline), fsynced before
    /// returning — once this returns `Ok`, the line survives `kill -9` and
    /// power loss.
    pub fn append_line(&self, line: &str) -> std::io::Result<()> {
        let mut j = self.inner.lock().expect("journal file lock");
        writeln!(j.file, "{line}")?;
        j.file.sync_data()?;
        j.bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Current on-disk size in bytes (header + every acknowledged line).
    pub fn bytes(&self) -> u64 {
        self.inner.lock().expect("journal file lock").bytes
    }

    /// Read the complete entry lines currently on disk (everything after
    /// the header), under the append lock. Used by owners to compute a
    /// compacted rewrite.
    pub fn lines(&self) -> std::io::Result<Vec<String>> {
        let j = self.inner.lock().expect("journal file lock");
        let text = fs::read_to_string(&j.path)?;
        Ok(text.lines().skip(1).map(str::to_string).collect())
    }

    /// Atomically replace the journal with `header` + `lines` and reopen
    /// for append. Crash-safe mid-compaction: the new content is written to
    /// a temp file, fsynced, renamed over the old journal, and the parent
    /// directory is fsynced — at every instant the path holds one complete,
    /// parseable journal.
    pub fn rewrite(&self, header: &str, lines: &[String]) -> std::io::Result<()> {
        let mut j = self.inner.lock().expect("journal file lock");
        let mut text = String::with_capacity(
            header.len() + 1 + lines.iter().map(|l| l.len() + 1).sum::<usize>(),
        );
        text.push_str(header);
        text.push('\n');
        for line in lines {
            text.push_str(line);
            text.push('\n');
        }
        ccdp_json::write_atomic(&j.path, &text)?;
        // The old handle points at the unlinked pre-compaction inode;
        // re-open so appends land in the live file.
        j.file = fs::OpenOptions::new().append(true).open(&j.path)?;
        j.bytes = text.len() as u64;
        Ok(())
    }

    /// Checkpoint one completed cell. Errors are surfaced to the caller —
    /// a run whose journal cannot be written is still a valid run, just
    /// not a resumable one.
    pub fn append(&self, kernel: &str, n_pes: usize, data: &Json) -> std::io::Result<()> {
        let line = Json::obj([
            ("kind", "cell".to_json()),
            ("kernel", kernel.to_json()),
            ("n_pes", n_pes.to_json()),
            ("data", data.clone()),
        ])
        .to_string();
        self.append_line(&line)
    }
}

fn parse_entry(line: &str) -> Option<Entry> {
    let j = ccdp_json::parse(line).ok()?;
    if j.get("kind").and_then(Json::as_str) != Some("cell") {
        return None;
    }
    Some(Entry {
        kernel: j.get("kernel").and_then(Json::as_str)?.to_string(),
        n_pes: j.get("n_pes").and_then(Json::as_u64)? as usize,
        data: j.get("data")?.clone(),
    })
}

/// Which outcomes are settled facts worth checkpointing. Panics and
/// timeouts may be host flakes — a resume should re-attempt them rather
/// than immortalize them in the journal.
pub fn checkpointable(outcome: &CellOutcome) -> bool {
    !matches!(
        outcome,
        CellOutcome::Fail(CellFailure::Panicked { .. } | CellFailure::TimedOut { .. })
    )
}

/// Result of a journaled (and possibly resumed) grid run.
pub struct JournaledGrid {
    /// Per-cell JSON, `cells[kernel][pe]`, mixing journaled and fresh
    /// cells indistinguishably.
    pub cells: Vec<Vec<Json>>,
    /// Cells replayed from the journal instead of re-simulated.
    pub reused: usize,
    /// `(kernel, n_pes, outcome class, message)` for every non-ok cell.
    pub failures: Vec<(String, usize, String, String)>,
    /// Host timing for the `perf` section: `Some` only for a fully fresh,
    /// fully successful run.
    pub timing: Option<GridTiming>,
}

/// Run the grid with cell isolation and journaling; with `resume`, replay
/// matching journaled cells and simulate only the rest.
pub fn run_journaled_grid(
    kernels: &[BenchKernel],
    pes: &[usize],
    schemes: &[Scheme],
    opts: &GridOptions,
    journal_path: &Path,
    header: &str,
    resume: bool,
) -> std::io::Result<JournaledGrid> {
    let (journal, entries) = if resume {
        Journal::resume(journal_path, header)?
    } else {
        (Journal::create(journal_path, header)?, Vec::new())
    };
    let mut done: HashMap<(String, usize), Json> = HashMap::new();
    for e in entries {
        done.insert((e.kernel, e.n_pes), e.data);
    }
    let mut todo: Vec<(usize, usize)> = Vec::new();
    for (ki, k) in kernels.iter().enumerate() {
        for (pi, &n) in pes.iter().enumerate() {
            if !done.contains_key(&(k.name.to_string(), n)) {
                todo.push((ki, pi));
            }
        }
    }
    let reused = kernels.len() * pes.len() - todo.len();

    let append_errors = Mutex::new(Vec::<std::io::Error>::new());
    let grid = run_grid_isolated(kernels, pes, schemes, &todo, opts, |cell| {
        if checkpointable(&cell.outcome) {
            let data = cell_json(&cell.outcome);
            if let Err(e) = journal.append(cell.kernel, cell.n_pes, &data) {
                append_errors.lock().expect("append error lock").push(e);
            }
        }
    });
    if let Some(e) = append_errors.into_inner().expect("append error lock").pop() {
        eprintln!("warning: journal append failed ({e}); this run cannot be resumed");
    }

    let mut cells: Vec<Vec<Json>> = Vec::with_capacity(kernels.len());
    let mut failures = Vec::new();
    for (ki, k) in kernels.iter().enumerate() {
        let mut row = Vec::with_capacity(pes.len());
        for (pi, &n) in pes.iter().enumerate() {
            let cj = match grid.outcomes[ki][pi].as_ref() {
                Some(outcome) => cell_json(outcome),
                None => done
                    .remove(&(k.name.to_string(), n))
                    .expect("cell neither simulated nor journaled"),
            };
            let class = cj.get("outcome").and_then(Json::as_str).unwrap_or("?").to_string();
            if class != "ok" {
                let msg = cj
                    .get("failure")
                    .and_then(|f| f.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("unknown failure")
                    .to_string();
                failures.push((k.name.to_string(), n, class, msg));
            }
            row.push(cj);
        }
        cells.push(row);
    }
    // A resumed run has no whole-grid wall-clock measurement to report:
    // reused cells cost no host time, so the numbers would not be
    // comparable to a fresh baseline. run_grid_isolated already returns
    // None for partial or failing runs.
    let timing = if reused == 0 { grid.timing } else { None };
    Ok(JournaledGrid { cells, reused, failures, timing })
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn header_drift_discards_journal() {
        let dir = std::env::temp_dir().join(format!("ccdp-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let h1 = header_line("report", Scale::Quick, 1, &[2, 4], &crate::GRID_SCHEMES, &GridOptions::default());
        let j = Journal::create(&path, &h1).unwrap();
        j.append("MXM", 2, &Json::obj([("outcome", "ok".to_json())])).unwrap();
        drop(j);
        // Same fingerprint: the entry survives.
        let (_j, entries) = Journal::resume(&path, &h1).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kernel, "MXM");
        assert_eq!(entries[0].n_pes, 2);
        // Different seed: fresh start.
        let h2 = header_line("report", Scale::Quick, 2, &[2, 4], &crate::GRID_SCHEMES, &GridOptions::default());
        let (_j, entries) = Journal::resume(&path, &h2).unwrap();
        assert!(entries.is_empty(), "fingerprint drift must discard the journal");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_dropped_and_compacted() {
        let dir = std::env::temp_dir().join(format!("ccdp-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let h = header_line("report", Scale::Quick, 7, &[2], &crate::GRID_SCHEMES, &GridOptions::default());
        let j = Journal::create(&path, &h).unwrap();
        j.append("MXM", 2, &Json::obj([("outcome", "ok".to_json())])).unwrap();
        j.append("VPENTA", 2, &Json::obj([("outcome", "ok".to_json())])).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn trailing line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"cell\",\"kernel\":\"TOMC");
        fs::write(&path, &text).unwrap();
        let (_j, entries) = Journal::resume(&path, &h).unwrap();
        assert_eq!(entries.len(), 2, "complete lines survive, torn tail dropped");
        // The journal was compacted: no torn bytes remain on disk.
        let compacted = fs::read_to_string(&path).unwrap();
        assert!(!compacted.contains("TOMC"));
        assert!(compacted.ends_with('\n'));
        fs::remove_dir_all(&dir).ok();
    }

    /// The torn-final-line recovery contract, end to end: every line
    /// acknowledged by `append_line` is fsynced and survives; a crash can
    /// tear only the very last line; recovery drops exactly that tail —
    /// even when the tear landed mid-multibyte-character — compacts the
    /// file, and appending afterwards resumes cleanly.
    #[test]
    fn torn_line_recovery_path_via_generic_lines() {
        let dir = std::env::temp_dir().join(format!("ccdp-torn-generic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let header = r#"{"kind":"header","tool":"ccdpd","schema":7}"#;
        let j = Journal::create(&path, header).unwrap();
        j.append_line(r#"{"kind":"job","id":1}"#).unwrap();
        j.append_line(r#"{"kind":"job","id":2}"#).unwrap();
        drop(j);
        // Crash artifact 1: a torn ASCII tail.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(br#"{"kind":"job","#);
        // Crash artifact 2: the tear splits a multibyte character ("é").
        bytes.extend_from_slice(&[0xC3]);
        fs::write(&path, &bytes).unwrap();
        let is_job = |l: &str| ccdp_json::parse(l).is_ok();
        let (j, lines) = Journal::resume_lines(&path, header, is_job).unwrap();
        assert_eq!(lines.len(), 2, "complete lines survive, torn tail dropped");
        assert_eq!(lines[0], r#"{"kind":"job","id":1}"#);
        // Compaction removed the torn bytes from disk.
        let on_disk = fs::read(&path).unwrap();
        assert!(!on_disk.contains(&0xC3));
        // The journal stays appendable after recovery.
        j.append_line(r#"{"kind":"job","id":3}"#).unwrap();
        drop(j);
        let (_j, lines) = Journal::resume_lines(&path, header, is_job).unwrap();
        assert_eq!(lines.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_compacts_atomically_and_stays_appendable() {
        let dir = std::env::temp_dir().join(format!("ccdp-rewrite-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let header = r#"{"kind":"header","tool":"t","schema":1}"#;
        let j = Journal::create(&path, header).unwrap();
        assert_eq!(j.bytes(), header.len() as u64 + 1);
        for i in 0..8 {
            j.append_line(&format!(r#"{{"kind":"x","i":{i}}}"#)).unwrap();
        }
        let before = j.bytes();
        assert_eq!(before, fs::metadata(&path).unwrap().len(), "bytes tracks disk");
        assert_eq!(j.lines().unwrap().len(), 8);
        // Compact to the last two lines.
        let keep: Vec<String> = j.lines().unwrap().into_iter().skip(6).collect();
        j.rewrite(header, &keep).unwrap();
        assert!(j.bytes() < before);
        assert_eq!(j.bytes(), fs::metadata(&path).unwrap().len());
        // Appends after a rewrite land in the live (renamed-over) file.
        j.append_line(r#"{"kind":"x","i":99}"#).unwrap();
        drop(j);
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 kept + 1 appended
        assert_eq!(lines[0], header);
        assert!(lines[3].contains("99"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_plan_changes_fingerprint() {
        let base = GridOptions::default();
        let faulted = GridOptions {
            faults: Some(t3d_sim::FaultPlan::none().with_seed(3).with_drop_rate(0.1)),
            ..Default::default()
        };
        let h1 = header_line("report", Scale::Quick, 0, &[2], &crate::GRID_SCHEMES, &base);
        let h2 = header_line("report", Scale::Quick, 0, &[2], &crate::GRID_SCHEMES, &faulted);
        assert_ne!(h1, h2, "fault plans must participate in the fingerprint");
        // The wall-clock timeout must NOT (it never changes results).
        let timed = GridOptions {
            cell_timeout: Some(std::time::Duration::from_secs(5)),
            ..Default::default()
        };
        let h3 = header_line("report", Scale::Quick, 0, &[2], &crate::GRID_SCHEMES, &timed);
        assert_eq!(h1, h3);
        // A different scheme list is a different run configuration.
        let two = [ccdp_core::Scheme::Base, ccdp_core::Scheme::Ccdp];
        let h4 = header_line("report", Scale::Quick, 0, &[2], &two, &base);
        assert_ne!(h1, h4, "scheme lists must participate in the fingerprint");
    }
}
