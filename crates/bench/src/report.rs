//! Machine-readable benchmark report: assembles the full evaluation grid —
//! the paper's Tables 1 and 2 plus per-PE / per-epoch cycle breakdowns and
//! prefetch quality metrics — into one JSON document (`BENCH_ccdp.json`,
//! written by the `report` bin).
//!
//! The document is assembled from per-cell JSON values (one per
//! kernel × PE count, each carrying a leading `outcome` field), so a
//! resumed run can re-emit journaled cells verbatim and produce a document
//! byte-identical to an uninterrupted run (minus the host-timing `perf`
//! section, which only a fully fresh, fully successful run carries).

use ccdp_core::{
    format_improvement_cells, format_speedup_cells, Scheme, SchemeMatrix, TableCell, TableRow,
};
use ccdp_json::{Json, ToJson};

use crate::resilience::{CellFailure, CellOutcome};
use crate::{BenchKernel, GridTiming, Scale};

/// Schema version of the report document; bump on breaking shape changes.
/// v2: per-PE stats gained a `faults` object, the document records the
/// fault-decision `seed`, and the `stress` bin merges a degradation-curve
/// `stress` section into the same file.
/// v3: a `perf` section records host-side throughput of the grid run —
/// wall-clock and simulated-cycles-per-second, overall and per cell —
/// consumed by the CI performance-regression gate (`perf_gate` bin).
/// v4: every grid cell leads with an `outcome` classification ("ok",
/// "panicked", "timed_out", "budget_exceeded", "invalid", "failed");
/// failed cells carry a `failure` object instead of simulation results,
/// and the `perf` section is present only when every cell of the grid was
/// simulated fresh and succeeded (resumed runs have no comparable
/// throughput baseline).
/// v5: the `lint` bin merges a `lint` section — static soundness verdicts
/// from `ccdp-lint` over the kernel grid and a synthetic-program sweep —
/// into the same file.
/// v6: cells are N-way scheme matrices — scheme-keyed `speedups` and
/// `runs` objects (`base`, `ccdp`, `inv`, `mesi`, `dragon`) replace the
/// flat `base`/`ccdp` fields, the document records its `schemes` list,
/// the headline grid covers BASE/CCDP/MESI/DRAGON, `perf` cells carry
/// per-scheme `sim_cycles_by_scheme` rows, and stress cells gain a
/// `scheme` field (hardware backends smoke-tested under the mixed soak
/// plan).
/// v7: the `loadgen` bin (ccdp-serve) merges a `service` section — the
/// ccdpd job-service load-test results: sustained QPS, p50/p99 latency,
/// shed rate, and cache hit rate per traffic profile. No existing section
/// changed shape; v6 consumers that ignore unknown top-level sections read
/// v7 documents unchanged.
/// v8: the `perf` section records `sim_threads` — the simulator's
/// intra-run worker knob (`CCDP_SIM_THREADS`) in effect for the timed run,
/// so the gate never compares wall numbers across engine configurations —
/// and, on fresh healthy runs, a `scaling` array: the same quick grid
/// re-timed at several `sim_threads` values with `speedup_vs_1` per point.
/// Documents missing `perf.sim_threads` (v7 and older) read as 1 (the
/// serial engine, the only one that existed).
/// v9: the `chaos` bin (ccdp-serve) merges a `supervision` subsection into
/// the `service` section — crash-recovery soak results for the supervised
/// multi-process ccdpd: worker/supervisor kill counts, restarts,
/// redispatches, orphan replays, breaker trips, recovery-latency p50/p99,
/// and the byte-identity verdict. Additive within `service`; v8 consumers
/// read v9 documents unchanged.
/// v10: the `perf` section gains a `shard` object — epoch-sharding
/// counters aggregated over the timed grid (`static_proven`,
/// `dynamic_logged`, `conflicts`, `budget_reruns`, `declined`, and the
/// derived `dynamic_checks_skipped`) — and the `lint` section's cells and
/// synth sweep gain per-program `shard` verdict counts
/// (`doalls`/`disjoint`/`may_conflict`/`unknown`) from the static
/// shard-independence analysis, with CCDP006/CCDP007 findings in the
/// existing findings lists. Additive; v9 consumers read v10 documents
/// unchanged.
pub const SCHEMA_VERSION: u32 = 10;

/// How the committed report document read out as a perf-gate baseline.
/// Produced by [`perf_baseline`]; the `perf_gate` bin turns these into
/// exit codes, but the classification itself is pure and unit-testable.
#[derive(Debug, Clone, PartialEq)]
pub enum Baseline {
    /// No usable `perf.wall_seconds` (resumed or failing report run, or a
    /// section-only document) — the gate skips with a notice.
    Missing,
    /// The document was written by a newer schema than this binary
    /// understands: comparing against a reshaped layout could pass or fail
    /// for the wrong reason, so the gate must hard-error.
    NewerSchema(u64),
    /// A usable baseline: the committed quick-grid wall seconds, plus the
    /// simulator worker count they were measured under (`perf.sim_threads`;
    /// documents older than schema v8 read as 1, the serial engine). The
    /// gate refuses to compare a candidate run against a baseline taken at
    /// a different `sim_threads` — that would measure the knob, not a
    /// regression.
    Wall { wall_seconds: f64, sim_threads: u64 },
}

/// Classify a report document as a perf-gate baseline. Forward-compatible
/// within a schema generation: *additive* sections (e.g. v7's `service`
/// section) are ignored, and only a `schema_version` beyond this binary's
/// [`SCHEMA_VERSION`] is rejected.
pub fn perf_baseline(doc: &Json) -> Baseline {
    if let Some(v) = doc.get("schema_version").and_then(Json::as_u64) {
        if v > u64::from(SCHEMA_VERSION) {
            return Baseline::NewerSchema(v);
        }
    }
    let perf = doc.get("perf");
    match perf.and_then(|p| p.get("wall_seconds")).and_then(Json::as_f64) {
        Some(w) if w > 0.0 => Baseline::Wall {
            wall_seconds: w,
            sim_threads: perf
                .and_then(|p| p.get("sim_threads"))
                .and_then(Json::as_u64)
                .unwrap_or(1),
        },
        _ => Baseline::Missing,
    }
}

/// JSON for one successful cell: the `outcome` marker followed by the
/// matrix's fields (scheme-keyed `speedups` and `runs` objects).
pub fn cell_json_ok(c: &SchemeMatrix) -> Json {
    let mut fields = vec![("outcome".to_string(), "ok".to_json())];
    if let Json::Obj(pairs) = c.to_json() {
        fields.extend(pairs);
    }
    Json::Obj(fields)
}

/// JSON for one cell outcome (successful or classified failure).
pub fn cell_json(outcome: &CellOutcome) -> Json {
    match outcome {
        CellOutcome::Ok(c) => cell_json_ok(c),
        CellOutcome::Fail(f) => {
            let mut detail = vec![("message", f.to_string().to_json())];
            match f {
                CellFailure::Panicked { retried, .. } => {
                    detail.push(("retried", (*retried).to_json()));
                }
                CellFailure::TimedOut { pe, steps, retried } => {
                    detail.extend([
                        ("pe", pe.to_json()),
                        ("steps", steps.to_json()),
                        ("retried", (*retried).to_json()),
                    ]);
                }
                CellFailure::BudgetExceeded { pe, cycles, steps } => {
                    detail.extend([
                        ("pe", pe.to_json()),
                        ("cycles", cycles.to_json()),
                        ("steps", steps.to_json()),
                    ]);
                }
                CellFailure::Invalid { .. } | CellFailure::Failed { .. } => {}
            }
            Json::obj([
                ("outcome", f.class().to_json()),
                ("failure", Json::obj(detail)),
            ])
        }
    }
}

/// A table cell read back out of cell JSON: one speedup column per scheme
/// in `schemes`, looked up in the cell's scheme-keyed `speedups` object.
/// Failed cells (no `speedups` object) become `--` placeholders.
fn table_cell(n_pes: usize, schemes: &[Scheme], cell: &Json) -> TableCell {
    let speedups = cell.get("speedups");
    TableCell {
        n_pes,
        speedups: schemes
            .iter()
            .map(|s| {
                (s.name(), speedups.and_then(|sp| sp.get(s.key())).and_then(Json::as_f64))
            })
            .collect(),
        improvement_pct: cell.get("improvement_pct").and_then(Json::as_f64),
    }
}

/// The `perf` section: host throughput of one grid run. Wall-clock numbers
/// are host observations (they vary run to run); everything else in the
/// document is deterministic.
pub fn perf_json(names: &[&str], pes: &[usize], t: &GridTiming) -> Json {
    let rate = |cycles: u64, secs: f64| {
        if secs > 0.0 { cycles as f64 / secs } else { 0.0 }
    };
    let seq = Json::arr(names.iter().zip(&t.seq).map(|(name, c)| {
        Json::obj([
            ("kernel", name.to_json()),
            ("wall_seconds", c.wall_seconds.to_json()),
            ("sim_cycles", c.sim_cycles.to_json()),
            ("cycles_per_second", rate(c.sim_cycles, c.wall_seconds).to_json()),
        ])
    }));
    let cells = Json::arr(names.iter().zip(&t.cells).flat_map(|(name, row)| {
        pes.iter().zip(row).map(|(&n, c)| {
            Json::obj([
                ("kernel", name.to_json()),
                ("n_pes", n.to_json()),
                ("wall_seconds", c.wall_seconds.to_json()),
                ("sim_cycles", c.sim_cycles.to_json()),
                (
                    "sim_cycles_by_scheme",
                    Json::obj(c.scheme_cycles.iter().map(|&(k, cy)| (k, cy.to_json()))),
                ),
                ("cycles_per_second", rate(c.sim_cycles, c.wall_seconds).to_json()),
            ])
        })
    }));
    let shard = t.shard();
    let mut fields = vec![
        ("wall_seconds", t.wall_seconds.to_json()),
        ("sim_cycles", t.sim_cycles().to_json()),
        ("cycles_per_second", t.cycles_per_second().to_json()),
        ("threads", t.threads.to_json()),
        ("sim_threads", t.sim_threads.to_json()),
        (
            "shard",
            Json::obj([
                ("static_proven", shard.static_proven.to_json()),
                ("dynamic_logged", shard.dynamic_logged.to_json()),
                ("conflicts", shard.conflicts.to_json()),
                ("budget_reruns", shard.budget_reruns.to_json()),
                ("declined", shard.declined.to_json()),
                ("dynamic_checks_skipped", shard.dynamic_checks_skipped().to_json()),
            ]),
        ),
        ("seq", seq),
        ("cells", cells),
    ];
    if !t.scaling.is_empty() {
        let serial = t
            .scaling
            .iter()
            .find(|p| p.sim_threads == 1)
            .map(|p| p.wall_seconds)
            .filter(|&w| w > 0.0);
        fields.push((
            "scaling",
            Json::arr(t.scaling.iter().map(|p| {
                let mut point = vec![
                    ("sim_threads", p.sim_threads.to_json()),
                    ("wall_seconds", p.wall_seconds.to_json()),
                    ("sim_cycles", p.sim_cycles.to_json()),
                    ("cycles_per_second", rate(p.sim_cycles, p.wall_seconds).to_json()),
                ];
                if let Some(base) = serial.filter(|_| p.wall_seconds > 0.0) {
                    point.push(("speedup_vs_1", (base / p.wall_seconds).to_json()));
                }
                Json::obj(point)
            })),
        ));
    }
    Json::obj(fields)
}

/// Assemble the report document from per-cell JSON values, indexed
/// `cells[kernel][pe]`. This is the single assembly path: fresh runs build
/// the cell values from live [`CellOutcome`]s, resumed runs mix in
/// journaled values verbatim — both produce the same bytes for the same
/// outcomes.
pub fn report_json_cells(
    scale: Scale,
    seed: u64,
    pes: &[usize],
    schemes: &[Scheme],
    names: &[&str],
    cells: &[Vec<Json>],
    timing: Option<&GridTiming>,
) -> Json {
    assert_eq!(names.len(), cells.len(), "one cell row per kernel");
    let rows: Vec<Vec<TableCell>> = cells
        .iter()
        .map(|row| pes.iter().zip(row).map(|(&n, c)| table_cell(n, schemes, c)).collect())
        .collect();
    let trows: Vec<TableRow<'_>> = names
        .iter()
        .zip(&rows)
        .map(|(name, cells)| TableRow { kernel: name, cells })
        .collect();
    let kernels_json = Json::arr(names.iter().zip(cells).map(|(name, row)| {
        Json::obj([
            ("name", name.to_json()),
            ("cells", Json::arr(row.iter().cloned())),
        ])
    }));
    let mut fields = vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        (
            "paper",
            "A Compiler-Directed Cache Coherence Scheme Using Data Prefetching".to_json(),
        ),
        ("scale", scale.name().to_json()),
        ("seed", seed.to_json()),
        ("pe_counts", pes.to_json()),
        ("schemes", Json::arr(schemes.iter().map(|s| s.key().to_json()))),
        ("kernels", kernels_json),
        (
            "tables",
            Json::obj([
                ("speedup", format_speedup_cells(&trows).to_json()),
                ("improvement", format_improvement_cells(&trows).to_json()),
            ]),
        ),
    ];
    if let Some(t) = timing {
        fields.push(("perf", perf_json(names, pes, t)));
    }
    Json::obj(fields)
}

/// Assemble the report document for a completed (fully successful) grid
/// run. `grid` is indexed `[kernel][pe_count]`, as produced by
/// [`crate::run_grid`]. `seed` is the fault-decision seed the run was
/// invoked with (recorded for reproducibility even when the grid itself
/// runs fault-free).
pub fn report_json(
    scale: Scale,
    seed: u64,
    pes: &[usize],
    schemes: &[Scheme],
    kernels: &[BenchKernel],
    grid: &[Vec<SchemeMatrix>],
    timing: Option<&GridTiming>,
) -> Json {
    assert_eq!(kernels.len(), grid.len(), "one matrix row per kernel");
    let names: Vec<&str> = kernels.iter().map(|k| k.name).collect();
    let cells: Vec<Vec<Json>> =
        grid.iter().map(|row| row.iter().map(cell_json_ok).collect()).collect();
    report_json_cells(scale, seed, pes, schemes, &names, &cells, timing)
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{paper_kernels, run_grid_timed};

    /// Pins the gate's forward-compat contract: additive sections (v7's
    /// `service`, v8's `perf.scaling`) are ignored, only a genuinely newer
    /// schema is rejected — and pre-v8 baselines read as the serial engine.
    #[test]
    fn perf_baseline_forward_compat() {
        let v8 = ccdp_json::parse(
            r#"{"schema_version": 8,
                "perf": {"wall_seconds": 2.5, "sim_threads": 4,
                         "scaling": [{"sim_threads": 1, "wall_seconds": 5.0}]},
                "service": {"profiles": [{"name": "soak", "qps": 120.0}]}}"#,
        )
        .unwrap();
        assert_eq!(
            perf_baseline(&v8),
            Baseline::Wall { wall_seconds: 2.5, sim_threads: 4 }
        );

        // Older documents (no sim_threads recorded) were measured by the
        // serial engine — the only one that existed.
        let v7 = ccdp_json::parse(r#"{"schema_version": 7, "perf": {"wall_seconds": 1.0}}"#)
            .unwrap();
        assert_eq!(
            perf_baseline(&v7),
            Baseline::Wall { wall_seconds: 1.0, sim_threads: 1 }
        );

        // Newer-than-us must be a hard signal, not a silent comparison.
        let v11 = ccdp_json::parse(r#"{"schema_version": 11, "perf": {"wall_seconds": 1.0}}"#)
            .unwrap();
        assert_eq!(perf_baseline(&v11), Baseline::NewerSchema(11));

        // Service-only documents (no perf timing) skip, not error.
        let no_perf =
            ccdp_json::parse(r#"{"schema_version": 8, "service": {"profiles": []}}"#).unwrap();
        assert_eq!(perf_baseline(&no_perf), Baseline::Missing);
        let bad_wall =
            ccdp_json::parse(r#"{"schema_version": 8, "perf": {"wall_seconds": 0}}"#).unwrap();
        assert_eq!(perf_baseline(&bad_wall), Baseline::Missing);
    }

    #[test]
    fn report_document_shape() {
        let kernels = paper_kernels(Scale::Quick);
        let pes = [2usize];
        let schemes = crate::GRID_SCHEMES;
        let (grid, mut timing) =
            run_grid_timed(&kernels[..2], &pes, &schemes).expect("coherent grid");
        timing.scaling = vec![
            crate::ScalingPoint { sim_threads: 1, wall_seconds: 4.0, sim_cycles: 100 },
            crate::ScalingPoint { sim_threads: 2, wall_seconds: 2.5, sim_cycles: 100 },
        ];
        let j =
            report_json(Scale::Quick, 9, &pes, &schemes, &kernels[..2], &grid, Some(&timing));
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(10));
        assert_eq!(j.get("scale").and_then(Json::as_str), Some("quick"));
        assert_eq!(j.get("seed").and_then(Json::as_u64), Some(9));
        let schemes_json = j.get("schemes").unwrap().items();
        assert_eq!(schemes_json.len(), 4);
        assert_eq!(schemes_json[0].as_str(), Some("base"));
        let ks = j.get("kernels").unwrap().items();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].get("name").and_then(Json::as_str), Some("MXM"));
        let cell = &ks[0].get("cells").unwrap().items()[0];
        assert_eq!(cell.get("outcome").and_then(Json::as_str), Some("ok"));
        let runs = cell.get("runs").expect("scheme-keyed runs object");
        for key in ["base", "ccdp", "mesi", "dragon"] {
            let r = runs.get(key).unwrap_or_else(|| panic!("missing run {key}"));
            assert!(r.get("cycles").and_then(Json::as_u64).unwrap() > 0, "{key}");
            assert!(
                cell.get("speedups").unwrap().get(key).and_then(Json::as_f64).unwrap() > 0.0
            );
        }
        assert!(runs.get("ccdp").unwrap().get("epochs").unwrap().items().len() >= 2);
        let tables = j.get("tables").unwrap();
        let t1 = tables.get("speedup").and_then(Json::as_str).unwrap();
        assert!(t1.contains("Table 1"));
        for name in ["BASE", "CCDP", "MESI", "DRAGON"] {
            assert!(t1.contains(name), "missing {name} column in:\n{t1}");
        }
        assert!(tables
            .get("improvement")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Table 2"));
        // Per-PE fault accounting is present (and zero) in fault-free cells.
        let totals = runs.get("ccdp").unwrap().get("totals").unwrap();
        let faults = totals.get("faults").expect("faults object in totals");
        assert_eq!(faults.get("prefetches_dropped").and_then(Json::as_u64), Some(0));
        assert_eq!(faults.get("demand_fallbacks").and_then(Json::as_u64), Some(0));
        // Hardware runs charge bus traffic through the same stats plumbing.
        let mesi_totals = runs.get("mesi").unwrap().get("totals").unwrap();
        assert!(mesi_totals.get("bus_txns").and_then(Json::as_u64).unwrap() > 0);
        // The perf section reflects the timed run: one seq entry per
        // kernel, one cell entry per (kernel, pe) pair, positive wall time.
        let perf = j.get("perf").expect("perf section");
        assert_eq!(perf.get("seq").unwrap().items().len(), 2);
        assert_eq!(perf.get("cells").unwrap().items().len(), 2);
        assert!(perf.get("wall_seconds").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(perf.get("sim_cycles").and_then(Json::as_u64).unwrap() > 0);
        assert!(perf.get("threads").and_then(Json::as_u64).unwrap() >= 1);
        // v8: the engine configuration the wall numbers describe, plus the
        // attached scaling probe with derived speedup_vs_1.
        assert!(perf.get("sim_threads").and_then(Json::as_u64).unwrap() >= 1);
        // v10: shard-path counters, with the derived skip count tied to the
        // static-proof count.
        let shard = perf.get("shard").expect("shard counters (schema v10)");
        for key in
            ["static_proven", "dynamic_logged", "conflicts", "budget_reruns", "declined"]
        {
            assert!(shard.get(key).and_then(Json::as_u64).is_some(), "missing shard.{key}");
        }
        assert_eq!(
            shard.get("dynamic_checks_skipped").and_then(Json::as_u64),
            shard.get("static_proven").and_then(Json::as_u64),
        );
        let scaling = perf.get("scaling").expect("scaling probe rows").items();
        assert_eq!(scaling.len(), 2);
        assert_eq!(scaling[0].get("sim_threads").and_then(Json::as_u64), Some(1));
        assert_eq!(scaling[1].get("sim_threads").and_then(Json::as_u64), Some(2));
        let s1 = scaling[1].get("speedup_vs_1").and_then(Json::as_f64).unwrap();
        assert!((s1 - 1.6).abs() < 1e-12, "4.0s / 2.5s = 1.6x, got {s1}");
        let cell0 = &perf.get("cells").unwrap().items()[0];
        assert_eq!(cell0.get("kernel").and_then(Json::as_str), Some("MXM"));
        assert_eq!(cell0.get("n_pes").and_then(Json::as_u64), Some(2));
        // Per-scheme sim-cycle rows sum to the cell total (schema v6).
        let by_scheme = cell0.get("sim_cycles_by_scheme").expect("per-scheme rows");
        let sum: u64 = ["base", "ccdp", "mesi", "dragon"]
            .iter()
            .map(|k| by_scheme.get(k).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(cell0.get("sim_cycles").and_then(Json::as_u64), Some(sum));
        // The whole document survives a print→parse round trip.
        let parsed = ccdp_json::parse(&j.to_pretty()).unwrap();
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(10));
        // Omitting timing omits the section (ablation callers).
        let j2 = report_json(Scale::Quick, 9, &pes, &schemes, &kernels[..2], &grid, None);
        assert!(j2.get("perf").is_none());
    }

    #[test]
    fn failed_cells_carry_failure_and_placeholder_tables() {
        use crate::resilience::{CellFailure, CellOutcome};
        let fail = CellOutcome::Fail(CellFailure::BudgetExceeded {
            pe: 1,
            cycles: 1000,
            steps: 500,
        });
        let cj = cell_json(&fail);
        assert_eq!(cj.get("outcome").and_then(Json::as_str), Some("budget_exceeded"));
        let failure = cj.get("failure").expect("failure object");
        assert!(failure.get("message").and_then(Json::as_str).unwrap().contains("budget"));
        assert_eq!(failure.get("cycles").and_then(Json::as_u64), Some(1000));
        // A grid with only this cell still renders tables, with -- cells.
        let schemes = crate::GRID_SCHEMES;
        let j = report_json_cells(Scale::Quick, 0, &[4], &schemes, &["MXM"], &[vec![cj]], None);
        let t1 = j.get("tables").unwrap().get("speedup").and_then(Json::as_str).unwrap();
        assert!(t1.contains("--"));
        // The parse→re-emit round trip is byte-stable (the resume path
        // depends on this for journaled cells).
        let text = j.to_pretty();
        let reparsed = ccdp_json::parse(&text).unwrap();
        assert_eq!(reparsed.to_pretty(), text);
    }
}
