//! Machine-readable benchmark report: assembles the full evaluation grid —
//! the paper's Tables 1 and 2 plus per-PE / per-epoch cycle breakdowns and
//! prefetch quality metrics — into one JSON document (`BENCH_ccdp.json`,
//! written by the `report` bin).

use ccdp_core::{format_improvement_table, format_speedup_table, Comparison, ComparisonRow};
use ccdp_json::{Json, ToJson};

use crate::{BenchKernel, GridTiming, Scale};

/// Schema version of the report document; bump on breaking shape changes.
/// v2: per-PE stats gained a `faults` object, the document records the
/// fault-decision `seed`, and the `stress` bin merges a degradation-curve
/// `stress` section into the same file.
/// v3: a `perf` section records host-side throughput of the grid run —
/// wall-clock and simulated-cycles-per-second, overall and per cell —
/// consumed by the CI performance-regression gate (`perf_gate` bin).
pub const SCHEMA_VERSION: u32 = 3;

/// The `perf` section: host throughput of one grid run. Wall-clock numbers
/// are host observations (they vary run to run); everything else in the
/// document is deterministic.
pub fn perf_json(kernels: &[BenchKernel], pes: &[usize], t: &GridTiming) -> Json {
    let rate = |cycles: u64, secs: f64| {
        if secs > 0.0 { cycles as f64 / secs } else { 0.0 }
    };
    let seq = Json::arr(kernels.iter().zip(&t.seq).map(|(k, c)| {
        Json::obj([
            ("kernel", k.name.to_json()),
            ("wall_seconds", c.wall_seconds.to_json()),
            ("sim_cycles", c.sim_cycles.to_json()),
            ("cycles_per_second", rate(c.sim_cycles, c.wall_seconds).to_json()),
        ])
    }));
    let cells = Json::arr(kernels.iter().zip(&t.cells).flat_map(|(k, row)| {
        pes.iter().zip(row).map(|(&n, c)| {
            Json::obj([
                ("kernel", k.name.to_json()),
                ("n_pes", n.to_json()),
                ("wall_seconds", c.wall_seconds.to_json()),
                ("sim_cycles", c.sim_cycles.to_json()),
                ("cycles_per_second", rate(c.sim_cycles, c.wall_seconds).to_json()),
            ])
        })
    }));
    Json::obj([
        ("wall_seconds", t.wall_seconds.to_json()),
        ("sim_cycles", t.sim_cycles().to_json()),
        ("cycles_per_second", t.cycles_per_second().to_json()),
        ("threads", t.threads.to_json()),
        ("seq", seq),
        ("cells", cells),
    ])
}

/// Assemble the report document for a completed grid run. `grid` is indexed
/// `[kernel][pe_count]`, as produced by [`crate::run_grid`]. `seed` is the
/// fault-decision seed the run was invoked with (recorded for
/// reproducibility even when the grid itself runs fault-free).
pub fn report_json(
    scale: Scale,
    seed: u64,
    pes: &[usize],
    kernels: &[BenchKernel],
    grid: &[Vec<Comparison>],
    timing: Option<&GridTiming>,
) -> Json {
    assert_eq!(kernels.len(), grid.len(), "one comparison row per kernel");
    let rows: Vec<ComparisonRow<'_>> = kernels
        .iter()
        .zip(grid.iter())
        .map(|(k, comps)| ComparisonRow { kernel: k.name, comparisons: comps })
        .collect();
    let kernels_json = Json::arr(kernels.iter().zip(grid.iter()).map(|(k, comps)| {
        Json::obj([
            ("name", k.name.to_json()),
            ("cells", comps.to_json()),
        ])
    }));
    let mut fields = vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        (
            "paper",
            "A Compiler-Directed Cache Coherence Scheme Using Data Prefetching".to_json(),
        ),
        ("scale", scale.name().to_json()),
        ("seed", seed.to_json()),
        ("pe_counts", pes.to_json()),
        ("kernels", kernels_json),
        (
            "tables",
            Json::obj([
                ("speedup", format_speedup_table(&rows).to_json()),
                ("improvement", format_improvement_table(&rows).to_json()),
            ]),
        ),
    ];
    if let Some(t) = timing {
        fields.push(("perf", perf_json(kernels, pes, t)));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{paper_kernels, run_grid_timed};

    #[test]
    fn report_document_shape() {
        let kernels = paper_kernels(Scale::Quick);
        let pes = [2usize];
        let (grid, timing) = run_grid_timed(&kernels[..2], &pes).expect("coherent grid");
        let j = report_json(Scale::Quick, 9, &pes, &kernels[..2], &grid, Some(&timing));
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("scale").and_then(Json::as_str), Some("quick"));
        assert_eq!(j.get("seed").and_then(Json::as_u64), Some(9));
        let ks = j.get("kernels").unwrap().items();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].get("name").and_then(Json::as_str), Some("MXM"));
        let cell = &ks[0].get("cells").unwrap().items()[0];
        assert!(cell.get("ccdp").unwrap().get("epochs").unwrap().items().len() >= 2);
        let tables = j.get("tables").unwrap();
        assert!(tables.get("speedup").and_then(Json::as_str).unwrap().contains("Table 1"));
        assert!(tables
            .get("improvement")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Table 2"));
        // Per-PE fault accounting is present (and zero) in fault-free cells.
        let totals = cell.get("ccdp").unwrap().get("totals").unwrap();
        let faults = totals.get("faults").expect("faults object in totals");
        assert_eq!(faults.get("prefetches_dropped").and_then(Json::as_u64), Some(0));
        assert_eq!(faults.get("demand_fallbacks").and_then(Json::as_u64), Some(0));
        // The perf section reflects the timed run: one seq entry per
        // kernel, one cell entry per (kernel, pe) pair, positive wall time.
        let perf = j.get("perf").expect("perf section");
        assert_eq!(perf.get("seq").unwrap().items().len(), 2);
        assert_eq!(perf.get("cells").unwrap().items().len(), 2);
        assert!(perf.get("wall_seconds").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(perf.get("sim_cycles").and_then(Json::as_u64).unwrap() > 0);
        assert!(perf.get("threads").and_then(Json::as_u64).unwrap() >= 1);
        let cell0 = &perf.get("cells").unwrap().items()[0];
        assert_eq!(cell0.get("kernel").and_then(Json::as_str), Some("MXM"));
        assert_eq!(cell0.get("n_pes").and_then(Json::as_u64), Some(2));
        // The whole document survives a print→parse round trip.
        let parsed = ccdp_json::parse(&j.to_pretty()).unwrap();
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(3));
        // Omitting timing omits the section (ablation callers).
        let j2 = report_json(Scale::Quick, 9, &pes, &kernels[..2], &grid, None);
        assert!(j2.get("perf").is_none());
    }
}
