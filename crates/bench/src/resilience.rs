//! Cell isolation for grid runs: budgets, panic containment, watchdogs,
//! and classified per-cell outcomes.
//!
//! [`crate::run_grid`] fails the whole grid on the first error — fine for
//! tests, wrong for a long experiment sweep where one pathological cell
//! (a runaway synthesized program, a panic in a fresh code path, a host
//! hiccup) should not discard hours of completed work. This module runs
//! each (kernel × PE count) cell under [`std::panic::catch_unwind`] with a
//! cooperative wall-clock watchdog and per-run cycle/step budgets
//! ([`t3d_sim::SimOptions`]), classifies every failure into a
//! [`CellFailure`], retries once (same seed, same config) when the failure
//! could be a host flake rather than a deterministic property of the cell,
//! and reports a full grid of [`CellOutcome`]s instead of aborting.
//!
//! The `on_cell` callback fires as each cell completes — the journal layer
//! ([`crate::journal`]) uses it to checkpoint finished cells so an
//! interrupted run can resume without re-simulating them.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ccdp_core::{
    compare_with_seq, run_seq, EnvOverrides, PipelineConfig, PipelineError, Scheme, SchemeMatrix,
};
use t3d_sim::{FaultPlan, SimResult};

use crate::{cell_config, pooled, BenchKernel, CellTiming, GridTiming};

/// Budgets and watchdogs applied to every cell of an isolated grid run.
/// All default to off: an unbudgeted isolated run still contains panics,
/// it just never aborts a runaway simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct GridOptions {
    /// Per-run simulated-cycle budget (any PE crossing it aborts the run).
    pub cycle_budget: Option<u64>,
    /// Per-run interpreter step budget.
    pub step_budget: Option<u64>,
    /// Per-cell wall-clock watchdog. Cooperative: the simulator checks the
    /// deadline every few thousand steps, so enforcement lags by
    /// microseconds, not minutes.
    pub cell_timeout: Option<Duration>,
    /// Fault plan injected into every cell (`None` = fault-free).
    pub faults: Option<FaultPlan>,
}

/// Why a cell failed, as a deterministic, cloneable classification. The
/// grid keeps going; the failure lands in the JSON report.
#[derive(Clone, Debug, PartialEq)]
pub enum CellFailure {
    /// The pipeline panicked. `retried` means the same seed/config was
    /// attempted twice and panicked both times — a deterministic bug, not
    /// a host flake.
    Panicked { message: String, retried: bool },
    /// The cooperative wall-clock watchdog fired.
    TimedOut { pe: usize, steps: u64, retried: bool },
    /// The cycle/step budget was exhausted — deterministic, never retried.
    BudgetExceeded { pe: usize, cycles: u64, steps: u64 },
    /// The program or machine configuration was rejected up front —
    /// deterministic, never retried.
    Invalid { message: String },
    /// Any other pipeline failure (e.g. a coherence violation) —
    /// deterministic, never retried.
    Failed { message: String },
}

impl CellFailure {
    /// Short machine-readable class name (the `outcome` field in reports).
    pub fn class(&self) -> &'static str {
        match self {
            CellFailure::Panicked { .. } => "panicked",
            CellFailure::TimedOut { .. } => "timed_out",
            CellFailure::BudgetExceeded { .. } => "budget_exceeded",
            CellFailure::Invalid { .. } => "invalid",
            CellFailure::Failed { .. } => "failed",
        }
    }

    /// Panics and timeouts may be host flakes; everything else is a
    /// deterministic property of the cell and retrying would just repeat it.
    fn retryable(&self) -> bool {
        matches!(self, CellFailure::Panicked { .. } | CellFailure::TimedOut { .. })
    }

    fn mark_retried(&mut self) {
        match self {
            CellFailure::Panicked { retried, .. } | CellFailure::TimedOut { retried, .. } => {
                *retried = true
            }
            _ => {}
        }
    }
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellFailure::Panicked { message, retried } => {
                write!(f, "panicked{}: {message}", if *retried { " (twice)" } else { "" })
            }
            CellFailure::TimedOut { pe, steps, retried } => write!(
                f,
                "timed out{} on PE {pe} after {steps} steps",
                if *retried { " (twice)" } else { "" }
            ),
            CellFailure::BudgetExceeded { pe, cycles, steps } => {
                write!(f, "budget exceeded on PE {pe}: {cycles} cycles after {steps} steps")
            }
            CellFailure::Invalid { message } => write!(f, "invalid input: {message}"),
            CellFailure::Failed { message } => write!(f, "failed: {message}"),
        }
    }
}

/// Outcome of one isolated (kernel × PE count) cell.
#[derive(Clone)]
pub enum CellOutcome {
    Ok(Box<SchemeMatrix>),
    Fail(CellFailure),
}

impl CellOutcome {
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }

    /// The `outcome` class string: `"ok"` or the failure class.
    pub fn class(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Fail(f) => f.class(),
        }
    }
}

/// One completed cell, as handed to the `on_cell` checkpoint callback.
pub struct IsolatedCell {
    pub kernel: &'static str,
    pub n_pes: usize,
    pub outcome: CellOutcome,
    pub timing: CellTiming,
}

/// Result of [`run_grid_isolated`].
pub struct IsolatedGrid {
    /// `outcomes[kernel][pe]`; `None` where the cell was not in `todo`
    /// (already journaled by a previous run).
    pub outcomes: Vec<Vec<Option<CellOutcome>>>,
    /// Host-side timing for the `perf` section. `Some` only when `todo`
    /// covered the whole grid and every run (sequential denominators
    /// included) succeeded — partial or failing runs produce no comparable
    /// throughput baseline.
    pub timing: Option<GridTiming>,
}

fn apply_budgets(cfg: &mut PipelineConfig, opts: &GridOptions, deadline: Option<Instant>) {
    cfg.sim.cycle_budget = opts.cycle_budget;
    cfg.sim.step_budget = opts.step_budget;
    cfg.sim.wall_deadline = deadline;
    if let Some(f) = opts.faults {
        cfg.sim.faults = f;
    }
}

/// Classify a pipeline error into its cell-failure class.
pub fn classify_pipeline(e: PipelineError) -> CellFailure {
    match e {
        PipelineError::BudgetExceeded { pe, cycles, steps } => {
            CellFailure::BudgetExceeded { pe, cycles, steps }
        }
        PipelineError::Timeout { pe, steps } => {
            CellFailure::TimedOut { pe, steps, retried: false }
        }
        PipelineError::InvalidConfig(_) | PipelineError::InvalidProgram(_) => {
            CellFailure::Invalid { message: e.to_string() }
        }
        other => CellFailure::Failed { message: other.to_string() },
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `job` with panic containment and retry-once, classifying its error
/// type through `to_failure`. The job receives the wall deadline to thread
/// into `SimOptions`; a fresh deadline is computed per attempt so a retry
/// gets the full timeout again. Used directly by the stress sweep (whose
/// error type is not [`PipelineError`]).
pub fn isolate<T, E>(
    timeout: Option<Duration>,
    to_failure: impl Fn(E) -> CellFailure,
    job: impl Fn(Option<Instant>) -> Result<T, E>,
) -> Result<T, CellFailure> {
    let attempt = || -> Result<T, CellFailure> {
        let deadline = timeout.map(|t| Instant::now() + t);
        match catch_unwind(AssertUnwindSafe(|| job(deadline))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(to_failure(e)),
            Err(p) => Err(CellFailure::Panicked { message: panic_message(p), retried: false }),
        }
    };
    match attempt() {
        Ok(v) => Ok(v),
        Err(first) if first.retryable() => match attempt() {
            Ok(v) => {
                eprintln!("note: cell recovered on retry after transient failure ({first})");
                Ok(v)
            }
            Err(mut second) => {
                second.mark_retried();
                Err(second)
            }
        },
        Err(first) => Err(first),
    }
}

/// [`isolate`] specialized to pipeline jobs (the grid path).
fn guarded<T>(
    timeout: Option<Duration>,
    job: impl Fn(Option<Instant>) -> Result<T, PipelineError>,
) -> Result<T, CellFailure> {
    isolate(timeout, classify_pipeline, job)
}

/// Run the requested cells of the grid with full isolation: every
/// sequential denominator and every scheme cell is contained, budgeted,
/// classified, and checkpointed through `on_cell` the moment it finishes.
///
/// `todo` lists `(kernel index, pe index)` cells to simulate; cells not
/// listed stay `None` in the result (the caller already has them from a
/// journal). A kernel whose sequential denominator fails poisons all of
/// that kernel's requested cells with the same (cloned) failure — there is
/// no speedup to compute without the denominator.
pub fn run_grid_isolated(
    kernels: &[BenchKernel],
    pes: &[usize],
    schemes: &[Scheme],
    todo: &[(usize, usize)],
    opts: &GridOptions,
    on_cell: impl Fn(&IsolatedCell) + Sync,
) -> IsolatedGrid {
    let t0 = Instant::now();
    let mut outcomes: Vec<Vec<Option<CellOutcome>>> =
        kernels.iter().map(|_| vec![None; pes.len()]).collect();
    if todo.is_empty() {
        return IsolatedGrid { outcomes, timing: None };
    }
    for &(ki, pi) in todo {
        assert!(ki < kernels.len() && pi < pes.len(), "todo cell out of grid bounds");
    }
    let threads =
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(todo.len());

    // Stage 1: sequential denominators, only for kernels with work to do.
    let mut need = vec![false; kernels.len()];
    for &(ki, _) in todo {
        need[ki] = true;
    }
    let kis: Vec<usize> = (0..kernels.len()).filter(|&ki| need[ki]).collect();
    let seq_runs = pooled(kis.len(), threads, |i| {
        let k = &kernels[kis[i]];
        let t = Instant::now();
        let r = guarded(opts.cell_timeout, |deadline| {
            let mut cfg = cell_config(k, pes[0]);
            apply_budgets(&mut cfg, opts, deadline);
            run_seq(&k.program, &cfg)
        });
        (r, t.elapsed().as_secs_f64())
    });
    let mut seqs: Vec<Option<(Result<SimResult, CellFailure>, f64)>> =
        (0..kernels.len()).map(|_| None).collect();
    for (i, (r, secs)) in seq_runs.into_iter().enumerate() {
        seqs[kis[i]] = Some((r, secs));
    }

    // Stage 2: the requested cells, each isolated and checkpointed.
    let cells = pooled(todo.len(), threads, |i| {
        let (ki, pi) = todo[i];
        let k = &kernels[ki];
        let t = Instant::now();
        let seq = &seqs[ki].as_ref().expect("stage 1 covered this kernel").0;
        let outcome = match seq {
            Err(f) => CellOutcome::Fail(f.clone()),
            Ok(seq) => {
                match guarded(opts.cell_timeout, |deadline| {
                    let mut cfg = cell_config(k, pes[pi]);
                    apply_budgets(&mut cfg, opts, deadline);
                    compare_with_seq(&k.program, &cfg, seq.clone(), schemes)
                }) {
                    Ok(c) => CellOutcome::Ok(Box::new(c)),
                    Err(f) => CellOutcome::Fail(f),
                }
            }
        };
        let timing = match &outcome {
            CellOutcome::Ok(c) => CellTiming::from_matrix(t.elapsed().as_secs_f64(), c),
            CellOutcome::Fail(_) => {
                CellTiming { wall_seconds: t.elapsed().as_secs_f64(), ..Default::default() }
            }
        };
        let cell = IsolatedCell { kernel: k.name, n_pes: pes[pi], outcome, timing };
        on_cell(&cell);
        cell
    });

    let full_grid = todo.len() == kernels.len() * pes.len();
    let all_ok = cells.iter().all(|c| c.outcome.is_ok())
        && seqs.iter().flatten().all(|(r, _)| r.is_ok());
    let timing = if full_grid && all_ok {
        let seq_timing: Vec<CellTiming> = seqs
            .iter()
            .map(|s| {
                let (r, secs) = s.as_ref().expect("full grid covers every kernel");
                let cycles = r.as_ref().map_or(0, |sr| sr.cycles);
                CellTiming {
                    wall_seconds: *secs,
                    sim_cycles: cycles,
                    scheme_cycles: Vec::new(),
                    shard: Default::default(),
                }
            })
            .collect();
        let mut cell_timing: Vec<Vec<CellTiming>> =
            kernels.iter().map(|_| vec![CellTiming::default(); pes.len()]).collect();
        for (i, c) in cells.iter().enumerate() {
            let (ki, pi) = todo[i];
            cell_timing[ki][pi] = c.timing.clone();
        }
        Some(GridTiming {
            wall_seconds: t0.elapsed().as_secs_f64(),
            threads,
            sim_threads: EnvOverrides::from_env()
                .ok()
                .and_then(|e| e.sim_threads)
                .unwrap_or(1),
            seq: seq_timing,
            cells: cell_timing,
            scaling: Vec::new(),
        })
    } else {
        None
    };
    for (i, c) in cells.into_iter().enumerate() {
        let (ki, pi) = todo[i];
        outcomes[ki][pi] = Some(c.outcome);
    }
    IsolatedGrid { outcomes, timing }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{paper_kernels, Scale};

    #[test]
    fn guarded_classifies_and_retries_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A job that always panics is classified as Panicked{retried: true}.
        let tries = AtomicUsize::new(0);
        let r: Result<(), CellFailure> = guarded(None, |_| {
            tries.fetch_add(1, Ordering::SeqCst);
            panic!("boom {}", 7)
        });
        assert_eq!(tries.load(Ordering::SeqCst), 2, "panic must be retried once");
        match r {
            Err(CellFailure::Panicked { message, retried }) => {
                assert!(message.contains("boom 7"));
                assert!(retried);
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // A job that panics once then succeeds recovers on retry.
        let tries = AtomicUsize::new(0);
        let r: Result<u32, CellFailure> = guarded(None, |_| {
            if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flake");
            }
            Ok(42)
        });
        assert_eq!(r.unwrap(), 42);
    }

    #[test]
    fn guarded_never_retries_deterministic_failures() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let tries = AtomicUsize::new(0);
        let r: Result<(), CellFailure> = guarded(None, |_| {
            tries.fetch_add(1, Ordering::SeqCst);
            Err(PipelineError::BudgetExceeded { pe: 3, cycles: 10, steps: 20 })
        });
        assert_eq!(tries.load(Ordering::SeqCst), 1, "budget failures are deterministic");
        assert_eq!(
            r.unwrap_err(),
            CellFailure::BudgetExceeded { pe: 3, cycles: 10, steps: 20 }
        );
    }

    #[test]
    fn budget_failure_lands_in_grid_not_process() {
        let kernels = paper_kernels(Scale::Quick);
        let opts = GridOptions { cycle_budget: Some(10), ..Default::default() };
        let schemes = [Scheme::Base, Scheme::Ccdp];
        let grid = run_grid_isolated(&kernels[..1], &[2], &schemes, &[(0, 0)], &opts, |_| {});
        let out = grid.outcomes[0][0].as_ref().expect("cell was requested");
        match out {
            CellOutcome::Fail(CellFailure::BudgetExceeded { cycles, .. }) => {
                assert!(*cycles > 10);
            }
            other => panic!("expected BudgetExceeded, got {:?}", other.class()),
        }
        assert!(grid.timing.is_none(), "failed grids have no perf baseline");
    }

    #[test]
    fn clean_full_grid_has_timing_and_ok_cells() {
        let kernels = paper_kernels(Scale::Quick);
        let opts = GridOptions::default();
        let calls = std::sync::Mutex::new(Vec::new());
        let schemes = crate::GRID_SCHEMES;
        let grid =
            run_grid_isolated(&kernels[..1], &[1, 2], &schemes, &[(0, 0), (0, 1)], &opts, |c| {
                calls.lock().unwrap().push((c.kernel, c.n_pes, c.outcome.class()));
            });
        assert!(grid.outcomes[0].iter().all(|o| o.as_ref().unwrap().is_ok()));
        match grid.outcomes[0][0].as_ref().unwrap() {
            CellOutcome::Ok(m) => assert_eq!(m.runs.len(), schemes.len()),
            CellOutcome::Fail(f) => panic!("cell failed: {f}"),
        }
        let t = grid.timing.expect("clean full grid carries timing");
        assert_eq!(t.seq.len(), 1);
        assert_eq!(t.cells[0][0].scheme_cycles.len(), schemes.len());
        assert!(t.sim_cycles() > 0);
        let calls = calls.into_inner().unwrap();
        assert_eq!(calls.len(), 2);
        assert!(calls.iter().all(|(k, _, class)| *k == "MXM" && *class == "ok"));
    }
}
