//! Text reports in the shape of the paper's tables.
//!
//! The formatters come in two layers: [`TableRow`]/[`TableCell`] render
//! plain numbers (so a resumed benchmark run can rebuild the tables from
//! journaled JSON without re-simulating), and the [`ComparisonRow`]
//! wrappers feed live [`Comparison`] results into the same renderer.
//! Failed grid cells render as `--` placeholders.

use crate::pipeline::Comparison;

/// One table row: a kernel name plus its comparisons across PE counts.
pub struct ComparisonRow<'a> {
    pub kernel: &'a str,
    pub comparisons: &'a [Comparison],
}

/// One table cell as plain numbers. `None` metrics mean the cell failed
/// (panicked, timed out, exceeded its budget) and renders as `--`.
#[derive(Clone, Copy, Debug)]
pub struct TableCell {
    pub n_pes: usize,
    pub base_speedup: Option<f64>,
    pub ccdp_speedup: Option<f64>,
    pub improvement_pct: Option<f64>,
}

impl TableCell {
    /// A cell from a live comparison (always fully populated).
    pub fn from_comparison(c: &Comparison) -> TableCell {
        TableCell {
            n_pes: c.n_pes,
            base_speedup: Some(c.base_speedup),
            ccdp_speedup: Some(c.ccdp_speedup),
            improvement_pct: Some(c.improvement_pct),
        }
    }
}

/// One table row of plain-number cells.
pub struct TableRow<'a> {
    pub kernel: &'a str,
    pub cells: &'a [TableCell],
}

fn fmt_metric(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:>8.2}"),
        None => format!("{:>8}", "--"),
    }
}

/// Render Table 1 from plain-number rows: per kernel a BASE and a CCDP
/// column, one row per PE count.
pub fn format_speedup_cells(rows: &[TableRow<'_>]) -> String {
    let mut out = String::new();
    out.push_str("Table 1. Speedups over sequential execution time.\n");
    out.push_str(&format!("{:>6} ", "#PEs"));
    for r in rows {
        out.push_str(&format!("| {:^17} ", r.kernel));
    }
    out.push('\n');
    out.push_str(&format!("{:>6} ", ""));
    for _ in rows {
        out.push_str(&format!("| {:>8} {:>8} ", "BASE", "CCDP"));
    }
    out.push('\n');
    let n = rows.first().map_or(0, |r| r.cells.len());
    for i in 0..n {
        out.push_str(&format!("{:>6} ", rows[0].cells[i].n_pes));
        for r in rows {
            let c = &r.cells[i];
            out.push_str(&format!(
                "| {} {} ",
                fmt_metric(c.base_speedup),
                fmt_metric(c.ccdp_speedup)
            ));
        }
        out.push('\n');
    }
    out
}

/// Render Table 2 from plain-number rows: one percentage per kernel per PE
/// count.
pub fn format_improvement_cells(rows: &[TableRow<'_>]) -> String {
    let mut out = String::new();
    out.push_str("Table 2. Improvement in execution time of CCDP over BASE.\n");
    out.push_str(&format!("{:>6} ", "#PEs"));
    for r in rows {
        out.push_str(&format!("| {:>9} ", r.kernel));
    }
    out.push('\n');
    let n = rows.first().map_or(0, |r| r.cells.len());
    for i in 0..n {
        out.push_str(&format!("{:>6} ", rows[0].cells[i].n_pes));
        for r in rows {
            out.push_str(&format!("| {}% ", fmt_metric(r.cells[i].improvement_pct)));
        }
        out.push('\n');
    }
    out
}

fn to_cells(rows: &[ComparisonRow<'_>]) -> Vec<(usize, Vec<TableCell>)> {
    rows.iter()
        .enumerate()
        .map(|(i, r)| (i, r.comparisons.iter().map(TableCell::from_comparison).collect()))
        .collect()
}

/// Render Table 1: "Speedups over sequential execution time" — per kernel a
/// BASE and a CCDP column, one row per PE count.
pub fn format_speedup_table(rows: &[ComparisonRow<'_>]) -> String {
    let cells = to_cells(rows);
    let trows: Vec<TableRow<'_>> = cells
        .iter()
        .map(|(i, c)| TableRow { kernel: rows[*i].kernel, cells: c })
        .collect();
    format_speedup_cells(&trows)
}

/// Render Table 2: "Improvement in execution time of CCDP codes over BASE
/// codes" — one percentage per kernel per PE count.
pub fn format_improvement_table(rows: &[ComparisonRow<'_>]) -> String {
    let cells = to_cells(rows);
    let trows: Vec<TableRow<'_>> = cells
        .iter()
        .map(|(i, c)| TableRow { kernel: rows[*i].kernel, cells: c })
        .collect();
    format_improvement_cells(&trows)
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::pipeline::{compare, PipelineConfig};
    use ccdp_ir::ProgramBuilder;

    fn tiny() -> ccdp_ir::Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(b.at1(i), a.at1(63 - i).rd());
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn tables_render() {
        let p = tiny();
        let comps: Vec<_> = [1, 2, 4]
            .iter()
            .map(|&n| compare(&p, &PipelineConfig::t3d(n)).expect("coherent"))
            .collect();
        let rows = [ComparisonRow { kernel: "TINY", comparisons: &comps }];
        let t1 = format_speedup_table(&rows);
        assert!(t1.contains("TINY") && t1.contains("BASE") && t1.contains("CCDP"));
        assert_eq!(t1.lines().count(), 2 + 1 + 3);
        let t2 = format_improvement_table(&rows);
        assert!(t2.contains('%'));
        assert_eq!(t2.lines().count(), 1 + 1 + 3);
    }

    #[test]
    fn failed_cells_render_as_placeholders() {
        let cells = [
            TableCell {
                n_pes: 2,
                base_speedup: Some(1.5),
                ccdp_speedup: Some(2.0),
                improvement_pct: Some(25.0),
            },
            TableCell {
                n_pes: 4,
                base_speedup: None,
                ccdp_speedup: None,
                improvement_pct: None,
            },
        ];
        let rows = [TableRow { kernel: "TINY", cells: &cells }];
        let t1 = format_speedup_cells(&rows);
        assert!(t1.contains("--"), "failed cell must render as --");
        assert!(t1.contains("2.00"));
        let t2 = format_improvement_cells(&rows);
        assert!(t2.contains("--%"));
    }

    #[test]
    fn cell_rows_match_comparison_rows_byte_for_byte() {
        let p = tiny();
        let comps: Vec<_> = [1, 2]
            .iter()
            .map(|&n| compare(&p, &PipelineConfig::t3d(n)).expect("coherent"))
            .collect();
        let rows = [ComparisonRow { kernel: "TINY", comparisons: &comps }];
        let cells: Vec<TableCell> = comps.iter().map(TableCell::from_comparison).collect();
        let trows = [TableRow { kernel: "TINY", cells: &cells }];
        assert_eq!(format_speedup_table(&rows), format_speedup_cells(&trows));
        assert_eq!(format_improvement_table(&rows), format_improvement_cells(&trows));
    }
}
