//! Text reports in the shape of the paper's tables.

use crate::pipeline::Comparison;

/// One table row: a kernel name plus its comparisons across PE counts.
pub struct ComparisonRow<'a> {
    pub kernel: &'a str,
    pub comparisons: &'a [Comparison],
}

/// Render Table 1: "Speedups over sequential execution time" — per kernel a
/// BASE and a CCDP column, one row per PE count.
pub fn format_speedup_table(rows: &[ComparisonRow<'_>]) -> String {
    let mut out = String::new();
    out.push_str("Table 1. Speedups over sequential execution time.\n");
    out.push_str(&format!("{:>6} ", "#PEs"));
    for r in rows {
        out.push_str(&format!("| {:^17} ", r.kernel));
    }
    out.push('\n');
    out.push_str(&format!("{:>6} ", ""));
    for _ in rows {
        out.push_str(&format!("| {:>8} {:>8} ", "BASE", "CCDP"));
    }
    out.push('\n');
    let n = rows.first().map_or(0, |r| r.comparisons.len());
    for i in 0..n {
        out.push_str(&format!("{:>6} ", rows[0].comparisons[i].n_pes));
        for r in rows {
            let c = &r.comparisons[i];
            out.push_str(&format!(
                "| {:>8.2} {:>8.2} ",
                c.base_speedup, c.ccdp_speedup
            ));
        }
        out.push('\n');
    }
    out
}

/// Render Table 2: "Improvement in execution time of CCDP codes over BASE
/// codes" — one percentage per kernel per PE count.
pub fn format_improvement_table(rows: &[ComparisonRow<'_>]) -> String {
    let mut out = String::new();
    out.push_str("Table 2. Improvement in execution time of CCDP over BASE.\n");
    out.push_str(&format!("{:>6} ", "#PEs"));
    for r in rows {
        out.push_str(&format!("| {:>9} ", r.kernel));
    }
    out.push('\n');
    let n = rows.first().map_or(0, |r| r.comparisons.len());
    for i in 0..n {
        out.push_str(&format!("{:>6} ", rows[0].comparisons[i].n_pes));
        for r in rows {
            let c = &r.comparisons[i];
            out.push_str(&format!("| {:>8.2}% ", c.improvement_pct));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::pipeline::{compare, PipelineConfig};
    use ccdp_ir::ProgramBuilder;

    fn tiny() -> ccdp_ir::Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(b.at1(i), a.at1(63 - i).rd());
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn tables_render() {
        let p = tiny();
        let comps: Vec<_> = [1, 2, 4]
            .iter()
            .map(|&n| compare(&p, &PipelineConfig::t3d(n)).expect("coherent"))
            .collect();
        let rows = [ComparisonRow { kernel: "TINY", comparisons: &comps }];
        let t1 = format_speedup_table(&rows);
        assert!(t1.contains("TINY") && t1.contains("BASE") && t1.contains("CCDP"));
        assert_eq!(t1.lines().count(), 2 + 1 + 3);
        let t2 = format_improvement_table(&rows);
        assert!(t2.contains('%'));
        assert_eq!(t2.lines().count(), 1 + 1 + 3);
    }
}
