//! Text reports in the shape of the paper's tables, generalized to N
//! coherence schemes.
//!
//! The formatters come in two layers: [`TableRow`]/[`TableCell`] render
//! plain numbers (so a resumed benchmark run can rebuild the tables from
//! journaled JSON without re-simulating), and the [`MatrixRow`] wrappers
//! feed live [`SchemeMatrix`] results into the same renderer. Failed grid
//! cells render as `--` placeholders. Each kernel gets one speedup column
//! per scheme (the seed's BASE/CCDP pair is the `&[Scheme::Base,
//! Scheme::Ccdp]` special case).

use crate::pipeline::{Scheme, SchemeMatrix};

/// One table row: a kernel name plus its matrices across PE counts.
pub struct MatrixRow<'a> {
    pub kernel: &'a str,
    pub matrices: &'a [SchemeMatrix],
}

/// One table cell as plain numbers: per-scheme speedups in display order.
/// `None` metrics mean the cell failed (panicked, timed out, exceeded its
/// budget) and render as `--`.
#[derive(Clone, Debug)]
pub struct TableCell {
    pub n_pes: usize,
    /// `(scheme name, speedup)` pairs, one per scheme column.
    pub speedups: Vec<(&'static str, Option<f64>)>,
    /// Table 2 number: improvement of CCDP over BASE.
    pub improvement_pct: Option<f64>,
}

impl TableCell {
    /// A cell from a live matrix (always fully populated).
    pub fn from_matrix(m: &SchemeMatrix) -> TableCell {
        TableCell {
            n_pes: m.n_pes,
            speedups: m
                .runs
                .iter()
                .map(|r| (r.scheme.name(), m.speedup(r.scheme)))
                .collect(),
            improvement_pct: m.improvement_pct(),
        }
    }

    /// A failed cell: every metric renders as `--`, with the scheme columns
    /// the run would have produced.
    pub fn failed(n_pes: usize, schemes: &[Scheme]) -> TableCell {
        TableCell {
            n_pes,
            speedups: schemes.iter().map(|s| (s.name(), None)).collect(),
            improvement_pct: None,
        }
    }
}

/// One table row of plain-number cells.
pub struct TableRow<'a> {
    pub kernel: &'a str,
    pub cells: &'a [TableCell],
}

fn fmt_metric(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:>8.2}"),
        None => format!("{:>8}", "--"),
    }
}

/// Render Table 1 from plain-number rows: per kernel one speedup column per
/// scheme, one row per PE count.
pub fn format_speedup_cells(rows: &[TableRow<'_>]) -> String {
    let mut out = String::new();
    out.push_str("Table 1. Speedups over sequential execution time.\n");
    out.push_str(&format!("{:>6} ", "#PEs"));
    for r in rows {
        let n = r.cells.first().map_or(0, |c| c.speedups.len());
        let width = (9 * n.max(1)) - 1;
        out.push_str(&format!("| {:^width$} ", r.kernel));
    }
    out.push('\n');
    out.push_str(&format!("{:>6} ", ""));
    for r in rows {
        out.push_str("| ");
        for (name, _) in r.cells.first().map_or(&[][..], |c| c.speedups.as_slice()) {
            out.push_str(&format!("{name:>8} "));
        }
    }
    out.push('\n');
    let n = rows.first().map_or(0, |r| r.cells.len());
    for i in 0..n {
        out.push_str(&format!("{:>6} ", rows[0].cells[i].n_pes));
        for r in rows {
            out.push_str("| ");
            for (_, v) in &r.cells[i].speedups {
                out.push_str(&fmt_metric(*v));
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

/// Render Table 2 from plain-number rows: one CCDP-over-BASE percentage per
/// kernel per PE count.
pub fn format_improvement_cells(rows: &[TableRow<'_>]) -> String {
    let mut out = String::new();
    out.push_str("Table 2. Improvement in execution time of CCDP over BASE.\n");
    out.push_str(&format!("{:>6} ", "#PEs"));
    for r in rows {
        out.push_str(&format!("| {:>9} ", r.kernel));
    }
    out.push('\n');
    let n = rows.first().map_or(0, |r| r.cells.len());
    for i in 0..n {
        out.push_str(&format!("{:>6} ", rows[0].cells[i].n_pes));
        for r in rows {
            out.push_str(&format!("| {}% ", fmt_metric(r.cells[i].improvement_pct)));
        }
        out.push('\n');
    }
    out
}

fn to_cells(rows: &[MatrixRow<'_>]) -> Vec<(usize, Vec<TableCell>)> {
    rows.iter()
        .enumerate()
        .map(|(i, r)| (i, r.matrices.iter().map(TableCell::from_matrix).collect()))
        .collect()
}

/// Render Table 1: "Speedups over sequential execution time" — per kernel
/// one column per scheme, one row per PE count.
pub fn format_speedup_table(rows: &[MatrixRow<'_>]) -> String {
    let cells = to_cells(rows);
    let trows: Vec<TableRow<'_>> = cells
        .iter()
        .map(|(i, c)| TableRow { kernel: rows[*i].kernel, cells: c })
        .collect();
    format_speedup_cells(&trows)
}

/// Render Table 2: "Improvement in execution time of CCDP codes over BASE
/// codes" — one percentage per kernel per PE count.
pub fn format_improvement_table(rows: &[MatrixRow<'_>]) -> String {
    let cells = to_cells(rows);
    let trows: Vec<TableRow<'_>> = cells
        .iter()
        .map(|(i, c)| TableRow { kernel: rows[*i].kernel, cells: c })
        .collect();
    format_improvement_cells(&trows)
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::pipeline::{compare, PipelineConfig};
    use ccdp_ir::ProgramBuilder;

    fn tiny() -> ccdp_ir::Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(b.at1(i), a.at1(63 - i).rd());
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn tables_render_n_way() {
        let p = tiny();
        let schemes =
            [Scheme::Base, Scheme::Ccdp, Scheme::Mesi, Scheme::Dragon];
        let mats: Vec<_> = [1, 2, 4]
            .iter()
            .map(|&n| compare(&p, &PipelineConfig::t3d(n), &schemes).expect("coherent"))
            .collect();
        let rows = [MatrixRow { kernel: "TINY", matrices: &mats }];
        let t1 = format_speedup_table(&rows);
        for name in ["TINY", "BASE", "CCDP", "MESI", "DRAGON"] {
            assert!(t1.contains(name), "missing {name} in:\n{t1}");
        }
        assert_eq!(t1.lines().count(), 2 + 1 + 3);
        let t2 = format_improvement_table(&rows);
        assert!(t2.contains('%'));
        assert_eq!(t2.lines().count(), 1 + 1 + 3);
    }

    #[test]
    fn failed_cells_render_as_placeholders() {
        let cells = [
            TableCell {
                n_pes: 2,
                speedups: vec![("BASE", Some(1.5)), ("CCDP", Some(2.0))],
                improvement_pct: Some(25.0),
            },
            TableCell::failed(4, &[Scheme::Base, Scheme::Ccdp]),
        ];
        let rows = [TableRow { kernel: "TINY", cells: &cells }];
        let t1 = format_speedup_cells(&rows);
        assert!(t1.contains("--"), "failed cell must render as --");
        assert!(t1.contains("2.00"));
        let t2 = format_improvement_cells(&rows);
        assert!(t2.contains("--%"));
    }

    #[test]
    fn cell_rows_match_matrix_rows_byte_for_byte() {
        let p = tiny();
        let schemes = [Scheme::Base, Scheme::Ccdp];
        let mats: Vec<_> = [1, 2]
            .iter()
            .map(|&n| compare(&p, &PipelineConfig::t3d(n), &schemes).expect("coherent"))
            .collect();
        let rows = [MatrixRow { kernel: "TINY", matrices: &mats }];
        let cells: Vec<TableCell> = mats.iter().map(TableCell::from_matrix).collect();
        let trows = [TableRow { kernel: "TINY", cells: &cells }];
        assert_eq!(format_speedup_table(&rows), format_speedup_cells(&trows));
        assert_eq!(format_improvement_table(&rows), format_improvement_cells(&trows));
    }
}
