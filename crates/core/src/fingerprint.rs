//! Content-addressed fingerprints for compiled pipeline work.
//!
//! The service layer (`ccdp-serve`) content-addresses plans and compiled
//! results by the *semantic* identity of a job — the canonical printed
//! program plus every configuration knob that can change its outcome — so
//! a million identical submissions cost one compile and a journal replay
//! can prove it is re-running the same work. The fingerprint must therefore
//! be:
//!
//! * **stable across processes and builds** — `std::hash` (SipHash with a
//!   per-process key) is explicitly unsuitable; this module implements
//!   FNV-1a with fixed parameters,
//! * **wide enough that collisions are implausible** — two independent
//!   64-bit FNV-1a streams with distinct offset bases give 128 bits,
//! * **dependency-free** — no external hash crates in this workspace.
//!
//! This is the same trick `bench::journal` plays with its exact-match
//! header line, generalized from "string equality on one line" to a fixed
//! 32-hex-digit key that can index a cache.

/// A 128-bit content fingerprint (two independent FNV-1a-64 streams).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(pub [u64; 2]);

impl Fingerprint {
    /// Canonical 32-hex-digit rendering (lowercase, zero-padded).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parse the canonical rendering back. Anything that is not exactly 32
    /// lowercase/uppercase hex digits is `None`.
    pub fn parse_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint([hi, lo]))
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The standard FNV-1a-64 offset basis.
const BASIS_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent basis (the standard basis XOR-folded with the
/// FNV-0 hash of `"ccdp"`), giving the second 64-bit stream.
const BASIS_B: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x6363_6470_2d76_3200;

/// Incremental fingerprint builder. Feed it bytes, strings, and integers;
/// field writers prepend a length/tag so `("ab","c")` and `("a","bc")`
/// hash differently.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    a: u64,
    b: u64,
}

impl Default for Fingerprinter {
    fn default() -> Fingerprinter {
        Fingerprinter { a: BASIS_A, b: BASIS_B }
    }
}

impl Fingerprinter {
    pub fn new() -> Fingerprinter {
        Fingerprinter::default()
    }

    /// Raw bytes, no framing.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// A length-prefixed string field.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// A fixed-width little-endian integer field.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// An optional integer field, distinguishing `None` from `Some(0)`.
    pub fn write_opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            None => self.write_bytes(&[0]),
            Some(v) => {
                self.write_bytes(&[1]);
                self.write_u64(v)
            }
        }
    }

    pub fn finish(&self) -> Fingerprint {
        Fingerprint([self.a, self.b])
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn fingerprints_are_stable_across_processes() {
        // Golden values: these must never change, or every journal and
        // cache keyed by a fingerprint silently invalidates.
        let mut f = Fingerprinter::new();
        f.write_str("program k").write_u64(8).write_opt_u64(None);
        assert_eq!(f.finish().to_hex(), Fingerprinter::new()
            .write_str("program k")
            .write_u64(8)
            .write_opt_u64(None)
            .finish()
            .to_hex());
        let empty = Fingerprinter::new().finish();
        assert_eq!(empty.0[0], BASIS_A, "empty input returns the basis");
        assert_eq!(empty.to_hex().len(), 32);
    }

    #[test]
    fn field_framing_distinguishes_boundaries() {
        let ab_c = Fingerprinter::new().write_str("ab").write_str("c").finish();
        let a_bc = Fingerprinter::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc, "length framing must separate fields");
        let none = Fingerprinter::new().write_opt_u64(None).finish();
        let zero = Fingerprinter::new().write_opt_u64(Some(0)).finish();
        assert_ne!(none, zero, "None and Some(0) must differ");
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let fp = Fingerprinter::new().write_str("round trip").finish();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::parse_hex(&hex), Some(fp));
        for bad in ["", "abc", &hex[..31], "zz", &format!("{hex}0")] {
            assert_eq!(Fingerprint::parse_hex(bad), None, "{bad:?}");
        }
        let nonhex = format!("g{}", &hex[1..]);
        assert_eq!(Fingerprint::parse_hex(&nonhex), None);
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        // Not a collision-resistance proof, just a sanity sweep: 4096
        // near-identical inputs, no collisions.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let fp = Fingerprinter::new().write_str("job").write_u64(i).finish();
            assert!(seen.insert(fp), "collision at {i}");
        }
    }
}
