//! Pipeline orchestration: analyze → plan → simulate → compare.

use ccdp_analysis::{analyze_stale, StaleAnalysis};
use ccdp_dist::Layout;
use ccdp_ir::Program;
use ccdp_prefetch::{
    plan_prefetches, PlanStats, PrefetchPlan, ScheduleOptions, TargetOptions,
};
use t3d_sim::{MachineConfig, Scheme, SimOptions, SimResult, Simulator};

/// Everything needed to compile and run one kernel at one PE count.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    pub n_pes: usize,
    pub machine: MachineConfig,
    pub target: TargetOptions,
    pub schedule: ScheduleOptions,
    pub sim: SimOptions,
    /// Optional custom layout (defaults to block along the last dimension).
    pub layout: Option<Layout>,
}

impl PipelineConfig {
    /// T3D defaults at a given PE count.
    pub fn t3d(n_pes: usize) -> PipelineConfig {
        PipelineConfig {
            n_pes,
            machine: MachineConfig::t3d(n_pes),
            target: TargetOptions::default(),
            schedule: ScheduleOptions::default(),
            sim: SimOptions::default(),
            layout: None,
        }
    }

    /// The layout used for analysis and simulation.
    pub fn layout_for(&self, program: &Program) -> Layout {
        self.layout
            .clone()
            .unwrap_or_else(|| Layout::new(program, self.n_pes))
    }

    /// Same costs, single PE — the sequential reference machine.
    fn seq_machine(&self) -> MachineConfig {
        let mut m = self.machine.clone();
        m.n_pes = 1;
        m
    }
}

/// Output of the CCDP compilation pipeline for one kernel/PE-count.
pub struct CcdpArtifacts {
    pub stale: StaleAnalysis,
    pub transformed: Program,
    pub plan: PrefetchPlan,
}

/// Run the compiler side only: stale reference analysis, prefetch target
/// analysis, prefetch scheduling, materialization.
pub fn compile_ccdp(program: &Program, cfg: &PipelineConfig) -> CcdpArtifacts {
    let layout = cfg.layout_for(program);
    let stale = analyze_stale(program, &layout);
    let (transformed, plan) =
        plan_prefetches(program, &layout, &stale, &cfg.target, &cfg.schedule);
    CcdpArtifacts { stale, transformed, plan }
}

/// Sequential reference run (1 PE, everything cached and local).
pub fn run_seq(program: &Program, cfg: &PipelineConfig) -> SimResult {
    let layout = Layout::new(program, 1);
    Simulator::new(program, layout, cfg.seq_machine(), Scheme::Sequential, cfg.sim).run()
}

/// BASE run: CRAFT-style shared data, uncached.
pub fn run_base(program: &Program, cfg: &PipelineConfig) -> SimResult {
    let layout = cfg.layout_for(program);
    Simulator::new(program, layout, cfg.machine.clone(), Scheme::Base, cfg.sim).run()
}

/// CCDP run: compile, then execute the transformed program.
pub fn run_ccdp(program: &Program, cfg: &PipelineConfig) -> (CcdpArtifacts, SimResult) {
    let art = compile_ccdp(program, cfg);
    let layout = cfg.layout_for(program);
    let r = Simulator::new(
        &art.transformed,
        layout,
        cfg.machine.clone(),
        Scheme::Ccdp { plan: art.plan.clone() },
        cfg.sim,
    )
    .run();
    (art, r)
}

/// Conservative third baseline: caching enabled but every potentially-stale
/// read bypasses the cache (no prefetching). Isolates the latency-hiding
/// contribution of CCDP from the caching contribution.
pub fn run_invalidate_only(program: &Program, cfg: &PipelineConfig) -> SimResult {
    let layout = cfg.layout_for(program);
    let stale = analyze_stale(program, &layout);
    let plan = PrefetchPlan::bypass_all(program, &stale);
    Simulator::new(
        program,
        layout,
        cfg.machine.clone(),
        Scheme::Ccdp { plan },
        cfg.sim,
    )
    .run()
}

/// The paper's headline numbers for one kernel at one PE count.
pub struct Comparison {
    pub n_pes: usize,
    pub seq: SimResult,
    pub base: SimResult,
    pub ccdp: SimResult,
    /// Table 1, BASE column: `seq_cycles / base_cycles`.
    pub base_speedup: f64,
    /// Table 1, CCDP column.
    pub ccdp_speedup: f64,
    /// Table 2: percentage improvement of CCDP over BASE.
    pub improvement_pct: f64,
    pub plan_stats: PlanStats,
    pub stale_reads: usize,
    pub shared_reads: usize,
}

/// Run all three schemes and compute the paper's metrics.
pub fn compare(program: &Program, cfg: &PipelineConfig) -> Comparison {
    let seq = run_seq(program, cfg);
    let base = run_base(program, cfg);
    let (art, ccdp) = run_ccdp(program, cfg);
    assert!(
        ccdp.oracle.is_coherent(),
        "CCDP run violated coherence: {:?}",
        ccdp.oracle.examples
    );
    let base_speedup = seq.cycles as f64 / base.cycles as f64;
    let ccdp_speedup = seq.cycles as f64 / ccdp.cycles as f64;
    let improvement_pct =
        100.0 * (base.cycles as f64 - ccdp.cycles as f64) / base.cycles as f64;
    Comparison {
        n_pes: cfg.n_pes,
        seq,
        base,
        ccdp,
        base_speedup,
        ccdp_speedup,
        improvement_pct,
        plan_stats: art.plan.stats,
        stale_reads: art.stale.n_stale(),
        shared_reads: art.stale.n_shared_reads,
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    fn kernel() -> Program {
        let mut pb = ProgramBuilder::new("k");
        let a = pb.shared("A", &[256]);
        let b = pb.shared("B", &[256]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 255, |e, i| e.assign(a.at1(i), 3.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 255, |e, i| {
                e.assign(b.at1(i), a.at1(255 - i).rd() + 1.0);
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn compare_produces_consistent_metrics() {
        let p = kernel();
        let cmp = compare(&p, &PipelineConfig::t3d(4));
        assert!(cmp.base_speedup > 0.0 && cmp.ccdp_speedup > 0.0);
        let recomputed =
            100.0 * (1.0 - cmp.ccdp.cycles as f64 / cmp.base.cycles as f64);
        assert!((cmp.improvement_pct - recomputed).abs() < 1e-9);
        assert!(cmp.stale_reads > 0);
        assert!(cmp.shared_reads >= cmp.stale_reads);
    }

    #[test]
    fn invalidate_only_sits_between_base_and_ccdp_here() {
        let p = kernel();
        let cfg = PipelineConfig::t3d(4);
        let base = run_base(&p, &cfg);
        let inv = run_invalidate_only(&p, &cfg);
        let (_, ccdp) = run_ccdp(&p, &cfg);
        assert!(inv.oracle.is_coherent());
        // Caching clean data already beats BASE; prefetching beats both.
        assert!(inv.cycles <= base.cycles);
        assert!(ccdp.cycles <= inv.cycles);
    }

    #[test]
    fn compile_artifacts_expose_plan() {
        let p = kernel();
        let art = compile_ccdp(&p, &PipelineConfig::t3d(8));
        assert!(art.stale.n_stale() > 0);
        assert!(art.plan.stats.targets > 0);
        let printed = ccdp_ir::print_program(&art.transformed);
        assert!(printed.contains("prefetch"), "{printed}");
    }
}
