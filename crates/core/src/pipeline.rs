//! Pipeline orchestration: analyze → plan → simulate → compare.

use ccdp_analysis::{analyze_stale, StaleAnalysis};
use ccdp_dist::Layout;
use ccdp_ir::Program;
use ccdp_prefetch::{
    plan_prefetches, PlanStats, PrefetchPlan, ScheduleOptions, TargetOptions,
};
use t3d_sim::{
    ConfigError, FaultPlan, MachineConfig, Scheme, SimAbort, SimOptions, SimResult,
    Simulator, StaleReadExample,
};

/// Why a pipeline run failed. The pipeline no longer panics on a broken
/// plan: callers (bins, harnesses, tests) decide how to surface the error.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// A cached-scheme run consumed data older than main memory. Carries
    /// the oracle's evidence; an intact CCDP pipeline never produces this
    /// (the failure-injection tests manufacture it deliberately).
    CoherenceViolation {
        /// Scheme name of the offending run ("CCDP", "INV", ...).
        scheme: &'static str,
        /// Number of stale reads the oracle observed.
        stale_reads: u64,
        /// First few concrete violations.
        examples: Vec<StaleReadExample>,
    },
    /// The machine configuration or fault plan is internally inconsistent
    /// (caught by `MachineConfig::validate` / `FaultPlan::validate` before
    /// any simulation runs).
    InvalidConfig(ConfigError),
    /// The input program is structurally invalid (caught by
    /// `ccdp_ir::validate` before any simulation runs). Same class of
    /// up-front rejection as `InvalidConfig`, but about the program rather
    /// than the machine.
    InvalidProgram(ccdp_ir::ValidateError),
    /// A simulation exhausted its cycle or step budget
    /// (`SimOptions::cycle_budget` / `step_budget`) — the structured
    /// termination of a runaway program.
    BudgetExceeded { pe: usize, cycles: u64, steps: u64 },
    /// A simulation ran past its cooperative wall-clock deadline
    /// (`SimOptions::wall_deadline`).
    Timeout { pe: usize, steps: u64 },
    /// The static soundness verifier (`ccdp-lint`) proved the compiled plan
    /// does not discharge every coverage obligation. Only produced when
    /// [`PipelineConfig::with_verify`] is on; carries the error-severity
    /// findings. Unlike [`PipelineError::CoherenceViolation`] this fires
    /// *before* any simulation — the static counterpart of the dynamic
    /// oracle.
    Unsound { findings: Vec<ccdp_lint::Finding> },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::CoherenceViolation { scheme, stale_reads, examples } => {
                write!(f, "{scheme} run violated coherence: {stale_reads} stale read(s)")?;
                if let Some(e) = examples.first() {
                    write!(
                        f,
                        "; first: ref {:?} on PE {} read addr {} at version {} (memory at {}) in phase {}",
                        e.reference, e.pe, e.addr, e.cached_version, e.memory_version, e.phase
                    )?;
                }
                Ok(())
            }
            PipelineError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            PipelineError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            PipelineError::BudgetExceeded { pe, cycles, steps } => write!(
                f,
                "simulation budget exceeded on PE {pe}: {cycles} cycles after {steps} steps"
            ),
            PipelineError::Timeout { pe, steps } => write!(
                f,
                "simulation wall-clock deadline passed on PE {pe} after {steps} steps"
            ),
            PipelineError::Unsound { findings } => {
                write!(f, "prefetch plan failed static verification: {} error finding(s)", findings.len())?;
                if let Some(first) = findings.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> PipelineError {
        PipelineError::InvalidConfig(e)
    }
}

impl From<ccdp_ir::ValidateError> for PipelineError {
    fn from(e: ccdp_ir::ValidateError) -> PipelineError {
        PipelineError::InvalidProgram(e)
    }
}

impl From<SimAbort> for PipelineError {
    fn from(a: SimAbort) -> PipelineError {
        match a {
            SimAbort::BudgetExceeded { pe, cycles, steps } => {
                PipelineError::BudgetExceeded { pe, cycles, steps }
            }
            SimAbort::WallTimeout { pe, steps } => PipelineError::Timeout { pe, steps },
        }
    }
}

/// Fail if a cached-scheme run came back incoherent.
fn check_coherent(r: &SimResult) -> Result<(), PipelineError> {
    if r.oracle.is_coherent() {
        Ok(())
    } else {
        Err(PipelineError::CoherenceViolation {
            scheme: r.scheme,
            stale_reads: r.oracle.stale_reads,
            examples: r.oracle.examples.clone(),
        })
    }
}

/// Everything needed to compile and run one kernel at one PE count.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    pub n_pes: usize,
    pub machine: MachineConfig,
    pub target: TargetOptions,
    pub schedule: ScheduleOptions,
    pub sim: SimOptions,
    /// Optional custom layout (defaults to block along the last dimension).
    pub layout: Option<Layout>,
    /// Run the `ccdp-lint` static soundness verifier over every compiled
    /// plan and fail with [`PipelineError::Unsound`] on any error finding.
    pub verify: bool,
}

impl PipelineConfig {
    /// T3D defaults at a given PE count. Refine with the `with_*` builder
    /// methods: `PipelineConfig::t3d(8).with_layout(..).with_sim(..)`.
    pub fn t3d(n_pes: usize) -> PipelineConfig {
        PipelineConfig {
            n_pes,
            machine: MachineConfig::t3d(n_pes),
            target: TargetOptions::default(),
            schedule: ScheduleOptions::default(),
            sim: SimOptions::default(),
            layout: None,
            verify: false,
        }
    }

    /// Replace the machine model (PE count must match `n_pes`).
    pub fn with_machine(mut self, machine: MachineConfig) -> PipelineConfig {
        self.machine = machine;
        self
    }

    /// Use a custom data layout instead of the default block layout.
    pub fn with_layout(mut self, layout: Layout) -> PipelineConfig {
        self.layout = Some(layout);
        self
    }

    /// Replace the prefetch target analysis options.
    pub fn with_target(mut self, target: TargetOptions) -> PipelineConfig {
        self.target = target;
        self
    }

    /// Replace the prefetch scheduling options.
    pub fn with_schedule(mut self, schedule: ScheduleOptions) -> PipelineConfig {
        self.schedule = schedule;
        self
    }

    /// Replace the simulation options.
    pub fn with_sim(mut self, sim: SimOptions) -> PipelineConfig {
        self.sim = sim;
        self
    }

    /// Inject a deterministic fault plan into every simulation this config
    /// drives (see `t3d_sim::FaultPlan`).
    pub fn with_faults(mut self, faults: FaultPlan) -> PipelineConfig {
        self.sim.faults = faults;
        self
    }

    /// Statically verify every compiled plan with `ccdp-lint` before
    /// simulating (see [`PipelineError::Unsound`]).
    pub fn with_verify(mut self, verify: bool) -> PipelineConfig {
        self.verify = verify;
        self
    }

    /// Check the machine model and fault plan before simulating.
    pub fn validate(&self) -> Result<(), PipelineError> {
        self.machine.validate()?;
        self.sim.faults.validate()?;
        Ok(())
    }

    /// The layout used for analysis and simulation.
    pub fn layout_for(&self, program: &Program) -> Layout {
        self.layout
            .clone()
            .unwrap_or_else(|| Layout::new(program, self.n_pes))
    }

    /// Same costs, single PE — the sequential reference machine.
    fn seq_machine(&self) -> MachineConfig {
        let mut m = self.machine.clone();
        m.n_pes = 1;
        m
    }
}

/// Output of the CCDP compilation pipeline for one kernel/PE-count.
pub struct CcdpArtifacts {
    pub stale: StaleAnalysis,
    pub transformed: Program,
    pub plan: PrefetchPlan,
}

/// Run the compiler side only: stale reference analysis, prefetch target
/// analysis, prefetch scheduling, materialization.
pub fn compile_ccdp(program: &Program, cfg: &PipelineConfig) -> CcdpArtifacts {
    let layout = cfg.layout_for(program);
    let stale = analyze_stale(program, &layout);
    let (transformed, plan) =
        plan_prefetches(program, &layout, &stale, &cfg.target, &cfg.schedule);
    CcdpArtifacts { stale, transformed, plan }
}

/// Up-front rejection shared by every entry point: machine model, fault
/// plan, and program structure are all checked before any simulation runs,
/// so malformed inputs surface as `InvalidConfig` / `InvalidProgram` rather
/// than as a simulator panic.
fn check_inputs(program: &Program, cfg: &PipelineConfig) -> Result<(), PipelineError> {
    cfg.validate()?;
    ccdp_ir::validate(program)?;
    Ok(())
}

/// Sequential reference run (1 PE, everything cached and local).
pub fn run_seq(program: &Program, cfg: &PipelineConfig) -> Result<SimResult, PipelineError> {
    check_inputs(program, cfg)?;
    let layout = Layout::new(program, 1);
    Simulator::new(program, layout, cfg.seq_machine(), Scheme::Sequential, cfg.sim)
        .try_run()
        .map_err(PipelineError::from)
}

/// BASE run: CRAFT-style shared data, uncached.
pub fn run_base(program: &Program, cfg: &PipelineConfig) -> Result<SimResult, PipelineError> {
    check_inputs(program, cfg)?;
    let layout = cfg.layout_for(program);
    Simulator::new(program, layout, cfg.machine.clone(), Scheme::Base, cfg.sim)
        .try_run()
        .map_err(PipelineError::from)
}

/// CCDP run: compile, then execute the transformed program. Fails with
/// [`PipelineError::CoherenceViolation`] when the generated plan let a PE
/// consume stale data (a compiler bug by the paper's correctness argument).
pub fn run_ccdp(
    program: &Program,
    cfg: &PipelineConfig,
) -> Result<(CcdpArtifacts, SimResult), PipelineError> {
    check_inputs(program, cfg)?;
    let art = compile_ccdp(program, cfg);
    let layout = cfg.layout_for(program);
    if cfg.verify {
        let opt = ccdp_lint::LintOptions::from_schedule(&cfg.schedule);
        let report = ccdp_lint::verify(&art.transformed, &art.plan, &layout, &opt);
        if !report.is_sound() {
            return Err(PipelineError::Unsound {
                findings: report
                    .findings
                    .into_iter()
                    .filter(|f| f.severity == ccdp_lint::Severity::Error)
                    .collect(),
            });
        }
    }
    let r = Simulator::new(
        &art.transformed,
        layout,
        cfg.machine.clone(),
        Scheme::Ccdp { plan: art.plan.clone() },
        cfg.sim,
    )
    .try_run()?;
    check_coherent(&r)?;
    Ok((art, r))
}

/// Conservative third baseline: caching enabled but every potentially-stale
/// read bypasses the cache (no prefetching). Isolates the latency-hiding
/// contribution of CCDP from the caching contribution.
pub fn run_invalidate_only(
    program: &Program,
    cfg: &PipelineConfig,
) -> Result<SimResult, PipelineError> {
    check_inputs(program, cfg)?;
    let layout = cfg.layout_for(program);
    let stale = analyze_stale(program, &layout);
    let plan = PrefetchPlan::bypass_all(program, &stale);
    let r = Simulator::new(
        program,
        layout,
        cfg.machine.clone(),
        Scheme::Ccdp { plan },
        cfg.sim,
    )
    .try_run()?;
    check_coherent(&r)?;
    Ok(r)
}

/// The paper's headline numbers for one kernel at one PE count.
#[derive(Clone)]
pub struct Comparison {
    pub n_pes: usize,
    pub seq: SimResult,
    pub base: SimResult,
    pub ccdp: SimResult,
    /// Table 1, BASE column: `seq_cycles / base_cycles`.
    pub base_speedup: f64,
    /// Table 1, CCDP column.
    pub ccdp_speedup: f64,
    /// Table 2: percentage improvement of CCDP over BASE.
    pub improvement_pct: f64,
    pub plan_stats: PlanStats,
    pub stale_reads: usize,
    pub shared_reads: usize,
}

/// Run all three schemes and compute the paper's metrics. Fails when the
/// CCDP run violates coherence (see [`run_ccdp`]).
pub fn compare(program: &Program, cfg: &PipelineConfig) -> Result<Comparison, PipelineError> {
    let seq = run_seq(program, cfg)?;
    compare_with_seq(program, cfg, seq)
}

/// [`compare`] with the sequential denominator supplied by the caller. The
/// sequential run is independent of `cfg.n_pes` (it always executes on one
/// PE with the sequential machine), so sweeps over PE counts can run it
/// once per kernel and reuse the result for every cell.
pub fn compare_with_seq(
    program: &Program,
    cfg: &PipelineConfig,
    seq: SimResult,
) -> Result<Comparison, PipelineError> {
    let base = run_base(program, cfg)?;
    let (art, ccdp) = run_ccdp(program, cfg)?;
    let base_speedup = seq.cycles as f64 / base.cycles as f64;
    let ccdp_speedup = seq.cycles as f64 / ccdp.cycles as f64;
    let improvement_pct =
        100.0 * (base.cycles as f64 - ccdp.cycles as f64) / base.cycles as f64;
    Ok(Comparison {
        n_pes: cfg.n_pes,
        seq,
        base,
        ccdp,
        base_speedup,
        ccdp_speedup,
        improvement_pct,
        plan_stats: art.plan.stats,
        stale_reads: art.stale.n_stale(),
        shared_reads: art.stale.n_shared_reads,
    })
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    fn kernel() -> Program {
        let mut pb = ProgramBuilder::new("k");
        let a = pb.shared("A", &[256]);
        let b = pb.shared("B", &[256]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 255, |e, i| e.assign(a.at1(i), 3.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 255, |e, i| {
                e.assign(b.at1(i), a.at1(255 - i).rd() + 1.0);
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn compare_produces_consistent_metrics() {
        let p = kernel();
        let cmp = compare(&p, &PipelineConfig::t3d(4)).expect("coherent");
        assert!(cmp.base_speedup > 0.0 && cmp.ccdp_speedup > 0.0);
        let recomputed =
            100.0 * (1.0 - cmp.ccdp.cycles as f64 / cmp.base.cycles as f64);
        assert!((cmp.improvement_pct - recomputed).abs() < 1e-9);
        assert!(cmp.stale_reads > 0);
        assert!(cmp.shared_reads >= cmp.stale_reads);
    }

    #[test]
    fn invalidate_only_sits_between_base_and_ccdp_here() {
        let p = kernel();
        let cfg = PipelineConfig::t3d(4);
        let base = run_base(&p, &cfg).expect("valid config");
        let inv = run_invalidate_only(&p, &cfg).expect("coherent");
        let (_, ccdp) = run_ccdp(&p, &cfg).expect("coherent");
        assert!(inv.oracle.is_coherent());
        // Caching clean data already beats BASE; prefetching beats both.
        assert!(inv.cycles <= base.cycles);
        assert!(ccdp.cycles <= inv.cycles);
    }

    #[test]
    fn builder_methods_compose() {
        let p = kernel();
        let layout = ccdp_dist::Layout::new(&p, 4);
        let cfg = PipelineConfig::t3d(4)
            .with_machine(MachineConfig::t3d(4))
            .with_layout(layout)
            .with_target(TargetOptions::default())
            .with_schedule(ScheduleOptions::default())
            .with_sim(SimOptions { oracle_examples: 2, ..Default::default() });
        assert!(cfg.layout.is_some());
        assert_eq!(cfg.sim.oracle_examples, 2);
        let cmp = compare(&p, &cfg).expect("coherent");
        // The explicit layout is the default one, so results must match the
        // un-customized run.
        let plain = compare(&p, &PipelineConfig::t3d(4)).expect("coherent");
        assert_eq!(cmp.ccdp.cycles, plain.ccdp.cycles);
    }

    #[test]
    fn coherence_error_reports_evidence() {
        // A sequential run is coherent; manufacture an incoherent result by
        // faking an oracle report through the error path.
        let err = PipelineError::CoherenceViolation {
            scheme: "CCDP",
            stale_reads: 3,
            examples: vec![],
        };
        let msg = format!("{err}");
        assert!(msg.contains("CCDP"), "{msg}");
        assert!(msg.contains("3 stale read(s)"), "{msg}");
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn invalid_machine_and_fault_plans_are_rejected_up_front() {
        let p = kernel();
        let mut cfg = PipelineConfig::t3d(4);
        cfg.machine.queue_words = 1; // < line_words
        let Err(err) = run_seq(&p, &cfg) else { panic!("invalid machine accepted") };
        assert!(matches!(err, PipelineError::InvalidConfig(_)), "{err}");
        assert!(format!("{err}").contains("invalid configuration"), "{err}");

        let cfg = PipelineConfig::t3d(4)
            .with_faults(FaultPlan::none().with_drop_rate(1.5));
        assert!(matches!(
            run_base(&p, &cfg),
            Err(PipelineError::InvalidConfig(_))
        ));
        assert!(matches!(compare(&p, &cfg), Err(PipelineError::InvalidConfig(_))));
    }

    #[test]
    fn with_faults_threads_the_plan_into_simulation() {
        let p = kernel();
        let plan = FaultPlan::none().with_seed(5).with_drop_rate(1.0);
        let cfg = PipelineConfig::t3d(4).with_faults(plan);
        assert_eq!(cfg.sim.faults, plan);
        let (_, r) = run_ccdp(&p, &cfg).expect("coherent under faults");
        let fs = r.fault_stats();
        assert!(fs.prefetches_dropped > 0, "rate-1.0 drop plan injected nothing");
        // Graceful degradation: still coherent, numerics still correct.
        let seq = run_seq(&p, &PipelineConfig::t3d(4)).unwrap();
        for a in p.arrays.iter() {
            assert_eq!(r.array_values(&p, a.id), seq.array_values(&p, a.id));
        }
    }

    #[test]
    fn with_verify_passes_sound_plans_and_rejects_races() {
        let p = kernel();
        let cfg = PipelineConfig::t3d(4).with_verify(true);
        run_ccdp(&p, &cfg).expect("planner output must verify");

        // A constant-subscript write inside a DOALL is a cross-PE race the
        // verifier flags statically, before any simulation runs.
        let mut pb = ProgramBuilder::new("racy");
        let a = pb.shared("A", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, _i| e.assign(a.at1(0), 1.0));
        });
        let racy = pb.finish().unwrap();
        let Err(err) = run_ccdp(&racy, &cfg) else { panic!("race must be rejected") };
        let PipelineError::Unsound { findings } = &err else {
            panic!("expected Unsound, got {err}");
        };
        assert!(!findings.is_empty());
        assert!(format!("{err}").contains("static verification"), "{err}");
    }

    #[test]
    fn compile_artifacts_expose_plan() {
        let p = kernel();
        let art = compile_ccdp(&p, &PipelineConfig::t3d(8));
        assert!(art.stale.n_stale() > 0);
        assert!(art.plan.stats.targets > 0);
        let printed = ccdp_ir::print_program(&art.transformed);
        assert!(printed.contains("prefetch"), "{printed}");
    }
}
