//! Pipeline orchestration: analyze → plan → simulate → compare.

use ccdp_analysis::{analyze_stale, StaleAnalysis};
use ccdp_dist::Layout;
use ccdp_ir::Program;
use ccdp_prefetch::{
    plan_prefetches, PlanStats, PrefetchPlan, ScheduleOptions, TargetOptions,
};
use t3d_sim::{
    ConfigError, FaultPlan, MachineConfig, Scheme as SimScheme, SimAbort, SimOptions,
    SimResult, Simulator, StaleReadExample,
};

/// Why a pipeline run failed. The pipeline no longer panics on a broken
/// plan: callers (bins, harnesses, tests) decide how to surface the error.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// A cached-scheme run consumed data older than main memory. Carries
    /// the oracle's evidence; an intact CCDP pipeline never produces this
    /// (the failure-injection tests manufacture it deliberately).
    CoherenceViolation {
        /// Scheme name of the offending run ("CCDP", "INV", ...).
        scheme: &'static str,
        /// Number of stale reads the oracle observed.
        stale_reads: u64,
        /// First few concrete violations.
        examples: Vec<StaleReadExample>,
    },
    /// The machine configuration or fault plan is internally inconsistent
    /// (caught by `MachineConfig::validate` / `FaultPlan::validate` before
    /// any simulation runs).
    InvalidConfig(ConfigError),
    /// The input program is structurally invalid (caught by
    /// `ccdp_ir::validate` before any simulation runs). Same class of
    /// up-front rejection as `InvalidConfig`, but about the program rather
    /// than the machine.
    InvalidProgram(ccdp_ir::ValidateError),
    /// A simulation exhausted its cycle or step budget
    /// (`SimOptions::cycle_budget` / `step_budget`) — the structured
    /// termination of a runaway program.
    BudgetExceeded { pe: usize, cycles: u64, steps: u64 },
    /// A simulation ran past its cooperative wall-clock deadline
    /// (`SimOptions::wall_deadline`).
    Timeout { pe: usize, steps: u64 },
    /// The static soundness verifier (`ccdp-lint`) proved the compiled plan
    /// does not discharge every coverage obligation. Only produced when
    /// [`PipelineConfig::with_verify`] is on; carries the error-severity
    /// findings. Unlike [`PipelineError::CoherenceViolation`] this fires
    /// *before* any simulation — the static counterpart of the dynamic
    /// oracle.
    Unsound { findings: Vec<ccdp_lint::Finding> },
}

impl PipelineError {
    /// Stable machine-readable error code, used as the `code` field of the
    /// service layer's JSON error envelope and safe to match on across
    /// releases (unlike the human-facing `Display` text).
    pub fn code(&self) -> &'static str {
        match self {
            PipelineError::CoherenceViolation { .. } => "coherence_violation",
            PipelineError::InvalidConfig(_) => "invalid_config",
            PipelineError::InvalidProgram(_) => "invalid_program",
            PipelineError::BudgetExceeded { .. } => "budget_exceeded",
            PipelineError::Timeout { .. } => "timeout",
            PipelineError::Unsound { .. } => "unsound",
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::CoherenceViolation { scheme, stale_reads, examples } => {
                write!(f, "{scheme} run violated coherence: {stale_reads} stale read(s)")?;
                if let Some(e) = examples.first() {
                    write!(
                        f,
                        "; first: ref {:?} on PE {} read addr {} at version {} (memory at {}) in phase {}",
                        e.reference, e.pe, e.addr, e.cached_version, e.memory_version, e.phase
                    )?;
                }
                Ok(())
            }
            PipelineError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            PipelineError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            PipelineError::BudgetExceeded { pe, cycles, steps } => write!(
                f,
                "simulation budget exceeded on PE {pe}: {cycles} cycles after {steps} steps"
            ),
            PipelineError::Timeout { pe, steps } => write!(
                f,
                "simulation wall-clock deadline passed on PE {pe} after {steps} steps"
            ),
            PipelineError::Unsound { findings } => {
                write!(f, "prefetch plan failed static verification: {} error finding(s)", findings.len())?;
                if let Some(first) = findings.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> PipelineError {
        PipelineError::InvalidConfig(e)
    }
}

impl From<ccdp_ir::ValidateError> for PipelineError {
    fn from(e: ccdp_ir::ValidateError) -> PipelineError {
        PipelineError::InvalidProgram(e)
    }
}

impl From<SimAbort> for PipelineError {
    fn from(a: SimAbort) -> PipelineError {
        match a {
            SimAbort::BudgetExceeded { pe, cycles, steps } => {
                PipelineError::BudgetExceeded { pe, cycles, steps }
            }
            SimAbort::WallTimeout { pe, steps } => PipelineError::Timeout { pe, steps },
        }
    }
}

/// Fail if a cached-scheme run came back incoherent.
fn check_coherent(r: &SimResult) -> Result<(), PipelineError> {
    if r.oracle.is_coherent() {
        Ok(())
    } else {
        Err(PipelineError::CoherenceViolation {
            scheme: r.scheme,
            stale_reads: r.oracle.stale_reads,
            examples: r.oracle.examples.clone(),
        })
    }
}

/// Everything needed to compile and run one kernel at one PE count.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    pub n_pes: usize,
    pub machine: MachineConfig,
    pub target: TargetOptions,
    pub schedule: ScheduleOptions,
    pub sim: SimOptions,
    /// Optional custom layout (defaults to block along the last dimension).
    pub layout: Option<Layout>,
    /// Run the `ccdp-lint` static soundness verifier over every compiled
    /// plan and fail with [`PipelineError::Unsound`] on any error finding.
    pub verify: bool,
}

impl PipelineConfig {
    /// T3D defaults at a given PE count. Refine with the `with_*` builder
    /// methods: `PipelineConfig::t3d(8).with_layout(..).with_sim(..)`.
    pub fn t3d(n_pes: usize) -> PipelineConfig {
        PipelineConfig {
            n_pes,
            machine: MachineConfig::t3d(n_pes),
            target: TargetOptions::default(),
            schedule: ScheduleOptions::default(),
            sim: SimOptions::default(),
            layout: None,
            verify: false,
        }
    }

    /// Replace the machine model (PE count must match `n_pes`).
    pub fn with_machine(mut self, machine: MachineConfig) -> PipelineConfig {
        self.machine = machine;
        self
    }

    /// Use a custom data layout instead of the default block layout.
    pub fn with_layout(mut self, layout: Layout) -> PipelineConfig {
        self.layout = Some(layout);
        self
    }

    /// Replace the prefetch target analysis options.
    pub fn with_target(mut self, target: TargetOptions) -> PipelineConfig {
        self.target = target;
        self
    }

    /// Replace the prefetch scheduling options.
    pub fn with_schedule(mut self, schedule: ScheduleOptions) -> PipelineConfig {
        self.schedule = schedule;
        self
    }

    /// Replace the simulation options.
    pub fn with_sim(mut self, sim: SimOptions) -> PipelineConfig {
        self.sim = sim;
        self
    }

    /// Inject a deterministic fault plan into every simulation this config
    /// drives (see `t3d_sim::FaultPlan`).
    pub fn with_faults(mut self, faults: FaultPlan) -> PipelineConfig {
        self.sim.faults = faults;
        self
    }

    /// Statically verify every compiled plan with `ccdp-lint` before
    /// simulating (see [`PipelineError::Unsound`]).
    pub fn with_verify(mut self, verify: bool) -> PipelineConfig {
        self.verify = verify;
        self
    }

    /// Check the machine model and fault plan before simulating.
    pub fn validate(&self) -> Result<(), PipelineError> {
        self.machine.validate()?;
        self.sim.faults.validate()?;
        Ok(())
    }

    /// The layout used for analysis and simulation.
    pub fn layout_for(&self, program: &Program) -> Layout {
        self.layout
            .clone()
            .unwrap_or_else(|| Layout::new(program, self.n_pes))
    }

    /// Same costs, single PE — the sequential reference machine.
    fn seq_machine(&self) -> MachineConfig {
        let mut m = self.machine.clone();
        m.n_pes = 1;
        m
    }
}

/// Coherence-scheme selector for the unified entry point
/// [`PipelineConfig::run`].
///
/// Distinct from the simulator-level `t3d_sim::Scheme`: that enum carries
/// the compiled [`PrefetchPlan`] payload a simulation executes, while this
/// one names what the *pipeline* should build and run. `Sequential` is
/// deliberately absent — the 1-PE reference run ([`run_seq`]) is the
/// speedup denominator every scheme is measured against, not a rival.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// CRAFT-style software shared memory: shared data never cached.
    Base,
    /// Compiler-directed cache coherence with data prefetching (the paper).
    Ccdp,
    /// The CCDP plan's stale-read handlings without its prefetches —
    /// isolates the caching contribution from the latency-hiding one.
    InvalidateOnly,
    /// Snooping invalidate-based hardware coherence (MESI) over a shared
    /// bus — the "what if the T3D had hardware coherence" rival.
    Mesi,
    /// Snooping update-based hardware coherence (Dragon) over a shared bus.
    Dragon,
}

impl Scheme {
    /// Every scheme, in canonical table order.
    pub const ALL: [Scheme; 5] =
        [Scheme::Base, Scheme::Ccdp, Scheme::InvalidateOnly, Scheme::Mesi, Scheme::Dragon];

    /// Stable display name; matches the simulator's `SimResult::scheme`.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Base => "BASE",
            Scheme::Ccdp => "CCDP",
            Scheme::InvalidateOnly => "INV",
            Scheme::Mesi => "MESI",
            Scheme::Dragon => "DRAGON",
        }
    }

    /// Lower-case key used in JSON reports (`"base"`, `"ccdp"`, `"inv"`,
    /// `"mesi"`, `"dragon"`).
    pub fn key(self) -> &'static str {
        match self {
            Scheme::Base => "base",
            Scheme::Ccdp => "ccdp",
            Scheme::InvalidateOnly => "inv",
            Scheme::Mesi => "mesi",
            Scheme::Dragon => "dragon",
        }
    }

    /// Parse a scheme name ([`Scheme::name`] or [`Scheme::key`] spelling),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<Scheme> {
        Scheme::ALL.iter().copied().find(|sc| sc.name().eq_ignore_ascii_case(s))
    }

    /// Event-driven hardware protocol? Hardware schemes need no prefetch
    /// plan and skip the plan-coverage half of static verification (only
    /// the CCDP003 phase-race audit applies; see
    /// [`ccdp_lint::verify_hardware`]).
    pub fn is_hardware(self) -> bool {
        matches!(self, Scheme::Mesi | Scheme::Dragon)
    }
}

/// Output of the CCDP compilation pipeline for one kernel/PE-count.
#[derive(Clone)]
pub struct CcdpArtifacts {
    pub stale: StaleAnalysis,
    pub transformed: Program,
    pub plan: PrefetchPlan,
}

/// Run the compiler side only: stale reference analysis, prefetch target
/// analysis, prefetch scheduling, materialization.
pub fn compile_ccdp(program: &Program, cfg: &PipelineConfig) -> CcdpArtifacts {
    let layout = cfg.layout_for(program);
    let stale = analyze_stale(program, &layout);
    let (transformed, plan) =
        plan_prefetches(program, &layout, &stale, &cfg.target, &cfg.schedule);
    CcdpArtifacts { stale, transformed, plan }
}

/// Up-front rejection shared by every entry point: machine model, fault
/// plan, and program structure are all checked before any simulation runs,
/// so malformed inputs surface as `InvalidConfig` / `InvalidProgram` rather
/// than as a simulator panic.
fn check_inputs(program: &Program, cfg: &PipelineConfig) -> Result<(), PipelineError> {
    cfg.validate()?;
    ccdp_ir::validate(program)?;
    Ok(())
}

/// Fail if the static verifier found an error-severity finding.
fn check_sound(report: ccdp_lint::LintReport) -> Result<(), PipelineError> {
    if report.is_sound() {
        Ok(())
    } else {
        Err(PipelineError::Unsound {
            findings: report
                .findings
                .into_iter()
                .filter(|f| f.severity == ccdp_lint::Severity::Error)
                .collect(),
        })
    }
}

/// Sequential reference run (1 PE, everything cached and local).
pub fn run_seq(program: &Program, cfg: &PipelineConfig) -> Result<SimResult, PipelineError> {
    check_inputs(program, cfg)?;
    let layout = Layout::new(program, 1);
    Simulator::new(program, layout, cfg.seq_machine(), SimScheme::Sequential, cfg.sim)
        .try_run()
        .map_err(PipelineError::from)
}

impl PipelineConfig {
    /// Run one coherence scheme end to end — the single entry point for
    /// every scheme:
    ///
    /// * `Base` — CRAFT-style software shared memory, shared data uncached.
    /// * `Ccdp` — compile (stale analysis → prefetch planning →
    ///   materialization), optionally verify statically
    ///   ([`PipelineConfig::with_verify`]), then execute the transformed
    ///   program. The compiler artifacts ride along in the returned
    ///   [`SchemeRun`].
    /// * `InvalidateOnly` — the plan's `Bypass` handlings without its
    ///   prefetches, over the original program.
    /// * `Mesi` / `Dragon` — event-driven snooping hardware coherence; no
    ///   plan is compiled, and `with_verify` runs only the plan-independent
    ///   CCDP003 phase-race audit ([`ccdp_lint::verify_hardware`]).
    ///
    /// Every cached scheme is checked against the coherence oracle; a stale
    /// read fails with [`PipelineError::CoherenceViolation`].
    pub fn run(&self, program: &Program, scheme: Scheme) -> Result<SchemeRun, PipelineError> {
        check_inputs(program, self)?;
        let layout = self.layout_for(program);
        match scheme {
            Scheme::Base => {
                let result = Simulator::new(
                    program,
                    layout,
                    self.machine.clone(),
                    SimScheme::Base,
                    self.sim,
                )
                .try_run()?;
                Ok(SchemeRun { scheme, result, artifacts: None })
            }
            Scheme::Ccdp => {
                let art = compile_ccdp(program, self);
                if self.verify {
                    let opt = ccdp_lint::LintOptions::from_schedule(&self.schedule);
                    check_sound(ccdp_lint::verify(&art.transformed, &art.plan, &layout, &opt))?;
                }
                let result = Simulator::new(
                    &art.transformed,
                    layout,
                    self.machine.clone(),
                    SimScheme::Ccdp { plan: art.plan.clone() },
                    self.sim,
                )
                .try_run()?;
                check_coherent(&result)?;
                Ok(SchemeRun { scheme, result, artifacts: Some(art) })
            }
            Scheme::InvalidateOnly => {
                let stale = analyze_stale(program, &layout);
                let plan = PrefetchPlan::bypass_all(program, &stale);
                let result = Simulator::new(
                    program,
                    layout,
                    self.machine.clone(),
                    SimScheme::InvalidateOnly { plan: plan.clone() },
                    self.sim,
                )
                .try_run()?;
                check_coherent(&result)?;
                let artifacts =
                    CcdpArtifacts { stale, transformed: program.clone(), plan };
                Ok(SchemeRun { scheme, result, artifacts: Some(artifacts) })
            }
            Scheme::Mesi | Scheme::Dragon => {
                if self.verify {
                    check_sound(ccdp_lint::verify_hardware(program, &layout))?;
                }
                let sim_scheme = match scheme {
                    Scheme::Mesi => SimScheme::Mesi,
                    _ => SimScheme::Dragon,
                };
                let result = Simulator::new(
                    program,
                    layout,
                    self.machine.clone(),
                    sim_scheme,
                    self.sim,
                )
                .try_run()?;
                check_coherent(&result)?;
                Ok(SchemeRun { scheme, result, artifacts: None })
            }
        }
    }
}

/// One scheme's simulation plus, for the plan-driven schemes, the compiler
/// artifacts that produced it.
#[derive(Clone)]
pub struct SchemeRun {
    pub scheme: Scheme,
    pub result: SimResult,
    /// `Some` for `Ccdp` (the full pipeline's output) and `InvalidateOnly`
    /// (stale analysis + bypass-all plan over the original program); `None`
    /// for `Base` and the hardware schemes, which compile nothing.
    pub artifacts: Option<CcdpArtifacts>,
}

/// N-way comparison for one kernel at one PE count: every requested scheme
/// against the shared sequential denominator — the paper's Tables 1/2
/// generalized to the hardware rivals.
#[derive(Clone)]
pub struct SchemeMatrix {
    pub n_pes: usize,
    /// The 1-PE sequential reference run (speedup denominator).
    pub seq: SimResult,
    /// One run per requested scheme, in request order.
    pub runs: Vec<SchemeRun>,
    /// Potentially-stale shared reads found by the analysis.
    pub stale_reads: usize,
    /// All shared reads in the program.
    pub shared_reads: usize,
    /// Statistics of the CCDP prefetch plan (compiled once per matrix even
    /// when `Ccdp` is not among the requested schemes, so reports always
    /// describe what the compiler would emit).
    pub plan_stats: PlanStats,
}

impl SchemeMatrix {
    /// The run of one scheme, if it was requested.
    pub fn get(&self, s: Scheme) -> Option<&SchemeRun> {
        self.runs.iter().find(|r| r.scheme == s)
    }

    /// Simulated cycles of one scheme's run.
    pub fn cycles(&self, s: Scheme) -> Option<u64> {
        self.get(s).map(|r| r.result.cycles)
    }

    /// Table 1 generalization: `seq_cycles / scheme_cycles`.
    pub fn speedup(&self, s: Scheme) -> Option<f64> {
        self.cycles(s).map(|c| self.seq.cycles as f64 / c as f64)
    }

    /// Percentage improvement in execution time of `s` over BASE.
    pub fn improvement_over_base(&self, s: Scheme) -> Option<f64> {
        let base = self.cycles(Scheme::Base)? as f64;
        let c = self.cycles(s)? as f64;
        Some(100.0 * (base - c) / base)
    }

    /// The paper's Table 2 number: improvement of CCDP over BASE.
    pub fn improvement_pct(&self) -> Option<f64> {
        self.improvement_over_base(Scheme::Ccdp)
    }
}

/// Run the requested schemes plus the sequential denominator and compute
/// the paper's metrics. Fails on the first coherence violation.
pub fn compare(
    program: &Program,
    cfg: &PipelineConfig,
    schemes: &[Scheme],
) -> Result<SchemeMatrix, PipelineError> {
    let seq = run_seq(program, cfg)?;
    compare_with_seq(program, cfg, seq, schemes)
}

/// [`compare`] with the sequential denominator supplied by the caller. The
/// sequential run is independent of `cfg.n_pes` (it always executes on one
/// PE with the sequential machine), so sweeps over PE counts can run it
/// once per kernel and reuse the result for every cell.
pub fn compare_with_seq(
    program: &Program,
    cfg: &PipelineConfig,
    seq: SimResult,
    schemes: &[Scheme],
) -> Result<SchemeMatrix, PipelineError> {
    let mut runs = Vec::with_capacity(schemes.len());
    for &s in schemes {
        runs.push(cfg.run(program, s)?);
    }
    // Analysis stats come from the CCDP compile; reuse the run's artifacts
    // when CCDP was requested, compile (statically — no simulation) if not.
    let (stale_reads, shared_reads, plan_stats) = match runs
        .iter()
        .find(|r| r.scheme == Scheme::Ccdp)
        .and_then(|r| r.artifacts.as_ref())
    {
        Some(a) => (a.stale.n_stale(), a.stale.n_shared_reads, a.plan.stats),
        None => {
            let a = compile_ccdp(program, cfg);
            (a.stale.n_stale(), a.stale.n_shared_reads, a.plan.stats)
        }
    };
    Ok(SchemeMatrix {
        n_pes: cfg.n_pes,
        seq,
        runs,
        stale_reads,
        shared_reads,
        plan_stats,
    })
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    fn kernel() -> Program {
        let mut pb = ProgramBuilder::new("k");
        let a = pb.shared("A", &[256]);
        let b = pb.shared("B", &[256]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 255, |e, i| e.assign(a.at1(i), 3.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 255, |e, i| {
                e.assign(b.at1(i), a.at1(255 - i).rd() + 1.0);
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn compare_produces_consistent_metrics() {
        let p = kernel();
        let cmp =
            compare(&p, &PipelineConfig::t3d(4), &[Scheme::Base, Scheme::Ccdp])
                .expect("coherent");
        assert!(cmp.speedup(Scheme::Base).unwrap() > 0.0);
        assert!(cmp.speedup(Scheme::Ccdp).unwrap() > 0.0);
        let base = cmp.cycles(Scheme::Base).unwrap() as f64;
        let ccdp = cmp.cycles(Scheme::Ccdp).unwrap() as f64;
        let recomputed = 100.0 * (1.0 - ccdp / base);
        assert!((cmp.improvement_pct().unwrap() - recomputed).abs() < 1e-9);
        assert!(cmp.stale_reads > 0);
        assert!(cmp.shared_reads >= cmp.stale_reads);
        // Unrequested schemes read as absent, not as zero.
        assert!(cmp.get(Scheme::Mesi).is_none());
        assert!(cmp.speedup(Scheme::Dragon).is_none());
    }

    #[test]
    fn invalidate_only_sits_between_base_and_ccdp_here() {
        let p = kernel();
        let cfg = PipelineConfig::t3d(4);
        let base = cfg.run(&p, Scheme::Base).expect("valid config").result;
        let inv = cfg.run(&p, Scheme::InvalidateOnly).expect("coherent").result;
        let ccdp = cfg.run(&p, Scheme::Ccdp).expect("coherent").result;
        assert!(inv.oracle.is_coherent());
        assert_eq!(inv.scheme, "INV");
        // Caching clean data already beats BASE; prefetching beats both.
        assert!(inv.cycles <= base.cycles);
        assert!(ccdp.cycles <= inv.cycles);
    }

    #[test]
    fn hardware_schemes_run_coherent_without_a_plan() {
        let p = kernel();
        let cfg = PipelineConfig::t3d(4).with_verify(true);
        let seq = run_seq(&p, &cfg).unwrap();
        for scheme in [Scheme::Mesi, Scheme::Dragon] {
            let run = cfg.run(&p, scheme).expect("coherent");
            assert!(run.artifacts.is_none(), "hardware schemes compile nothing");
            assert_eq!(run.result.scheme, scheme.name());
            assert!(run.result.oracle.is_coherent());
            // Numerics must match the sequential golden run exactly.
            for a in p.arrays.iter() {
                assert_eq!(
                    run.result.array_values(&p, a.id),
                    seq.array_values(&p, a.id),
                    "{} numerics diverged",
                    scheme.name()
                );
            }
            let stats = run.result.total_stats();
            assert!(stats.bus_txns > 0, "{} issued no bus transactions", scheme.name());
        }
    }

    #[test]
    fn scheme_names_parse_and_classify() {
        assert_eq!(Scheme::ALL.len(), 5);
        for s in Scheme::ALL {
            assert_eq!(Scheme::parse(s.name()), Some(s));
            assert_eq!(Scheme::parse(s.key()), Some(s));
            assert_eq!(s.key(), s.name().to_ascii_lowercase());
        }
        assert_eq!(Scheme::parse("mesi"), Some(Scheme::Mesi));
        assert_eq!(Scheme::parse("bogus"), None);
        assert!(Scheme::Mesi.is_hardware() && Scheme::Dragon.is_hardware());
        assert!(!Scheme::Ccdp.is_hardware() && !Scheme::Base.is_hardware());
    }

    /// `run(Scheme)` is the one entry point (the 0.2 `run_base`/`run_ccdp`/
    /// `run_invalidate_only` shims are gone): it must be deterministic per
    /// scheme and carry artifacts exactly for the plan-driven schemes.
    #[test]
    fn run_is_deterministic_and_carries_artifacts_per_scheme() {
        let p = kernel();
        let cfg = PipelineConfig::t3d(4);
        let base = cfg.run(&p, Scheme::Base).unwrap();
        assert_eq!(base.result.cycles, cfg.run(&p, Scheme::Base).unwrap().result.cycles);
        assert!(base.artifacts.is_none(), "BASE compiles nothing");
        let ccdp = cfg.run(&p, Scheme::Ccdp).unwrap();
        assert_eq!(ccdp.result.cycles, cfg.run(&p, Scheme::Ccdp).unwrap().result.cycles);
        let art = ccdp.artifacts.expect("CCDP runs carry artifacts");
        assert!(art.plan.stats.targets > 0);
        let inv = cfg.run(&p, Scheme::InvalidateOnly).unwrap();
        assert_eq!(
            inv.result.cycles,
            cfg.run(&p, Scheme::InvalidateOnly).unwrap().result.cycles
        );
        assert!(inv.artifacts.is_some(), "INV carries the bypass-all plan");
    }

    #[test]
    fn builder_methods_compose() {
        let p = kernel();
        let layout = ccdp_dist::Layout::new(&p, 4);
        let cfg = PipelineConfig::t3d(4)
            .with_machine(MachineConfig::t3d(4))
            .with_layout(layout)
            .with_target(TargetOptions::default())
            .with_schedule(ScheduleOptions::default())
            .with_sim(SimOptions { oracle_examples: 2, ..Default::default() });
        assert!(cfg.layout.is_some());
        assert_eq!(cfg.sim.oracle_examples, 2);
        let schemes = [Scheme::Base, Scheme::Ccdp];
        let cmp = compare(&p, &cfg, &schemes).expect("coherent");
        // The explicit layout is the default one, so results must match the
        // un-customized run.
        let plain = compare(&p, &PipelineConfig::t3d(4), &schemes).expect("coherent");
        assert_eq!(cmp.cycles(Scheme::Ccdp), plain.cycles(Scheme::Ccdp));
    }

    #[test]
    fn coherence_error_reports_evidence() {
        // A sequential run is coherent; manufacture an incoherent result by
        // faking an oracle report through the error path.
        let err = PipelineError::CoherenceViolation {
            scheme: "CCDP",
            stale_reads: 3,
            examples: vec![],
        };
        let msg = format!("{err}");
        assert!(msg.contains("CCDP"), "{msg}");
        assert!(msg.contains("3 stale read(s)"), "{msg}");
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn invalid_machine_and_fault_plans_are_rejected_up_front() {
        let p = kernel();
        let mut cfg = PipelineConfig::t3d(4);
        cfg.machine.queue_words = 1; // < line_words
        let Err(err) = run_seq(&p, &cfg) else { panic!("invalid machine accepted") };
        assert!(matches!(err, PipelineError::InvalidConfig(_)), "{err}");
        assert!(format!("{err}").contains("invalid configuration"), "{err}");

        let cfg = PipelineConfig::t3d(4)
            .with_faults(FaultPlan::none().with_drop_rate(1.5));
        for scheme in Scheme::ALL {
            assert!(
                matches!(cfg.run(&p, scheme), Err(PipelineError::InvalidConfig(_))),
                "{} accepted an invalid fault plan",
                scheme.name()
            );
        }
        assert!(matches!(
            compare(&p, &cfg, &[Scheme::Base]),
            Err(PipelineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn with_faults_threads_the_plan_into_simulation() {
        let p = kernel();
        let plan = FaultPlan::none().with_seed(5).with_drop_rate(1.0);
        let cfg = PipelineConfig::t3d(4).with_faults(plan);
        assert_eq!(cfg.sim.faults, plan);
        let r = cfg.run(&p, Scheme::Ccdp).expect("coherent under faults").result;
        let fs = r.fault_stats();
        assert!(fs.prefetches_dropped > 0, "rate-1.0 drop plan injected nothing");
        // Graceful degradation: still coherent, numerics still correct.
        let seq = run_seq(&p, &PipelineConfig::t3d(4)).unwrap();
        for a in p.arrays.iter() {
            assert_eq!(r.array_values(&p, a.id), seq.array_values(&p, a.id));
        }
    }

    #[test]
    fn with_verify_passes_sound_plans_and_rejects_races() {
        let p = kernel();
        let cfg = PipelineConfig::t3d(4).with_verify(true);
        cfg.run(&p, Scheme::Ccdp).expect("planner output must verify");

        // A constant-subscript write inside a DOALL is a cross-PE race the
        // verifier flags statically, before any simulation runs — for the
        // software schemes AND the hardware ones (no protocol fixes a
        // same-phase write-write race).
        let mut pb = ProgramBuilder::new("racy");
        let a = pb.shared("A", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, _i| e.assign(a.at1(0), 1.0));
        });
        let racy = pb.finish().unwrap();
        for scheme in [Scheme::Ccdp, Scheme::Mesi, Scheme::Dragon] {
            let Err(err) = cfg.run(&racy, scheme) else {
                panic!("{} must reject the race", scheme.name())
            };
            let PipelineError::Unsound { findings } = &err else {
                panic!("expected Unsound, got {err}");
            };
            assert!(!findings.is_empty());
            assert!(format!("{err}").contains("static verification"), "{err}");
        }
    }

    #[test]
    fn compile_artifacts_expose_plan() {
        let p = kernel();
        let art = compile_ccdp(&p, &PipelineConfig::t3d(8));
        assert!(art.stale.n_stale() > 0);
        assert!(art.plan.stats.targets > 0);
        let printed = ccdp_ir::print_program(&art.transformed);
        assert!(printed.contains("prefetch"), "{printed}");
    }
}
