//! Environment-variable overrides, parsed in exactly one place.
//!
//! Three env knobs steer the pipeline and the benchmark harness:
//!
//! | variable                | effect                                         |
//! |-------------------------|------------------------------------------------|
//! | `CCDP_FORCE_TREEWALK`   | `1` forces the treewalk interpreter            |
//! | `CCDP_SIM_THREADS`      | worker threads for intra-run PE sharding       |
//! | `CCDP_SHARD_STATIC`     | `0` ignores static shard-disjointness proofs   |
//! | `CCDP_SEED`             | decision-stream seed for fault-injecting runs  |
//! | `CCDP_SCALE`            | benchmark problem size: `quick` (default) or `paper` |
//! | `CCDP_BENCH_QUICK`      | `1` shrinks the vendored-criterion measurement budget |
//! | `CCDP_PERF_GATE_FACTOR` | allowed slowdown factor for the CI perf gate   |
//! | `CCDP_SERVE_WORKERS`    | default worker-process count for ccdpd         |
//! | `CCDP_COMPACT_BYTES`    | journal compaction threshold for ccdpd (0 = off) |
//!
//! Historically each consumer read its variable ad hoc (the simulator read
//! `CCDP_FORCE_TREEWALK` directly, each bench bin parsed `CCDP_SEED` /
//! `CCDP_SCALE` itself), so a typo could silently select the wrong mode.
//! [`EnvOverrides::from_env`] is now the single parsing point: every bad
//! value is a structured [`PipelineError::InvalidConfig`] carrying the
//! variable name, the offending value, and what was expected — and
//! [`EnvOverrides::apply`] is the only place an env var mutates a
//! [`PipelineConfig`].

use crate::pipeline::{PipelineConfig, PipelineError};
use t3d_sim::ConfigError;

/// Benchmark problem-size preset named by `CCDP_SCALE`. The sizes
/// themselves live in the bench harness; core only validates the name.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ScalePreset {
    /// Reduced sizes (seconds of host time); the default.
    #[default]
    Quick,
    /// The paper's full problem sizes (minutes of host time).
    Paper,
}

/// The validated environment overrides. Build with
/// [`EnvOverrides::from_env`]; `Default` is "no variable set".
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnvOverrides {
    /// `CCDP_FORCE_TREEWALK=1`: run the treewalk interpreter instead of the
    /// compiled-trace path (the reference semantics both paths must match).
    pub force_treewalk: bool,
    /// `CCDP_SIM_THREADS=<n>`: worker threads for the simulator's
    /// epoch-sharded parallel path (`SimOptions::sim_threads`). `None`
    /// when unset (the simulator default — serial — applies).
    pub sim_threads: Option<usize>,
    /// `CCDP_SHARD_STATIC=0|1`: whether the sharded engine consults the
    /// static shard-independence analysis (`SimOptions::shard_static`).
    /// `0` forces the dynamic conflict-log path for every sharded epoch
    /// (byte-identical results, no fast path); `1` is the simulator
    /// default. `None` when unset.
    pub shard_static: Option<bool>,
    /// `CCDP_SEED=<u64>`: deterministic seed for fault-injecting harness
    /// runs. `None` when unset (callers pick their own default).
    pub seed: Option<u64>,
    /// `CCDP_SCALE=quick|paper`: benchmark problem-size preset.
    pub scale: ScalePreset,
    /// `CCDP_BENCH_QUICK=1`: abbreviated measurement budget in the vendored
    /// criterion shim (for `cargo bench` invocations that cannot forward
    /// the `--quick` flag).
    pub bench_quick: bool,
    /// `CCDP_PERF_GATE_FACTOR=<f64>`: allowed slowdown factor for the CI
    /// performance-regression gate. `None` when unset (the gate picks its
    /// default).
    pub perf_gate_factor: Option<f64>,
    /// `CCDP_SERVE_WORKERS=<n>`: default worker-process count for the
    /// ccdpd supervisor (`--workers` still wins). `None` when unset.
    pub serve_workers: Option<usize>,
    /// `CCDP_COMPACT_BYTES=<n>`: per-slot journal compaction threshold in
    /// bytes for ccdpd; `0` disables compaction. `None` when unset.
    pub compact_bytes: Option<u64>,
}

impl EnvOverrides {
    /// Parse every override from the process environment. Any malformed
    /// value fails with [`PipelineError::InvalidConfig`] — a typo must not
    /// silently select a default.
    pub fn from_env() -> Result<EnvOverrides, PipelineError> {
        let mut o = EnvOverrides::default();
        if let Ok(v) = std::env::var("CCDP_FORCE_TREEWALK") {
            o.force_treewalk = match v.as_str() {
                "" | "0" => false,
                "1" => true,
                _ => {
                    return Err(bad_env("CCDP_FORCE_TREEWALK", v, "expected \"0\" or \"1\""))
                }
            };
        }
        if let Ok(v) = std::env::var("CCDP_SIM_THREADS") {
            let n = v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    bad_env("CCDP_SIM_THREADS", v, "expected a positive integer")
                })?;
            o.sim_threads = Some(n);
        }
        if let Ok(v) = std::env::var("CCDP_SHARD_STATIC") {
            o.shard_static = match v.as_str() {
                "" | "0" => Some(false),
                "1" => Some(true),
                _ => return Err(bad_env("CCDP_SHARD_STATIC", v, "expected \"0\" or \"1\"")),
            };
        }
        if let Ok(v) = std::env::var("CCDP_SEED") {
            o.seed = Some(
                v.parse::<u64>()
                    .map_err(|_| bad_env("CCDP_SEED", v, "expected a u64"))?,
            );
        }
        if let Ok(v) = std::env::var("CCDP_SCALE") {
            o.scale = match v.as_str() {
                "" | "quick" => ScalePreset::Quick,
                "paper" => ScalePreset::Paper,
                _ => return Err(bad_env("CCDP_SCALE", v, "expected \"quick\" or \"paper\"")),
            };
        }
        if let Ok(v) = std::env::var("CCDP_BENCH_QUICK") {
            o.bench_quick = match v.as_str() {
                "" | "0" => false,
                "1" => true,
                _ => return Err(bad_env("CCDP_BENCH_QUICK", v, "expected \"0\" or \"1\"")),
            };
        }
        if let Ok(v) = std::env::var("CCDP_PERF_GATE_FACTOR") {
            let f = v
                .parse::<f64>()
                .map_err(|_| bad_env("CCDP_PERF_GATE_FACTOR", v.clone(), "expected a float"))?;
            if !(f.is_finite() && f > 0.0) {
                return Err(bad_env(
                    "CCDP_PERF_GATE_FACTOR",
                    v,
                    "expected a positive finite float",
                ));
            }
            o.perf_gate_factor = Some(f);
        }
        if let Ok(v) = std::env::var("CCDP_SERVE_WORKERS") {
            let n = v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    bad_env("CCDP_SERVE_WORKERS", v, "expected a positive integer")
                })?;
            o.serve_workers = Some(n);
        }
        if let Ok(v) = std::env::var("CCDP_COMPACT_BYTES") {
            o.compact_bytes = Some(
                v.parse::<u64>()
                    .map_err(|_| bad_env("CCDP_COMPACT_BYTES", v, "expected a u64"))?,
            );
        }
        Ok(o)
    }

    /// Apply the overrides to a pipeline configuration. Only widening:
    /// `force_treewalk` already set programmatically is never cleared, and
    /// `sim_threads` only overwrites when the variable was actually set.
    /// (`seed` and `scale` configure the *harness*, not the pipeline, so
    /// they are consumed by the bench crate instead.)
    pub fn apply(&self, cfg: &mut PipelineConfig) {
        cfg.sim.force_treewalk |= self.force_treewalk;
        if let Some(t) = self.sim_threads {
            cfg.sim.sim_threads = t;
        }
        if let Some(s) = self.shard_static {
            cfg.sim.shard_static = s;
        }
    }
}

fn bad_env(var: &'static str, value: String, need: &'static str) -> PipelineError {
    PipelineError::InvalidConfig(ConfigError::BadEnv { var, value, need })
}

#[cfg(test)]
mod unit {
    use super::*;

    // Env-var tests share one mutex: the process environment is global and
    // `cargo test` runs tests on several threads.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_vars<T>(
        vars: &[(&str, Option<&str>)],
        f: impl FnOnce() -> T,
    ) -> T {
        let _g = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let saved: Vec<(String, Option<String>)> = vars
            .iter()
            .map(|(k, _)| (k.to_string(), std::env::var(k).ok()))
            .collect();
        for (k, v) in vars {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        let out = f();
        for (k, v) in saved {
            match v {
                Some(v) => std::env::set_var(&k, v),
                None => std::env::remove_var(&k),
            }
        }
        out
    }

    const ALL_UNSET: [(&str, Option<&str>); 9] = [
        ("CCDP_FORCE_TREEWALK", None),
        ("CCDP_SIM_THREADS", None),
        ("CCDP_SHARD_STATIC", None),
        ("CCDP_SEED", None),
        ("CCDP_SCALE", None),
        ("CCDP_BENCH_QUICK", None),
        ("CCDP_PERF_GATE_FACTOR", None),
        ("CCDP_SERVE_WORKERS", None),
        ("CCDP_COMPACT_BYTES", None),
    ];

    #[test]
    fn unset_environment_is_the_default() {
        let o = with_vars(&ALL_UNSET, EnvOverrides::from_env).unwrap();
        assert_eq!(o, EnvOverrides::default());
        assert!(!o.force_treewalk);
        assert_eq!(o.sim_threads, None);
        assert_eq!(o.shard_static, None);
        assert_eq!(o.seed, None);
        assert_eq!(o.scale, ScalePreset::Quick);
        assert!(!o.bench_quick);
        assert_eq!(o.perf_gate_factor, None);
        assert_eq!(o.serve_workers, None);
        assert_eq!(o.compact_bytes, None);
    }

    #[test]
    fn valid_values_parse() {
        let o = with_vars(
            &[
                ("CCDP_FORCE_TREEWALK", Some("1")),
                ("CCDP_SIM_THREADS", Some("4")),
                ("CCDP_SHARD_STATIC", Some("0")),
                ("CCDP_SEED", Some("42")),
                ("CCDP_SCALE", Some("paper")),
                ("CCDP_BENCH_QUICK", Some("1")),
                ("CCDP_PERF_GATE_FACTOR", Some("1.5")),
                ("CCDP_SERVE_WORKERS", Some("3")),
                ("CCDP_COMPACT_BYTES", Some("65536")),
            ],
            EnvOverrides::from_env,
        )
        .unwrap();
        assert!(o.force_treewalk);
        assert_eq!(o.sim_threads, Some(4));
        assert_eq!(o.shard_static, Some(false));
        assert_eq!(o.seed, Some(42));
        assert_eq!(o.scale, ScalePreset::Paper);
        assert!(o.bench_quick);
        assert_eq!(o.perf_gate_factor, Some(1.5));
        assert_eq!(o.serve_workers, Some(3));
        assert_eq!(o.compact_bytes, Some(65536));
    }

    #[test]
    fn bad_values_are_structured_errors_naming_the_variable() {
        for (var, value) in [
            ("CCDP_FORCE_TREEWALK", "yes"),
            ("CCDP_SIM_THREADS", "0"),
            ("CCDP_SIM_THREADS", "banana"),
            ("CCDP_SIM_THREADS", "-1"),
            ("CCDP_SHARD_STATIC", "yes"),
            ("CCDP_SHARD_STATIC", "2"),
            ("CCDP_SEED", "banana"),
            ("CCDP_SCALE", "fast"),
            ("CCDP_BENCH_QUICK", "true"),
            ("CCDP_PERF_GATE_FACTOR", "lots"),
            ("CCDP_PERF_GATE_FACTOR", "-2"),
            ("CCDP_PERF_GATE_FACTOR", "0"),
            ("CCDP_SERVE_WORKERS", "0"),
            ("CCDP_SERVE_WORKERS", "two"),
            ("CCDP_COMPACT_BYTES", "big"),
        ] {
            let mut vars = ALL_UNSET;
            for v in &mut vars {
                if v.0 == var {
                    v.1 = Some(value);
                }
            }
            let err = with_vars(&vars, EnvOverrides::from_env).unwrap_err();
            assert!(
                matches!(err, PipelineError::InvalidConfig(ConfigError::BadEnv { .. })),
                "{var}: {err}"
            );
            let msg = format!("{err}");
            assert!(msg.contains(var), "{msg}");
            assert!(msg.contains(value), "{msg}");
        }
    }

    #[test]
    fn apply_widens_force_treewalk_only() {
        let mut cfg = PipelineConfig::t3d(2);
        EnvOverrides { force_treewalk: true, ..Default::default() }.apply(&mut cfg);
        assert!(cfg.sim.force_treewalk);
        // Never cleared by an unset env.
        EnvOverrides::default().apply(&mut cfg);
        assert!(cfg.sim.force_treewalk);
    }

    #[test]
    fn apply_sets_sim_threads_only_when_the_variable_was_set() {
        let mut cfg = PipelineConfig::t3d(2);
        cfg.sim.sim_threads = 3;
        EnvOverrides::default().apply(&mut cfg);
        assert_eq!(cfg.sim.sim_threads, 3, "unset env leaves the knob alone");
        EnvOverrides { sim_threads: Some(4), ..Default::default() }.apply(&mut cfg);
        assert_eq!(cfg.sim.sim_threads, 4);
    }

    #[test]
    fn apply_sets_shard_static_only_when_the_variable_was_set() {
        let mut cfg = PipelineConfig::t3d(2);
        assert!(cfg.sim.shard_static, "simulator default is on");
        EnvOverrides::default().apply(&mut cfg);
        assert!(cfg.sim.shard_static, "unset env leaves the knob alone");
        EnvOverrides { shard_static: Some(false), ..Default::default() }.apply(&mut cfg);
        assert!(!cfg.sim.shard_static);
        EnvOverrides { shard_static: Some(true), ..Default::default() }.apply(&mut cfg);
        assert!(cfg.sim.shard_static);
    }
}
