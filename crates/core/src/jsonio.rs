//! JSON serialization of pipeline comparisons.

use ccdp_json::{Json, ToJson};

use crate::pipeline::SchemeMatrix;

impl ToJson for SchemeMatrix {
    /// Scheme-indexed object form: `speedups` and `runs` are keyed by
    /// [`crate::Scheme::key`] (`"base"`, `"ccdp"`, `"inv"`, `"mesi"`,
    /// `"dragon"`), holding one entry per requested scheme.
    fn to_json(&self) -> Json {
        Json::obj([
            ("n_pes", self.n_pes.to_json()),
            (
                "speedups",
                Json::obj(
                    self.runs.iter().map(|r| (r.scheme.key(), self.speedup(r.scheme).to_json())),
                ),
            ),
            ("improvement_pct", self.improvement_pct().to_json()),
            ("stale_reads", self.stale_reads.to_json()),
            ("shared_reads", self.shared_reads.to_json()),
            ("plan_stats", self.plan_stats.to_json()),
            ("seq", self.seq.to_json()),
            (
                "runs",
                Json::obj(self.runs.iter().map(|r| (r.scheme.key(), r.result.to_json()))),
            ),
        ])
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::{compare, PipelineConfig, Scheme};
    use ccdp_ir::ProgramBuilder;

    #[test]
    fn matrix_json_has_schemes_and_metrics() {
        let mut pb = ProgramBuilder::new("j");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(b.at1(i), a.at1(63 - i).rd() + 1.0);
            });
        });
        let p = pb.finish().unwrap();
        let cmp = compare(&p, &PipelineConfig::t3d(2), &Scheme::ALL).unwrap();
        let j = cmp.to_json();
        assert_eq!(j.get("n_pes").and_then(Json::as_u64), Some(2));
        assert!(j.get("seq").unwrap().get("cycles").and_then(Json::as_u64).unwrap() > 0);
        let runs = j.get("runs").unwrap();
        let speedups = j.get("speedups").unwrap();
        for scheme in ["base", "ccdp", "inv", "mesi", "dragon"] {
            let s = runs.get(scheme).unwrap_or_else(|| panic!("missing run {scheme}"));
            assert!(s.get("cycles").and_then(Json::as_u64).unwrap() > 0);
            assert!(s.get("per_pe").is_some());
            assert!(s.get("epochs").is_some());
            assert!(speedups.get(scheme).and_then(Json::as_f64).unwrap() > 0.0);
        }
        assert!(j.get("runs").unwrap().get("ccdp").unwrap().get("prefetch_quality").is_some());
        // Serialized text parses back.
        let parsed = ccdp_json::parse(&j.to_pretty()).unwrap();
        assert_eq!(parsed.get("n_pes").and_then(Json::as_u64), Some(2));
    }
}
