//! `ccdp-core`: the end-to-end CCDP pipeline.
//!
//! This is the crate a downstream user drives:
//!
//! ```
//! use ccdp_core::{compare, PipelineConfig};
//! use ccdp_ir::ProgramBuilder;
//!
//! // A toy kernel: one epoch writes, the next reads it back reversed.
//! let mut pb = ProgramBuilder::new("demo");
//! let a = pb.shared("A", &[256]);
//! let b = pb.shared("B", &[256]);
//! pb.parallel_epoch("w", |e| {
//!     e.doall("i", 0, 255, |e, i| e.assign(a.at1(i), 2.0));
//! });
//! pb.parallel_epoch("r", |e| {
//!     e.doall("i", 0, 255, |e, i| {
//!         e.assign(b.at1(i), a.at1(255 - i).rd() * 0.5);
//!     });
//! });
//! let program = pb.finish().unwrap();
//!
//! // `compare` fails with a `PipelineError` if the generated plan ever
//! // lets a PE consume stale data.
//! let cmp = compare(&program, &PipelineConfig::t3d(4)).unwrap();
//! assert!(cmp.ccdp.oracle.is_coherent());
//! assert!(cmp.ccdp_speedup > 0.0);
//! ```
//!
//! [`compile_ccdp`] runs stale reference analysis → prefetch target analysis
//! → prefetch scheduling → materialization. [`compare`] additionally runs
//! the three machine schemes (SEQ / BASE / CCDP) and reports the paper's
//! metrics: speedup over sequential (Table 1) and percentage improvement of
//! CCDP over BASE (Table 2).

mod jsonio;
mod pipeline;
mod report;

pub use pipeline::{
    compare, compare_with_seq, compile_ccdp, run_base, run_ccdp, run_invalidate_only, run_seq,
    CcdpArtifacts, Comparison, PipelineConfig, PipelineError,
};
pub use report::{
    format_improvement_cells, format_improvement_table, format_speedup_cells,
    format_speedup_table, ComparisonRow, TableCell, TableRow,
};
