//! `ccdp-core`: the end-to-end CCDP pipeline.
//!
//! This is the crate a downstream user drives:
//!
//! ```
//! use ccdp_core::{compare, PipelineConfig, Scheme};
//! use ccdp_ir::ProgramBuilder;
//!
//! // A toy kernel: one epoch writes, the next reads it back reversed.
//! let mut pb = ProgramBuilder::new("demo");
//! let a = pb.shared("A", &[256]);
//! let b = pb.shared("B", &[256]);
//! pb.parallel_epoch("w", |e| {
//!     e.doall("i", 0, 255, |e, i| e.assign(a.at1(i), 2.0));
//! });
//! pb.parallel_epoch("r", |e| {
//!     e.doall("i", 0, 255, |e, i| {
//!         e.assign(b.at1(i), a.at1(255 - i).rd() * 0.5);
//!     });
//! });
//! let program = pb.finish().unwrap();
//!
//! // One entry point per scheme...
//! let cfg = PipelineConfig::t3d(4);
//! let ccdp = cfg.run(&program, Scheme::Ccdp).unwrap();
//! assert!(ccdp.result.oracle.is_coherent());
//!
//! // ...and an N-way comparison against the sequential denominator.
//! // `compare` fails with a `PipelineError` if any run consumes stale data.
//! let cmp = compare(&program, &cfg, &[Scheme::Base, Scheme::Ccdp, Scheme::Mesi]).unwrap();
//! assert!(cmp.speedup(Scheme::Ccdp).unwrap() > 0.0);
//! assert!(cmp.cycles(Scheme::Mesi).is_some());
//! ```
//!
//! [`compile_ccdp`] runs stale reference analysis → prefetch target analysis
//! → prefetch scheduling → materialization. [`PipelineConfig::run`] executes
//! any [`Scheme`] — the software schemes (`Base`, `Ccdp`, `InvalidateOnly`)
//! and the hardware-coherence rivals (`Mesi`, `Dragon`) — and [`compare`]
//! runs a list of them plus the sequential reference, reporting the paper's
//! metrics: speedup over sequential (Table 1) and percentage improvement of
//! CCDP over BASE (Table 2), generalized to an N-way [`SchemeMatrix`].
//!
//! Environment overrides (`CCDP_FORCE_TREEWALK`, `CCDP_SIM_THREADS`,
//! `CCDP_SEED`, `CCDP_SCALE`, `CCDP_BENCH_QUICK`, `CCDP_PERF_GATE_FACTOR`)
//! are parsed in exactly one place: [`EnvOverrides::from_env`].

mod env;
mod fingerprint;
mod jsonio;
mod pipeline;
mod report;

pub use env::{EnvOverrides, ScalePreset};
pub use fingerprint::{Fingerprint, Fingerprinter};
pub use pipeline::{
    compare, compare_with_seq, compile_ccdp, run_seq, CcdpArtifacts, PipelineConfig,
    PipelineError, Scheme, SchemeMatrix, SchemeRun,
};
pub use report::{
    format_improvement_cells, format_improvement_table, format_speedup_cells,
    format_speedup_table, MatrixRow, TableCell, TableRow,
};
