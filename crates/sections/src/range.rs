//! One-dimensional strided ranges (`lo:hi:stride` triplets).

/// A strided, inclusive integer range `lo..=hi` with step `stride`.
///
/// Invariants (maintained by all constructors):
/// * `stride >= 1`;
/// * `lo <= hi` (an empty range is represented by [`Range::empty`], a
///   canonical sentinel, never by `lo > hi`);
/// * `hi` is *aligned*: `(hi - lo) % stride == 0`, so `hi` is the last
///   element actually contained.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Range {
    lo: i64,
    hi: i64,
    stride: i64,
    empty: bool,
}

impl std::fmt::Debug for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.empty {
            write!(f, "<empty>")
        } else if self.stride == 1 {
            write!(f, "{}:{}", self.lo, self.hi)
        } else {
            write!(f, "{}:{}:{}", self.lo, self.hi, self.stride)
        }
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl Range {
    /// The canonical empty range.
    pub const fn empty() -> Self {
        Range { lo: 0, hi: -1, stride: 1, empty: true }
    }

    /// A single point.
    pub fn point(v: i64) -> Self {
        Range { lo: v, hi: v, stride: 1, empty: false }
    }

    /// A dense inclusive range; empty when `lo > hi`.
    pub fn dense(lo: i64, hi: i64) -> Self {
        Self::strided(lo, hi, 1)
    }

    /// A strided inclusive range; `hi` is clipped down to alignment.
    /// Empty when `lo > hi`. `stride <= 0` is treated as 1.
    pub fn strided(lo: i64, hi: i64, stride: i64) -> Self {
        let stride = stride.max(1);
        if lo > hi {
            return Self::empty();
        }
        let hi = hi - (hi - lo).rem_euclid(stride);
        Range { lo, hi, stride, empty: false }
    }

    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Lower bound; `None` for the empty range.
    pub fn lo(&self) -> Option<i64> {
        (!self.empty).then_some(self.lo)
    }

    /// Upper bound (last contained element); `None` for the empty range.
    pub fn hi(&self) -> Option<i64> {
        (!self.empty).then_some(self.hi)
    }

    /// Stride; 1 for the empty range.
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// Number of elements contained.
    pub fn len(&self) -> u64 {
        if self.empty {
            0
        } else {
            ((self.hi - self.lo) / self.stride + 1) as u64
        }
    }

    /// Membership test.
    pub fn contains(&self, v: i64) -> bool {
        !self.empty && v >= self.lo && v <= self.hi && (v - self.lo) % self.stride == 0
    }

    /// Exact containment: does `self` contain every element of `other`?
    pub fn contains_range(&self, other: &Range) -> bool {
        if other.empty {
            return true;
        }
        if self.empty {
            return false;
        }
        if other.lo < self.lo || other.hi > self.hi {
            return false;
        }
        // Every element of `other` must be on `self`'s lattice.
        if (other.lo - self.lo) % self.stride != 0 {
            return false;
        }
        other.stride % self.stride == 0 || other.lo == other.hi
    }

    /// Do the two ranges share at least one element?
    ///
    /// Exact for all stride combinations (solves the congruence with gcd).
    pub fn intersects(&self, other: &Range) -> bool {
        if self.empty || other.empty {
            return false;
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            return false;
        }
        // Solve x ≡ self.lo (mod s), x ≡ other.lo (mod t) for x in [lo, hi].
        let s = self.stride;
        let t = other.stride;
        let g = gcd(s, t);
        if (other.lo - self.lo) % g != 0 {
            return false;
        }
        // There is a solution modulo lcm(s, t); find the smallest >= lo.
        let l = s / g * t; // lcm
        // Find one solution via extended gcd: self.lo + s*k ≡ other.lo (mod t)
        // => k ≡ (other.lo - self.lo)/g * inv(s/g) (mod t/g)
        let (tg, sg) = (t / g, s / g);
        let inv = mod_inverse(sg.rem_euclid(tg), tg);
        let k0 = ((other.lo - self.lo) / g).rem_euclid(tg) * inv % tg;
        let x0 = self.lo + s * k0.rem_euclid(tg);
        // x0 is a solution; shift into [lo, hi].
        let x = if x0 >= lo {
            x0 - (x0 - lo) / l * l
        } else {
            x0 + (lo - x0 + l - 1) / l * l
        };
        x >= lo && x <= hi
    }

    /// Conservative intersection: a range containing at least the true
    /// intersection (exact when strides divide evenly; otherwise the bounding
    /// dense range of the overlap, or empty when provably disjoint).
    pub fn intersect_approx(&self, other: &Range) -> Range {
        if !self.intersects(other) {
            return Range::empty();
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if self.stride == other.stride && (other.lo - self.lo) % self.stride == 0 {
            // Same lattice: exact.
            let s = self.stride;
            let lo = lo + (self.lo - lo).rem_euclid(s);
            return Range::strided(lo, hi, s);
        }
        Range::dense(lo, hi)
    }

    /// Smallest dense-or-strided range containing both (the convex/stride
    /// hull). Used when unioning would exceed the set budget.
    pub fn hull(&self, other: &Range) -> Range {
        if self.empty {
            return *other;
        }
        if other.empty {
            return *self;
        }
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let mut g = gcd(self.stride, other.stride);
        g = gcd(g, (other.lo - self.lo).abs().max(1));
        if g == 0 {
            g = 1;
        }
        Range::strided(lo, hi, g)
    }

    /// Would a union of the two ranges be exactly representable as one range?
    pub fn union_exact(&self, other: &Range) -> Option<Range> {
        if self.empty {
            return Some(*other);
        }
        if other.empty {
            return Some(*self);
        }
        // Adjacent or overlapping dense ranges.
        if self.stride == 1 && other.stride == 1 {
            if self.lo.max(other.lo) <= self.hi.min(other.hi) + 1 {
                return Some(Range::dense(self.lo.min(other.lo), self.hi.max(other.hi)));
            }
            return None;
        }
        // Same stride, same lattice, overlapping-or-abutting.
        if self.stride == other.stride && (other.lo - self.lo) % self.stride == 0 {
            let s = self.stride;
            if self.lo.max(other.lo) <= self.hi.min(other.hi) + s {
                return Some(Range::strided(
                    self.lo.min(other.lo),
                    self.hi.max(other.hi),
                    s,
                ));
            }
        }
        if self.contains_range(other) {
            return Some(*self);
        }
        if other.contains_range(self) {
            return Some(*other);
        }
        None
    }

    /// Iterate over contained values (small ranges only; used by tests and
    /// by the simulator for prefetch address generation).
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let (lo, hi, stride, empty) = (self.lo, self.hi, self.stride, self.empty);
        (0..)
            .map(move |k| lo + k * stride)
            .take_while(move |&v| !empty && v <= hi)
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse of `a` modulo `m` (requires `gcd(a, m) == 1`; returns 0
/// for `m == 1`).
fn mod_inverse(a: i64, m: i64) -> i64 {
    if m == 1 {
        return 0;
    }
    let (mut t, mut new_t) = (0i64, 1i64);
    let (mut r, mut new_r) = (m, a.rem_euclid(m));
    while new_r != 0 {
        let q = r / new_r;
        (t, new_t) = (new_t, t - q * new_t);
        (r, new_r) = (new_r, r - q * new_r);
    }
    debug_assert_eq!(r, 1, "mod_inverse requires coprime inputs");
    t.rem_euclid(m)
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn empty_basics() {
        let e = Range::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(0));
        assert_eq!(e.lo(), None);
        assert_eq!(e.hi(), None);
    }

    #[test]
    fn dense_construction_and_membership() {
        let r = Range::dense(3, 7);
        assert_eq!(r.len(), 5);
        assert!(r.contains(3) && r.contains(7) && r.contains(5));
        assert!(!r.contains(2) && !r.contains(8));
    }

    #[test]
    fn inverted_bounds_are_empty() {
        assert!(Range::dense(5, 4).is_empty());
        assert!(Range::strided(10, 3, 2).is_empty());
    }

    #[test]
    fn strided_hi_alignment() {
        let r = Range::strided(0, 10, 3);
        assert_eq!(r.hi(), Some(9));
        assert_eq!(r.len(), 4); // 0 3 6 9
        assert!(r.contains(9) && !r.contains(10));
    }

    #[test]
    fn nonpositive_stride_treated_as_one() {
        let r = Range::strided(0, 4, 0);
        assert_eq!(r.stride(), 1);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn containment() {
        let big = Range::strided(0, 100, 2);
        assert!(big.contains_range(&Range::strided(10, 20, 4)));
        assert!(big.contains_range(&Range::point(42)));
        assert!(!big.contains_range(&Range::point(41)));
        assert!(!big.contains_range(&Range::strided(1, 21, 4)));
        assert!(big.contains_range(&Range::empty()));
        assert!(!Range::empty().contains_range(&Range::point(0)));
    }

    #[test]
    fn intersection_same_stride() {
        let a = Range::strided(0, 20, 2);
        let b = Range::strided(10, 30, 2);
        assert!(a.intersects(&b));
        let i = a.intersect_approx(&b);
        assert_eq!(i, Range::strided(10, 20, 2));
    }

    #[test]
    fn intersection_coprime_strides() {
        // 0,3,6,9,... vs 0,5,10,... meet at 0, 15, 30...
        let a = Range::strided(0, 14, 3);
        let b = Range::strided(5, 14, 5);
        // common elements within [5,14]: none (15 is out of range)
        assert!(!a.intersects(&b));
        let b2 = Range::strided(5, 15, 5);
        let a2 = Range::strided(0, 15, 3);
        assert!(a2.intersects(&b2)); // 15
    }

    #[test]
    fn intersection_offset_lattices_disjoint() {
        let evens = Range::strided(0, 100, 2);
        let odds = Range::strided(1, 99, 2);
        assert!(!evens.intersects(&odds));
        assert!(evens.intersect_approx(&odds).is_empty());
    }

    #[test]
    fn hull_covers_both() {
        let a = Range::strided(0, 8, 4);
        let b = Range::strided(2, 10, 4);
        let h = a.hull(&b);
        for v in a.iter().chain(b.iter()) {
            assert!(h.contains(v), "{h:?} missing {v}");
        }
    }

    #[test]
    fn union_exact_dense_adjacent() {
        let a = Range::dense(0, 4);
        let b = Range::dense(5, 9);
        assert_eq!(a.union_exact(&b), Some(Range::dense(0, 9)));
        let c = Range::dense(6, 9);
        assert_eq!(a.union_exact(&c), None);
    }

    #[test]
    fn union_exact_strided_same_lattice() {
        let a = Range::strided(0, 8, 2);
        let b = Range::strided(10, 16, 2);
        assert_eq!(a.union_exact(&b), Some(Range::strided(0, 16, 2)));
        let off = Range::strided(11, 15, 2);
        assert_eq!(a.union_exact(&off), None);
    }

    #[test]
    fn iter_matches_membership() {
        let r = Range::strided(-6, 6, 3);
        let vals: Vec<i64> = r.iter().collect();
        assert_eq!(vals, vec![-6, -3, 0, 3, 6]);
    }
}
