//! Multi-dimensional bounded regular sections.

use crate::Range;

/// A bounded regular section: the cartesian product of one [`Range`] per
/// array dimension. `A(1:10:2, 5)` is `Section([1:10:2, 5:5])`.
///
/// A section with *any* empty dimension is empty; the canonical empty
/// section keeps its rank so dimension-wise operations stay well-formed.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Section {
    dims: Vec<Range>,
}

impl std::fmt::Debug for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d:?}")?;
        }
        write!(f, ")")
    }
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl Section {
    /// Build from per-dimension ranges.
    pub fn new(dims: Vec<Range>) -> Self {
        Section { dims }
    }

    /// The empty section of a given rank.
    pub fn empty(rank: usize) -> Self {
        Section { dims: vec![Range::empty(); rank] }
    }

    /// A single element.
    pub fn point(coords: &[i64]) -> Self {
        Section { dims: coords.iter().map(|&c| Range::point(c)).collect() }
    }

    /// The full section of a rectangular array with the given extents
    /// (dimension `d` covers `0..extents[d]`).
    pub fn whole(extents: &[usize]) -> Self {
        Section {
            dims: extents.iter().map(|&e| Range::dense(0, e as i64 - 1)).collect(),
        }
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    pub fn dims(&self) -> &[Range] {
        &self.dims
    }

    pub fn dim(&self, d: usize) -> &Range {
        &self.dims[d]
    }

    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Range::is_empty)
    }

    /// Number of elements covered (0 when empty).
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.dims.iter().map(Range::len).product()
        }
    }

    /// Membership test for a coordinate vector.
    pub fn contains(&self, coords: &[i64]) -> bool {
        debug_assert_eq!(coords.len(), self.dims.len());
        !self.is_empty() && coords.iter().zip(&self.dims).all(|(&c, d)| d.contains(c))
    }

    /// Does `self` contain all of `other`? (Exact.)
    pub fn contains_section(&self, other: &Section) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        debug_assert_eq!(self.rank(), other.rank());
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(a, b)| a.contains_range(b))
    }

    /// Do the two sections share at least one element? (Exact.)
    pub fn intersects(&self, other: &Section) -> bool {
        debug_assert_eq!(self.rank(), other.rank());
        !self.is_empty()
            && !other.is_empty()
            && self.dims.iter().zip(&other.dims).all(|(a, b)| a.intersects(b))
    }

    /// Conservative intersection (contains at least the true intersection).
    pub fn intersect_approx(&self, other: &Section) -> Section {
        debug_assert_eq!(self.rank(), other.rank());
        if !self.intersects(other) {
            return Section::empty(self.rank());
        }
        Section {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.intersect_approx(b))
                .collect(),
        }
    }

    /// Dimension-wise hull: smallest section (per-dim) containing both.
    pub fn hull(&self, other: &Section) -> Section {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        debug_assert_eq!(self.rank(), other.rank());
        Section {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        }
    }

    /// Exact union when the two sections differ in at most one dimension and
    /// that dimension unions exactly; `None` otherwise.
    pub fn union_exact(&self, other: &Section) -> Option<Section> {
        if self.is_empty() {
            return Some(other.clone());
        }
        if other.is_empty() {
            return Some(self.clone());
        }
        if self.contains_section(other) {
            return Some(self.clone());
        }
        if other.contains_section(self) {
            return Some(other.clone());
        }
        debug_assert_eq!(self.rank(), other.rank());
        let mut differing = None;
        for d in 0..self.rank() {
            if self.dims[d] != other.dims[d] {
                if differing.is_some() {
                    return None;
                }
                differing = Some(d);
            }
        }
        let d = differing?;
        let merged = self.dims[d].union_exact(&other.dims[d])?;
        let mut dims = self.dims.clone();
        dims[d] = merged;
        Some(Section { dims })
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn sec(dims: &[(i64, i64, i64)]) -> Section {
        Section::new(dims.iter().map(|&(l, h, s)| Range::strided(l, h, s)).collect())
    }

    #[test]
    fn whole_and_len() {
        let s = Section::whole(&[4, 5]);
        assert_eq!(s.len(), 20);
        assert!(s.contains(&[0, 0]) && s.contains(&[3, 4]));
        assert!(!s.contains(&[4, 0]));
    }

    #[test]
    fn empty_dimension_makes_section_empty() {
        let s = Section::new(vec![Range::dense(0, 3), Range::empty()]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(&[0, 0]));
    }

    #[test]
    fn containment_2d() {
        let big = sec(&[(0, 99, 1), (0, 99, 1)]);
        let small = sec(&[(10, 20, 2), (5, 5, 1)]);
        assert!(big.contains_section(&small));
        assert!(!small.contains_section(&big));
    }

    #[test]
    fn disjoint_columns_dont_intersect() {
        let col0 = sec(&[(0, 99, 1), (0, 9, 1)]);
        let col1 = sec(&[(0, 99, 1), (10, 19, 1)]);
        assert!(!col0.intersects(&col1));
        assert!(col0.intersect_approx(&col1).is_empty());
    }

    #[test]
    fn intersect_approx_is_superset_of_truth() {
        let a = sec(&[(0, 20, 2), (0, 30, 3)]);
        let b = sec(&[(10, 30, 2), (15, 45, 5)]);
        let i = a.intersect_approx(&b);
        // Every genuinely shared point must be in the approximation.
        for x in 0..=30 {
            for y in 0..=45 {
                if a.contains(&[x, y]) && b.contains(&[x, y]) {
                    assert!(i.contains(&[x, y]));
                }
            }
        }
    }

    #[test]
    fn union_exact_adjacent_blocks() {
        let left = sec(&[(0, 99, 1), (0, 9, 1)]);
        let right = sec(&[(0, 99, 1), (10, 19, 1)]);
        let u = left.union_exact(&right).expect("adjacent column blocks merge");
        assert_eq!(u, sec(&[(0, 99, 1), (0, 19, 1)]));
    }

    #[test]
    fn union_exact_rejects_l_shapes() {
        let a = sec(&[(0, 9, 1), (0, 9, 1)]);
        let b = sec(&[(0, 19, 1), (10, 19, 1)]);
        assert_eq!(a.union_exact(&b), None);
    }

    #[test]
    fn hull_is_superset() {
        let a = sec(&[(0, 4, 2), (7, 7, 1)]);
        let b = sec(&[(1, 9, 4), (0, 3, 1)]);
        let h = a.hull(&b);
        assert!(h.contains(&[0, 7]) && h.contains(&[9, 0]));
    }
}
