//! Small unions of sections with conservative widening.

use crate::Section;

/// Budget: maximum number of disjoint sections kept before widening to the
/// dimension-wise hull. Epoch write/read summaries in the four paper kernels
/// need at most a handful of sections; the budget bounds analysis cost on
/// adversarial inputs.
pub const DEFAULT_BUDGET: usize = 8;

/// A union of [`Section`]s of equal rank, used as the data-flow value of the
/// stale reference analysis ("which elements of array A may have been written
/// by a foreign PE since this PE last fetched them").
///
/// `Top` means "all of the array (and then some)" — the safe
/// over-approximation after widening or for non-affine references.
#[derive(Clone, PartialEq, Eq)]
pub enum SectionSet {
    /// Everything: the unknown / widened element.
    Top { rank: usize },
    /// A finite union of sections.
    Union { rank: usize, parts: Vec<Section> },
}

impl std::fmt::Debug for SectionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SectionSet::Top { .. } => write!(f, "⊤"),
            SectionSet::Union { parts, .. } => {
                if parts.is_empty() {
                    return write!(f, "∅");
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∪ ")?;
                    }
                    write!(f, "{p:?}")?;
                }
                Ok(())
            }
        }
    }
}

impl SectionSet {
    /// The empty set of a given rank.
    pub fn bottom(rank: usize) -> Self {
        SectionSet::Union { rank, parts: Vec::new() }
    }

    /// The universal set of a given rank.
    pub fn top(rank: usize) -> Self {
        SectionSet::Top { rank }
    }

    /// A set holding one section.
    pub fn from_section(s: Section) -> Self {
        let rank = s.rank();
        if s.is_empty() {
            Self::bottom(rank)
        } else {
            SectionSet::Union { rank, parts: vec![s] }
        }
    }

    pub fn rank(&self) -> usize {
        match self {
            SectionSet::Top { rank } | SectionSet::Union { rank, .. } => *rank,
        }
    }

    pub fn is_top(&self) -> bool {
        matches!(self, SectionSet::Top { .. })
    }

    pub fn is_empty(&self) -> bool {
        match self {
            SectionSet::Top { .. } => false,
            SectionSet::Union { parts, .. } => parts.is_empty(),
        }
    }

    pub fn parts(&self) -> &[Section] {
        match self {
            SectionSet::Top { .. } => &[],
            SectionSet::Union { parts, .. } => parts,
        }
    }

    /// Add one section, merging exactly where possible and widening to the
    /// hull-of-everything when the budget is exceeded.
    pub fn insert(&mut self, s: Section) {
        self.insert_with_budget(s, DEFAULT_BUDGET);
    }

    /// [`SectionSet::insert`] with an explicit budget (tests use small ones).
    pub fn insert_with_budget(&mut self, s: Section, budget: usize) {
        if s.is_empty() {
            return;
        }
        let (rank, parts) = match self {
            SectionSet::Top { .. } => return,
            SectionSet::Union { rank, parts } => (*rank, parts),
        };
        debug_assert_eq!(s.rank(), rank);
        // Try to merge exactly with an existing part; repeat until fixpoint
        // because a merge can enable further merges.
        let mut pending = s;
        loop {
            let mut merged = None;
            for (i, p) in parts.iter().enumerate() {
                if let Some(u) = p.union_exact(&pending) {
                    merged = Some((i, u));
                    break;
                }
            }
            match merged {
                Some((i, u)) => {
                    parts.swap_remove(i);
                    pending = u;
                }
                None => {
                    parts.push(pending);
                    break;
                }
            }
        }
        if parts.len() > budget {
            // Widen: collapse to a single hull. Still sound (superset).
            let mut hull = parts[0].clone();
            for p in &parts[1..] {
                hull = hull.hull(p);
            }
            *self = SectionSet::Union { rank, parts: vec![hull] };
        }
    }

    /// In-place union with another set.
    pub fn union_with(&mut self, other: &SectionSet) {
        if other.is_top() {
            *self = SectionSet::top(self.rank());
            return;
        }
        for p in other.parts() {
            self.insert(p.clone());
        }
    }

    /// Does the set possibly share an element with `s`? Exact per-part;
    /// `Top` intersects everything non-empty.
    pub fn intersects_section(&self, s: &Section) -> bool {
        if s.is_empty() {
            return false;
        }
        match self {
            SectionSet::Top { .. } => true,
            SectionSet::Union { parts, .. } => parts.iter().any(|p| p.intersects(s)),
        }
    }

    /// Does the set possibly share an element with another set?
    pub fn intersects(&self, other: &SectionSet) -> bool {
        match (self, other) {
            (SectionSet::Top { .. }, o) => !o.is_empty(),
            (s, SectionSet::Top { .. }) => !s.is_empty(),
            _ => other.parts().iter().any(|p| self.intersects_section(p)),
        }
    }

    /// Is `s` certainly covered by the set? (May answer `false` for covered
    /// inputs that straddle parts — conservative in the direction that makes
    /// *callers* conservative, since cover proofs are used to prove cleanness.)
    pub fn covers_section(&self, s: &Section) -> bool {
        if s.is_empty() {
            return true;
        }
        match self {
            SectionSet::Top { .. } => true,
            SectionSet::Union { parts, .. } => {
                parts.iter().any(|p| p.contains_section(s))
            }
        }
    }

    /// Total number of elements (u64::MAX for Top). Upper bound, since parts
    /// may overlap.
    pub fn len_upper_bound(&self) -> u64 {
        match self {
            SectionSet::Top { .. } => u64::MAX,
            SectionSet::Union { parts, .. } => {
                parts.iter().map(Section::len).fold(0u64, u64::saturating_add)
            }
        }
    }

    /// Membership of a single coordinate (Top contains everything).
    pub fn contains(&self, coords: &[i64]) -> bool {
        match self {
            SectionSet::Top { .. } => true,
            SectionSet::Union { parts, .. } => parts.iter().any(|p| p.contains(coords)),
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::Range;

    fn block(col_lo: i64, col_hi: i64) -> Section {
        Section::new(vec![Range::dense(0, 99), Range::dense(col_lo, col_hi)])
    }

    #[test]
    fn bottom_and_top() {
        let b = SectionSet::bottom(2);
        let t = SectionSet::top(2);
        assert!(b.is_empty() && !t.is_empty());
        assert!(t.intersects(&SectionSet::from_section(block(0, 0))));
        assert!(!b.intersects(&t));
    }

    #[test]
    fn insert_merges_adjacent_blocks() {
        let mut s = SectionSet::bottom(2);
        s.insert(block(0, 9));
        s.insert(block(10, 19));
        s.insert(block(20, 29));
        assert_eq!(s.parts().len(), 1);
        assert!(s.covers_section(&block(0, 29)));
    }

    #[test]
    fn insert_keeps_disjoint_blocks_separate() {
        let mut s = SectionSet::bottom(2);
        s.insert(block(0, 9));
        s.insert(block(50, 59));
        assert_eq!(s.parts().len(), 2);
        assert!(!s.intersects_section(&block(20, 30)));
        assert!(s.intersects_section(&block(5, 52)));
    }

    #[test]
    fn widening_is_sound() {
        let mut s = SectionSet::bottom(2);
        for k in 0..6 {
            s.insert_with_budget(block(k * 20, k * 20 + 5), 3);
        }
        // After widening everything originally inserted is still contained.
        for k in 0..6 {
            assert!(
                s.covers_section(&block(k * 20, k * 20 + 5)),
                "widened set must cover inserted part {k}"
            );
        }
    }

    #[test]
    fn union_with_top_absorbs() {
        let mut s = SectionSet::from_section(block(0, 3));
        s.union_with(&SectionSet::top(2));
        assert!(s.is_top());
    }

    #[test]
    fn covers_is_conservative_not_crazy() {
        let s = SectionSet::from_section(block(0, 9));
        assert!(s.covers_section(&block(2, 7)));
        assert!(!s.covers_section(&block(5, 12)));
    }
}
