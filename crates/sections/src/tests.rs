//! Property tests for the section algebra.
//!
//! The contract under test everywhere: approximations must *over*-approximate
//! (soundness for coherence) and exact predicates must agree with brute-force
//! enumeration on small domains.

use crate::{Range, Section, SectionSet};
use proptest::prelude::*;

fn arb_range() -> impl Strategy<Value = Range> {
    (
        -20i64..20,
        0i64..30,
        1i64..6,
        proptest::bool::weighted(0.1),
    )
        .prop_map(|(lo, span, stride, empty)| {
            if empty {
                Range::empty()
            } else {
                Range::strided(lo, lo + span, stride)
            }
        })
}

fn arb_section(rank: usize) -> impl Strategy<Value = Section> {
    proptest::collection::vec(arb_range(), rank).prop_map(Section::new)
}

fn enumerate(r: &Range) -> Vec<i64> {
    r.iter().collect()
}

proptest! {
    #[test]
    fn range_len_matches_enumeration(r in arb_range()) {
        prop_assert_eq!(r.len() as usize, enumerate(&r).len());
    }

    #[test]
    fn range_contains_matches_enumeration(r in arb_range(), v in -40i64..60) {
        prop_assert_eq!(r.contains(v), enumerate(&r).contains(&v));
    }

    #[test]
    fn range_intersects_is_exact(a in arb_range(), b in arb_range()) {
        let brute = enumerate(&a).iter().any(|v| b.contains(*v));
        prop_assert_eq!(a.intersects(&b), brute, "a={:?} b={:?}", a, b);
    }

    #[test]
    fn range_intersect_approx_is_superset(a in arb_range(), b in arb_range()) {
        let i = a.intersect_approx(&b);
        for v in enumerate(&a) {
            if b.contains(v) {
                prop_assert!(i.contains(v), "approx {:?} misses {} of {:?}∩{:?}", i, v, a, b);
            }
        }
    }

    #[test]
    fn range_contains_range_is_exact(a in arb_range(), b in arb_range()) {
        let brute = enumerate(&b).iter().all(|v| a.contains(*v));
        prop_assert_eq!(a.contains_range(&b), brute, "a={:?} b={:?}", a, b);
    }

    #[test]
    fn range_hull_is_superset(a in arb_range(), b in arb_range()) {
        let h = a.hull(&b);
        for v in enumerate(&a).into_iter().chain(enumerate(&b)) {
            prop_assert!(h.contains(v));
        }
    }

    #[test]
    fn range_union_exact_is_exact(a in arb_range(), b in arb_range()) {
        if let Some(u) = a.union_exact(&b) {
            // u must be exactly the union, element for element.
            let mut want: Vec<i64> = enumerate(&a).into_iter().chain(enumerate(&b)).collect();
            want.sort_unstable();
            want.dedup();
            let got = enumerate(&u);
            prop_assert_eq!(got, want, "a={:?} b={:?} u={:?}", a, b, u);
        }
    }

    #[test]
    fn section_intersects_is_exact_2d(a in arb_section(2), b in arb_section(2)) {
        let mut brute = false;
        'outer: for x in enumerate(a.dim(0)) {
            for y in enumerate(a.dim(1)) {
                if b.contains(&[x, y]) {
                    brute = true;
                    break 'outer;
                }
            }
        }
        prop_assert_eq!(a.intersects(&b), brute);
    }

    #[test]
    fn section_union_exact_is_exact_2d(a in arb_section(2), b in arb_section(2)) {
        if let Some(u) = a.union_exact(&b) {
            for x in -25i64..55 {
                for y in -25i64..55 {
                    let want = a.contains(&[x, y]) || b.contains(&[x, y]);
                    prop_assert_eq!(u.contains(&[x, y]), want,
                        "at ({}, {}): a={:?} b={:?} u={:?}", x, y, a, b, u);
                }
            }
        }
    }

    #[test]
    fn set_insert_preserves_membership(
        secs in proptest::collection::vec(arb_section(2), 1..12),
        probe in (-25i64..55, -25i64..55),
    ) {
        let mut set = SectionSet::bottom(2);
        for s in &secs {
            set.insert_with_budget(s.clone(), 3); // tiny budget: force widening
        }
        let (x, y) = probe;
        let in_any = secs.iter().any(|s| s.contains(&[x, y]));
        if in_any {
            prop_assert!(set.contains(&[x, y]), "widened set lost a member");
        }
    }

    #[test]
    fn set_intersects_no_false_negatives(
        secs in proptest::collection::vec(arb_section(2), 1..6),
        probe in arb_section(2),
    ) {
        let mut set = SectionSet::bottom(2);
        for s in &secs {
            set.insert(s.clone());
        }
        let truly = secs.iter().any(|s| s.intersects(&probe));
        if truly {
            prop_assert!(set.intersects_section(&probe));
        }
    }

    #[test]
    fn set_covers_no_false_positives(
        secs in proptest::collection::vec(arb_section(2), 1..6),
        probe in arb_section(2),
    ) {
        let mut set = SectionSet::bottom(2);
        for s in &secs {
            set.insert(s.clone());
        }
        if set.covers_section(&probe) && !probe.is_empty() {
            // Every element of probe must genuinely be in the set.
            for x in enumerate(probe.dim(0)) {
                for y in enumerate(probe.dim(1)) {
                    prop_assert!(set.contains(&[x, y]));
                }
            }
        }
    }
}
