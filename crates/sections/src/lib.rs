//! Bounded regular array sections and their arithmetic.
//!
//! Array data-flow analyses in the CCDP scheme (stale reference analysis,
//! prefetch target analysis) summarize the set of array elements touched by a
//! reference, a loop, an epoch, or a whole routine as a *bounded regular
//! section* (BRS): one `lo:hi:stride` triplet per array dimension, the same
//! representation used by the Choi–Yew analyses the paper builds on.
//!
//! The lattice used by clients is [`SectionSet`]: a small union of
//! [`Section`]s with a conservative widening to [`SectionSet::top`] when the
//! union grows past a budget. All operations are *conservative in the safe
//! direction for coherence*: over-approximating a write set or a read set can
//! only cause extra references to be classified potentially-stale (costing
//! performance, never correctness).

mod range;
mod section;
mod set;

pub use range::Range;
pub use section::Section;
pub use set::SectionSet;

#[cfg(test)]
mod tests;
