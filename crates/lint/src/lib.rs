//! `ccdp-lint`: static coherence-soundness verifier for CCDP prefetch plans.
//!
//! CCDP makes the *compiler* the coherence mechanism (paper §4), so a bug in
//! stale-reference analysis or prefetch scheduling is silently a memory-
//! consistency bug. This crate is the independent auditor: it re-derives the
//! coverage obligations from first principles
//! ([`ccdp_analysis::verify::coverage_obligations`]) and then proves, against
//! the **transformed** program and its [`PrefetchPlan`], that the plan
//! discharges every one of them:
//!
//! * every potentially-stale read is handled [`Handling::Fresh`] — with an
//!   in-phase prefetch construct that actually covers its section (placement
//!   chain, vector-length/queue hardware constraints, leader-covers-followers
//!   group-spatial containment) — or [`Handling::Bypass`];
//! * no prefetch is dead (covers nothing stale) without being accounted in
//!   `PlanStats::clean_prefetch`;
//! * `Repeat` back-edges and multi-phase cross-phase writes are honored (the
//!   obligations inherit both from the verifier's epoch data-flow);
//! * write-write overlap between PEs inside one parallel phase is flagged as
//!   a race regardless of the plan.
//!
//! Findings carry stable lint codes, severities, and source locations
//! rendered with `ir::print`'s affine formatter, in deterministic order:
//!
//! | code    | name                 | severity | meaning                            |
//! |---------|----------------------|----------|------------------------------------|
//! | CCDP001 | uncovered-stale-read | error    | stale read not Fresh+covered/Bypass|
//! | CCDP002 | dead-prefetch        | warning  | prefetch covers nothing stale      |
//! | CCDP003 | phase-race           | error    | cross-PE write overlap in one phase|
//! | CCDP004 | vpg-overflow         | error    | vector prefetch exceeds the cache  |
//! | CCDP005 | sp-queue-overflow    | error    | pipelined distance overflows queue |
//! | CCDP006 | shard-conflict       | warning  | PE blocks may share a cache line   |
//! | CCDP007 | shard-unknown        | warning  | shard footprints not statically bounded |
//!
//! CCDP006/007 come from [`verify_sharding`] — the static shard-independence
//! audit (`analysis::shard`) — not from [`verify`]: they are warnings, not
//! soundness errors, because a non-`Disjoint` epoch still executes correctly
//! (the simulator keeps its dynamic conflict log); it merely cannot take the
//! proven log-free fork/join fast path.
//!
//! Known precision limits (documented, not bugs): CCDP003 only examines
//! writes with exact per-PE sections (PE-specific, no wrapper-loop variable,
//! at most one loop variable per subscript dimension) — bounding-box and
//! dynamically-scheduled writes are skipped rather than risk false races.
//! Prefetch placement is checked by loop-chain identity, not by statement
//! order within a block; a construct placed late in its phase still counts
//! as coverage (the `Fresh` re-fetch path keeps that case coherent, at
//! latency cost only).

use std::collections::HashMap;

use ccdp_analysis::verify::{coverage_obligations, EpochObligations, Obligations};
use ccdp_analysis::{find_uniform_groups, group_spatial};
use ccdp_dist::{doall_range_for_pe, Layout};
use ccdp_ir::{
    collect_refs_in_stmts, fmt_affine, Affine, ArrayId, ArrayRef, CollectedRef, Epoch, LoopCtx,
    LoopId, LoopKind, PrefetchKind, Program, RefAccess, RefId, Stmt,
};
use ccdp_json::{Json, ToJson};
use ccdp_prefetch::{Handling, PrefetchPlan, ScheduleOptions};

/// Severity of a finding. Only `Error` makes a plan unsound.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable lint codes (see the crate docs for the table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LintCode {
    UncoveredStaleRead,
    DeadPrefetch,
    PhaseRace,
    VpgOverflow,
    SpQueueOverflow,
    ShardConflict,
    ShardUnknown,
}

impl LintCode {
    pub const ALL: [LintCode; 7] = [
        LintCode::UncoveredStaleRead,
        LintCode::DeadPrefetch,
        LintCode::PhaseRace,
        LintCode::VpgOverflow,
        LintCode::SpQueueOverflow,
        LintCode::ShardConflict,
        LintCode::ShardUnknown,
    ];

    pub fn code(self) -> &'static str {
        match self {
            LintCode::UncoveredStaleRead => "CCDP001",
            LintCode::DeadPrefetch => "CCDP002",
            LintCode::PhaseRace => "CCDP003",
            LintCode::VpgOverflow => "CCDP004",
            LintCode::SpQueueOverflow => "CCDP005",
            LintCode::ShardConflict => "CCDP006",
            LintCode::ShardUnknown => "CCDP007",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            LintCode::UncoveredStaleRead => "uncovered-stale-read",
            LintCode::DeadPrefetch => "dead-prefetch",
            LintCode::PhaseRace => "phase-race",
            LintCode::VpgOverflow => "vpg-overflow",
            LintCode::SpQueueOverflow => "sp-queue-overflow",
            LintCode::ShardConflict => "shard-conflict",
            LintCode::ShardUnknown => "shard-unknown",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            LintCode::DeadPrefetch
            | LintCode::ShardConflict
            | LintCode::ShardUnknown => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One diagnostic: code, severity, the epoch it concerns, the reference (if
/// any), a rendered source location, and a human-readable message.
#[derive(Clone, Debug)]
pub struct Finding {
    pub code: LintCode,
    pub severity: Severity,
    pub epoch: String,
    pub rid: Option<RefId>,
    pub location: String,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{} {}] epoch `{}`: {}: {}",
            self.severity.as_str(),
            self.code.code(),
            self.code.name(),
            self.epoch,
            self.location,
            self.message
        )
    }
}

impl Finding {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", self.code.code().to_json()),
            ("name", self.code.name().to_json()),
            ("severity", self.severity.as_str().to_json()),
            ("epoch", self.epoch.as_str().to_json()),
            (
                "ref",
                match self.rid {
                    Some(r) => (r.index() as u64).to_json(),
                    None => Json::Null,
                },
            ),
            ("location", self.location.as_str().to_json()),
            ("message", self.message.as_str().to_json()),
        ])
    }
}

/// The verifier's verdict over one (program, plan, layout) triple.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Deterministic order: epochs in schedule order; within an epoch races,
    /// then uncovered reads (by `RefId`), then per-construct findings in
    /// program order; clean-prefetch accounting last.
    pub findings: Vec<Finding>,
    /// Total read obligations the plan had to discharge.
    pub n_obligations: usize,
    /// Total prefetch constructs (statements + pipeline annotations) audited.
    pub n_prefetches: usize,
}

impl LintReport {
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warning).count()
    }

    /// Sound = no error-severity finding. Warnings are advisory.
    pub fn is_sound(&self) -> bool {
        self.errors() == 0
    }

    /// All findings rendered one per line (diagnostics output of the `lint`
    /// bin and of `PipelineError::Unsound`).
    pub fn render(&self) -> String {
        self.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("obligations", self.n_obligations.to_json()),
            ("prefetches", self.n_prefetches.to_json()),
            ("errors", self.errors().to_json()),
            ("warnings", self.warnings().to_json()),
            ("findings", Json::arr(self.findings.iter().map(Finding::to_json))),
        ])
    }
}

/// Hardware-model knobs the verifier checks constructs against. Defaults
/// match [`ScheduleOptions::default`]; when auditing a plan produced with
/// non-default options, build with [`LintOptions::from_schedule`].
#[derive(Clone, Copy, Debug)]
pub struct LintOptions {
    /// Cache line size in words (group-spatial containment).
    pub line_words: usize,
    /// Vector prefetch footprint cap in words (CCDP004).
    pub vpg_max_words: u64,
    /// Prefetch queue capacity in words (CCDP005).
    pub queue_words: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions::from_schedule(&ScheduleOptions::default())
    }
}

impl LintOptions {
    pub fn from_schedule(s: &ScheduleOptions) -> Self {
        LintOptions {
            line_words: s.line_words,
            vpg_max_words: s.vpg_max_words,
            queue_words: s.queue_words,
        }
    }
}

/// One materialized prefetch with the loop context the auditor needs. For a
/// pipelined annotation the chain *includes* the annotated loop (last).
struct Construct {
    covers: RefId,
    array: ArrayId,
    kind: ConstructKind,
    chain: Vec<LoopCtx>,
}

enum ConstructKind {
    Line { index: Vec<Affine> },
    Vector { over: Vec<LoopId> },
    Pipe { index: Vec<Affine>, distance: u32, every: u32 },
}

impl Construct {
    fn describe(&self) -> &'static str {
        match self.kind {
            ConstructKind::Line { .. } => "line prefetch",
            ConstructKind::Vector { .. } => "vector prefetch",
            ConstructKind::Pipe { .. } => "pipelined prefetch",
        }
    }
}

fn body_has_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Loop(_) => true,
        Stmt::If(i) => body_has_loop(&i.then_branch) || body_has_loop(&i.else_branch),
        _ => false,
    })
}

fn ctx_of(l: &ccdp_ir::Loop) -> LoopCtx {
    LoopCtx {
        id: l.id,
        var: l.var,
        lo: l.lo.clone(),
        hi: l.hi.clone(),
        step: l.step,
        kind: l.kind,
        align: l.align,
        is_innermost: !body_has_loop(&l.body),
    }
}

fn collect_constructs(stmts: &[Stmt], chain: &mut Vec<LoopCtx>, out: &mut Vec<Construct>) {
    for s in stmts {
        match s {
            Stmt::Prefetch(pf) => {
                let (covers, array, kind) = match &pf.kind {
                    PrefetchKind::Line { covers, array, index } => {
                        (*covers, *array, ConstructKind::Line { index: index.clone() })
                    }
                    PrefetchKind::Vector { covers, array, over } => {
                        (*covers, *array, ConstructKind::Vector { over: over.clone() })
                    }
                };
                out.push(Construct { covers, array, kind, chain: chain.clone() });
            }
            Stmt::Loop(l) => {
                chain.push(ctx_of(l));
                for p in &l.pipeline {
                    out.push(Construct {
                        covers: p.covers,
                        array: p.array,
                        kind: ConstructKind::Pipe {
                            index: p.index.clone(),
                            distance: p.distance,
                            every: p.every,
                        },
                        chain: chain.clone(),
                    });
                }
                collect_constructs(&l.body, chain, out);
                chain.pop();
            }
            Stmt::If(i) => {
                collect_constructs(&i.then_branch, chain, out);
                collect_constructs(&i.else_branch, chain, out);
            }
            Stmt::Assign(_) => {}
        }
    }
}

fn chain_ids(chain: &[LoopCtx]) -> Vec<LoopId> {
    chain.iter().map(|l| l.id).collect()
}

/// Does this construct's section contain the read's section, phase by phase?
///
/// * Line (moved-back): identical enclosing-loop chain and identical
///   subscripts — the prefetch touches exactly the read's element in every
///   iteration of every phase.
/// * Pipelined: annotation on the read's innermost loop, subscripts shifted
///   by exactly `coeff(var) * distance * step` in every dimension — each
///   iteration's issue covers the read `distance` iterations later.
/// * Vector: placed on the read's chain with the pulled loops (`over`,
///   innermost-first) being exactly the rest of the chain; a dynamically
///   scheduled loop in `over` makes the transfer unissuable at run time, so
///   it covers nothing.
fn construct_covers(c: &Construct, read: &CollectedRef) -> bool {
    if c.array != read.r.array {
        return false;
    }
    let read_ids = chain_ids(&read.loops);
    match &c.kind {
        ConstructKind::Line { index } => {
            chain_ids(&c.chain) == read_ids
                && index.len() == read.r.index.len()
                && index
                    .iter()
                    .zip(&read.r.index)
                    .all(|(a, b)| a.uniform_difference(b) == Some(0))
        }
        ConstructKind::Pipe { index, distance, .. } => {
            if chain_ids(&c.chain) != read_ids || *distance < 1 {
                return false;
            }
            let Some(l) = c.chain.last() else { return false };
            index.len() == read.r.index.len()
                && index.iter().zip(&read.r.index).all(|(a, b)| {
                    a.uniform_difference(b)
                        == Some(b.coeff(l.var) * *distance as i64 * l.step)
                })
        }
        ConstructKind::Vector { over } => {
            let p_ids = chain_ids(&c.chain);
            if p_ids.len() + over.len() != read_ids.len()
                || p_ids[..] != read_ids[..p_ids.len()]
            {
                return false;
            }
            // `over` is innermost-first; reversed it must be the rest of the
            // read's chain, outermost-first.
            let tail: Vec<LoopId> = over.iter().rev().copied().collect();
            if tail[..] != read_ids[p_ids.len()..] {
                return false;
            }
            read.loops[p_ids.len()..]
                .iter()
                .all(|l| !matches!(l.kind, LoopKind::DoAllDynamic { .. }))
        }
    }
}

/// Footprint in words of a vector prefetch, mirroring the scheduler's
/// `vpg_words` hardware model: pulled-loop intervals must be constant
/// (DOALLs restricted to PE 0's share — the largest block), one pulled
/// variable per dimension contributes its trip count, several contribute
/// the product. `None` when a bound is not statically known.
fn vector_footprint(
    program: &Program,
    layout: &Layout,
    read: &ArrayRef,
    over: &[LoopId],
    loop_map: &HashMap<LoopId, LoopCtx>,
) -> Option<u64> {
    let mut intervals: Vec<(ccdp_ir::VarId, i64, i64, i64)> = Vec::new();
    for lid in over {
        let l = loop_map.get(lid)?;
        let lo = l.lo.as_constant()?;
        let hi = l.hi.as_constant()?;
        if hi < lo {
            return Some(0);
        }
        let (lo, hi) = if l.kind == LoopKind::DoAllStatic {
            let r = match l.align {
                Some(aid) => ccdp_dist::aligned_range_for_pe(
                    layout,
                    program.array(aid),
                    lo,
                    hi,
                    l.step,
                    0,
                )?,
                None => doall_range_for_pe(lo, hi, l.step, 0, layout.n_pes())?,
            };
            (r.lo, r.hi)
        } else {
            (lo, hi)
        };
        intervals.push((l.var, lo, hi, l.step));
    }
    let mut words = 1u64;
    for ix in &read.index {
        let pulled: Vec<ccdp_ir::VarId> = ix
            .vars()
            .filter(|v| intervals.iter().any(|(iv, ..)| iv == v))
            .collect();
        let touched: u64 = match pulled.len() {
            0 => 1,
            _ => pulled
                .iter()
                .map(|v| {
                    let (_, lo, hi, step) =
                        *intervals.iter().find(|(iv, ..)| iv == v).unwrap();
                    ((hi - lo) / step + 1) as u64
                })
                .product(),
        };
        words = words.saturating_mul(touched);
    }
    Some(words)
}

fn render_ref(program: &Program, r: &ArrayRef) -> String {
    if r.array.index() >= program.arrays.len() {
        return format!("<unknown array #{}>", r.array.index());
    }
    let name = &program.array(r.array).name;
    let idx: Vec<String> = r.index.iter().map(|a| fmt_affine(program, a)).collect();
    format!("{}({})", name, idx.join(","))
}

fn reason_text(reason: ccdp_analysis::StaleReason) -> &'static str {
    use ccdp_analysis::StaleReason::*;
    match reason {
        ForeignWriteEarlierEpoch => "overlaps a foreign write from an earlier epoch",
        CrossPhaseSameEpoch => "overlaps a foreign write from an earlier phase of this epoch",
        Conservative => "cannot be analyzed precisely (conservatively stale)",
    }
}

/// Append the CCDP003 phase-race findings of one epoch. Plan-independent:
/// shared by [`verify`] and [`verify_hardware`].
fn push_race_findings(
    program: &Program,
    refs: &[CollectedRef],
    eo: &EpochObligations,
    findings: &mut Vec<Finding>,
) {
    for race in &eo.races {
        let loc = match (read_or_write(refs, race.writes.0), read_or_write(refs, race.writes.1)) {
            (Some(w1), Some(w2)) => {
                format!("{} / {}", render_ref(program, &w1.r), render_ref(program, &w2.r))
            }
            _ => "<unresolved writes>".to_string(),
        };
        findings.push(Finding {
            code: LintCode::PhaseRace,
            severity: LintCode::PhaseRace.severity(),
            epoch: eo.label.clone(),
            rid: Some(race.writes.0),
            location: loc,
            message: format!(
                "PEs {} and {} may write the same element inside one barrier \
                 phase; no epoch ordering separates these writes",
                race.pes.0, race.pes.1
            ),
        });
    }
}

/// Per-epoch verdict counts from a [`verify_sharding`] audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounts {
    /// Parallel epochs audited (one DOALL each).
    pub doalls: usize,
    pub disjoint: usize,
    pub may_conflict: usize,
    pub unknown: usize,
}

impl ShardCounts {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("doalls", (self.doalls as u64).to_json()),
            ("disjoint", (self.disjoint as u64).to_json()),
            ("may_conflict", (self.may_conflict as u64).to_json()),
            ("unknown", (self.unknown as u64).to_json()),
        ])
    }
}

/// Static shard-independence audit (`analysis::shard`): one verdict per
/// parallel epoch's DOALL at one-PE-per-block granularity, rendered as
/// stable diagnostics — CCDP006 `shard-conflict` with the concrete witness
/// (cache line + the writing and touching references), CCDP007
/// `shard-unknown` with the blocking reference or loop. Both are
/// **warnings**: a non-`Disjoint` epoch still executes correctly under the
/// dynamic conflict log, it just cannot take the proven log-free fast path,
/// so `LintReport::is_sound` is unaffected.
///
/// Findings are deterministic: epochs in schedule order, first occurrence
/// per epoch id, witness = smallest conflicting line of the first
/// conflicting block pair. With fewer than two PEs there is nothing to
/// shard and no findings are produced.
pub fn verify_sharding(
    program: &Program,
    layout: &Layout,
    line_words: usize,
) -> (Vec<Finding>, ShardCounts) {
    use ccdp_analysis::ShardVerdict;

    let mut counts = ShardCounts::default();
    let mut findings = Vec::new();
    if layout.n_pes() < 2 {
        return (findings, counts);
    }
    // RefId → rendered reference, for witness locations. Line-prefetch
    // pseudo-refs in the analysis carry their covered read's id, so this
    // resolves them to the covered reference.
    let mut ref_render: HashMap<RefId, String> = HashMap::new();
    for e in program.epochs() {
        for cr in collect_refs_in_stmts(&e.stmts) {
            ref_render
                .entry(cr.r.id)
                .or_insert_with(|| render_ref(program, &cr.r));
        }
    }
    let loc_of = |rid: RefId| {
        ref_render
            .get(&rid)
            .cloned()
            .unwrap_or_else(|| format!("ref #{}", rid.index()))
    };

    for dv in ccdp_analysis::shard_scan(program, layout, line_words) {
        counts.doalls += 1;
        match &dv.verdict {
            ShardVerdict::Disjoint => counts.disjoint += 1,
            ShardVerdict::MayConflict(w) => {
                counts.may_conflict += 1;
                findings.push(Finding {
                    code: LintCode::ShardConflict,
                    severity: LintCode::ShardConflict.severity(),
                    epoch: dv.label.clone(),
                    rid: Some(w.write),
                    location: format!("{} / {}", loc_of(w.write), loc_of(w.touch)),
                    message: format!(
                        "PE blocks {} and {} may share cache line {} of `{}`: \
                         the earlier block writes it, the later block touches \
                         it; the sharded engine keeps its dynamic conflict log",
                        w.blocks.0,
                        w.blocks.1,
                        w.line,
                        program.array(w.array).name,
                    ),
                });
            }
            ShardVerdict::Unknown(b) => {
                counts.unknown += 1;
                findings.push(Finding {
                    code: LintCode::ShardUnknown,
                    severity: LintCode::ShardUnknown.severity(),
                    epoch: dv.label.clone(),
                    rid: b.rid(),
                    location: b
                        .rid()
                        .map(&loc_of)
                        .unwrap_or_else(|| format!("doall #{}", dv.doall.index())),
                    message: format!(
                        "shard footprints cannot be statically bounded: {}; \
                         the sharded engine keeps its dynamic conflict log",
                        b.describe()
                    ),
                });
            }
        }
    }
    (findings, counts)
}

/// Static audit for the hardware-coherence schemes (MESI / Dragon): the
/// snooping protocol discharges every read-coverage obligation in hardware,
/// so there is no plan to check — but a write-write overlap inside one
/// barrier phase (CCDP003) is a *program* bug no coherence protocol fixes,
/// and the simulator's eager-snoop model additionally relies on its
/// absence. Runs on the **original** program (hardware schemes execute no
/// prefetch constructs); `n_obligations`/`n_prefetches` stay zero.
pub fn verify_hardware(program: &Program, layout: &Layout) -> LintReport {
    let ob: Obligations = coverage_obligations(program, layout);
    let mut report = LintReport::default();
    let mut epoch_by_id: HashMap<ccdp_ir::EpochId, &Epoch> = HashMap::new();
    for e in program.epochs() {
        epoch_by_id.entry(e.id).or_insert(e);
    }
    for eo in &ob.per_epoch {
        let Some(epoch) = epoch_by_id.get(&eo.epoch).copied() else { continue };
        let refs = collect_refs_in_stmts(&epoch.stmts);
        push_race_findings(program, &refs, eo, &mut report.findings);
    }
    report
}

/// Run the verifier: prove every obligation of `(program, layout)` is
/// discharged by `plan`. `program` must be the **transformed** program (the
/// one carrying the materialized prefetch constructs).
pub fn verify(
    program: &Program,
    plan: &PrefetchPlan,
    layout: &Layout,
    opt: &LintOptions,
) -> LintReport {
    let ob: Obligations = coverage_obligations(program, layout);
    let mut report = LintReport {
        n_obligations: ob.per_epoch.iter().map(|e| e.reads.len()).sum(),
        ..Default::default()
    };

    // Map epoch id -> &Epoch (first occurrence wins; epochs reached through
    // several call sites share one id and one body).
    let mut epoch_by_id: HashMap<ccdp_ir::EpochId, &Epoch> = HashMap::new();
    for e in program.epochs() {
        epoch_by_id.entry(e.id).or_insert(e);
    }

    // Constructs that validly cover a *clean* read, across all epochs in
    // order — compared against the plan's clean-prefetch accounting at the
    // end.
    let mut clean_covering: Vec<(String, RefId, String)> = Vec::new();

    for eo in &ob.per_epoch {
        let Some(epoch) = epoch_by_id.get(&eo.epoch).copied() else { continue };
        let refs = collect_refs_in_stmts(&epoch.stmts);
        let read_by_id: HashMap<RefId, &CollectedRef> = refs
            .iter()
            .filter(|cr| cr.access == RefAccess::Read)
            .map(|cr| (cr.r.id, cr))
            .collect();
        let obligation_of: HashMap<RefId, ccdp_analysis::StaleReason> =
            eo.reads.iter().map(|o| (o.rid, o.reason)).collect();

        let mut constructs = Vec::new();
        collect_constructs(&epoch.stmts, &mut Vec::new(), &mut constructs);
        report.n_prefetches += constructs.len();

        let mut loop_map: HashMap<LoopId, LoopCtx> = HashMap::new();
        {
            fn walk(stmts: &[Stmt], out: &mut HashMap<LoopId, LoopCtx>) {
                for s in stmts {
                    match s {
                        Stmt::Loop(l) => {
                            out.insert(l.id, ctx_of(l));
                            walk(&l.body, out);
                        }
                        Stmt::If(i) => {
                            walk(&i.then_branch, out);
                            walk(&i.else_branch, out);
                        }
                        _ => {}
                    }
                }
            }
            walk(&epoch.stmts, &mut loop_map);
        }

        // --- CCDP003: phase races (independent of the plan). ---
        push_race_findings(program, &refs, eo, &mut report.findings);

        // --- Match constructs to the reads they claim to cover. ---
        let mut covered: std::collections::HashSet<RefId> = std::collections::HashSet::new();
        let mut construct_findings: Vec<Finding> = Vec::new();
        for c in &constructs {
            let Some(read) = read_by_id.get(&c.covers) else {
                construct_findings.push(Finding {
                    code: LintCode::DeadPrefetch,
                    severity: LintCode::DeadPrefetch.severity(),
                    epoch: eo.label.clone(),
                    rid: Some(c.covers),
                    location: format!("{} for ref #{}", c.describe(), c.covers.index()),
                    message: "covers no read reference in this epoch".to_string(),
                });
                continue;
            };
            let covers = construct_covers(c, read);
            if covers {
                covered.insert(c.covers);
            }
            let is_obligation = obligation_of.contains_key(&c.covers);
            if is_obligation {
                if plan.handling_of(c.covers) == Handling::Bypass {
                    construct_findings.push(Finding {
                        code: LintCode::DeadPrefetch,
                        severity: LintCode::DeadPrefetch.severity(),
                        epoch: eo.label.clone(),
                        rid: Some(c.covers),
                        location: render_ref(program, &read.r),
                        message: format!(
                            "{} covers a read that bypasses the cache at use; the \
                             prefetched line can never be consumed",
                            c.describe()
                        ),
                    });
                }
            } else if covers {
                clean_covering.push((
                    eo.label.clone(),
                    c.covers,
                    render_ref(program, &read.r),
                ));
            } else {
                construct_findings.push(Finding {
                    code: LintCode::DeadPrefetch,
                    severity: LintCode::DeadPrefetch.severity(),
                    epoch: eo.label.clone(),
                    rid: Some(c.covers),
                    location: render_ref(program, &read.r),
                    message: format!(
                        "{} neither matches its read's section nor covers \
                         anything stale",
                        c.describe()
                    ),
                });
            }

            // --- CCDP004: vector footprint vs. the cache-size cap. ---
            if let ConstructKind::Vector { over } = &c.kind {
                match vector_footprint(program, layout, &read.r, over, &loop_map) {
                    None => construct_findings.push(Finding {
                        code: LintCode::VpgOverflow,
                        severity: LintCode::VpgOverflow.severity(),
                        epoch: eo.label.clone(),
                        rid: Some(c.covers),
                        location: render_ref(program, &read.r),
                        message: "vector prefetch footprint is not statically \
                                  bounded (non-constant pulled-loop bounds)"
                            .to_string(),
                    }),
                    Some(w) if w > opt.vpg_max_words => {
                        construct_findings.push(Finding {
                            code: LintCode::VpgOverflow,
                            severity: LintCode::VpgOverflow.severity(),
                            epoch: eo.label.clone(),
                            rid: Some(c.covers),
                            location: render_ref(program, &read.r),
                            message: format!(
                                "vector prefetch moves {w} words, exceeding the \
                                 {}-word hardware cap",
                                opt.vpg_max_words
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }

        // --- CCDP005: per-loop aggregate prefetch-queue occupancy. ---
        // Mirror of the scheduler's try_sp constraint: all pipelined
        // prefetches on one loop share the queue; with self-spatial cadence
        // `every`, each contributes line_words/every words per iteration,
        // and `distance` iterations are in flight.
        {
            let mut by_loop: HashMap<LoopId, Vec<&Construct>> = HashMap::new();
            for c in &constructs {
                if let ConstructKind::Pipe { .. } = c.kind {
                    if let Some(l) = c.chain.last() {
                        by_loop.entry(l.id).or_default().push(c);
                    }
                }
            }
            let mut lids: Vec<LoopId> = by_loop.keys().copied().collect();
            lids.sort();
            for lid in lids {
                let pipes = &by_loop[&lid];
                let per_iter_x16: u64 = pipes
                    .iter()
                    .map(|c| match c.kind {
                        ConstructKind::Pipe { every, .. } => {
                            16 * opt.line_words as u64 / u64::from(every.max(1))
                        }
                        _ => 0,
                    })
                    .sum();
                for c in pipes {
                    let ConstructKind::Pipe { distance, .. } = c.kind else { continue };
                    if u64::from(distance) * per_iter_x16 > 16 * opt.queue_words as u64 {
                        let loc = read_by_id
                            .get(&c.covers)
                            .map(|r| render_ref(program, &r.r))
                            .unwrap_or_else(|| format!("ref #{}", c.covers.index()));
                        construct_findings.push(Finding {
                            code: LintCode::SpQueueOverflow,
                            severity: LintCode::SpQueueOverflow.severity(),
                            epoch: eo.label.clone(),
                            rid: Some(c.covers),
                            location: loc,
                            message: format!(
                                "pipelined distance {distance} overflows the \
                                 {}-word prefetch queue shared by this loop's \
                                 prefetches",
                                opt.queue_words
                            ),
                        });
                    }
                }
            }
        }

        // --- Group-spatial containment: re-derive leader/follower groups
        //     the same way target analysis does (stale candidates in
        //     innermost loops). ---
        let mut follower_leader: HashMap<RefId, RefId> = HashMap::new();
        {
            let cands: Vec<&CollectedRef> = refs
                .iter()
                .filter(|cr| {
                    cr.access == RefAccess::Read
                        && obligation_of.contains_key(&cr.r.id)
                        && cr.in_innermost_loop()
                })
                .collect();
            for group in find_uniform_groups(&cands) {
                if let Some(gs) = group_spatial(program, &cands, &group, opt.line_words) {
                    for f in gs.followers {
                        follower_leader.insert(f, gs.leader);
                    }
                }
            }
        }

        // --- CCDP001: every obligation must be discharged. ---
        for o in &eo.reads {
            let loc = read_by_id
                .get(&o.rid)
                .map(|r| render_ref(program, &r.r))
                .unwrap_or_else(|| format!("ref #{}", o.rid.index()));
            match plan.handling_of(o.rid) {
                Handling::Bypass => {}
                Handling::Normal => report.findings.push(Finding {
                    code: LintCode::UncoveredStaleRead,
                    severity: LintCode::UncoveredStaleRead.severity(),
                    epoch: eo.label.clone(),
                    rid: Some(o.rid),
                    location: loc,
                    message: format!(
                        "read {} but is handled as a plain cached read; a stale \
                         line can be consumed",
                        reason_text(o.reason)
                    ),
                }),
                Handling::Fresh => {
                    let ok = covered.contains(&o.rid)
                        || follower_leader.get(&o.rid).is_some_and(|leader| {
                            plan.handling_of(*leader) == Handling::Fresh
                                && covered.contains(leader)
                        });
                    if !ok {
                        report.findings.push(Finding {
                            code: LintCode::UncoveredStaleRead,
                            severity: LintCode::UncoveredStaleRead.severity(),
                            epoch: eo.label.clone(),
                            rid: Some(o.rid),
                            location: loc,
                            message: format!(
                                "read {} and is marked Fresh, but no in-phase \
                                 prefetch (own or group leader's) covers its \
                                 section",
                                reason_text(o.reason)
                            ),
                        });
                    }
                }
            }
        }

        report.findings.extend(construct_findings);
    }

    // --- CCDP002 accounting: prefetches that cover only clean data must be
    //     counted as intentional clean prefetches; any excess is dead
    //     weight. ---
    if clean_covering.len() > plan.stats.clean_prefetch {
        for (epoch, rid, loc) in clean_covering.into_iter().skip(plan.stats.clean_prefetch) {
            report.findings.push(Finding {
                code: LintCode::DeadPrefetch,
                severity: LintCode::DeadPrefetch.severity(),
                epoch,
                rid: Some(rid),
                location: loc,
                message: "prefetch covers nothing stale and is not accounted as \
                          a clean prefetch"
                    .to_string(),
            });
        }
    }

    report
}

fn read_or_write(refs: &[CollectedRef], rid: RefId) -> Option<&CollectedRef> {
    refs.iter().find(|cr| cr.r.id == rid)
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_analysis::analyze_stale;
    use ccdp_ir::ProgramBuilder;
    use ccdp_prefetch::{plan_prefetches, TargetOptions};

    fn two_epoch_program() -> Program {
        let n = 32i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[32, 32]);
        let b = pb.shared("B", &[32, 32]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.parallel_epoch("r", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 2, |e, i| {
                    e.assign(
                        b.at2(i, j),
                        a.at2(i, n - 1 - j).rd() + a.at2(i + 1, n - 1 - j).rd(),
                    );
                });
            });
        });
        pb.finish().unwrap()
    }

    fn compile(p: &Program, n_pes: usize) -> (Program, PrefetchPlan, Layout) {
        let layout = Layout::new(p, n_pes);
        let stale = analyze_stale(p, &layout);
        let (tp, plan) = plan_prefetches(
            p,
            &layout,
            &stale,
            &TargetOptions::default(),
            &ScheduleOptions::default(),
        );
        (tp, plan, layout)
    }

    #[test]
    fn shard_audit_emits_deterministic_ccdp006_and_007() {
        let n = 32i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[32, 32]);
        // Column stencil reading the previous block's last column: CCDP006.
        pb.parallel_epoch("stencil", |e| {
            e.doall("j", 1, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j - 1).rd() * 0.5);
                });
            });
        });
        // Guarded write inside the DOALL: CCDP007.
        pb.parallel_epoch("guarded", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.if_(ccdp_ir::CondB::gt(i, 3), |e| {
                        e.assign(a.at2(i, j), 2.0);
                    });
                });
            });
        });
        // Clean column sweep: no finding.
        pb.parallel_epoch("clean", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j).rd() + 1.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 4);
        let (findings, counts) = verify_sharding(&p, &layout, 4);
        assert_eq!(
            (counts.doalls, counts.disjoint, counts.may_conflict, counts.unknown),
            (3, 1, 1, 1)
        );
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].code, LintCode::ShardConflict);
        assert_eq!(findings[0].code.code(), "CCDP006");
        assert_eq!(findings[0].epoch, "stencil");
        assert_eq!(findings[0].severity, Severity::Warning);
        assert_eq!(findings[1].code, LintCode::ShardUnknown);
        assert_eq!(findings[1].code.code(), "CCDP007");
        assert_eq!(findings[1].epoch, "guarded");
        // Deterministic: byte-identical renderings on a second run.
        let (again, counts2) = verify_sharding(&p, &layout, 4);
        assert_eq!(counts, counts2);
        let render = |fs: &[Finding]| {
            fs.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(render(&findings), render(&again));
        // Shard warnings never flip soundness, and one PE has nothing to
        // shard.
        let rep = LintReport { findings, ..Default::default() };
        assert!(rep.is_sound());
        let (none, c1) = verify_sharding(&p, &Layout::new(&p, 1), 4);
        assert!(none.is_empty());
        assert_eq!(c1.doalls, 0);
    }

    #[test]
    fn planner_output_is_sound() {
        let p = two_epoch_program();
        for pes in [1usize, 2, 4, 8] {
            let (tp, plan, layout) = compile(&p, pes);
            let rep = verify(&tp, &plan, &layout, &LintOptions::default());
            assert!(rep.is_sound(), "P={pes}:\n{}", rep.render());
        }
    }

    #[test]
    fn flipping_a_fresh_read_to_normal_is_an_error() {
        let p = two_epoch_program();
        let (tp, mut plan, layout) = compile(&p, 4);
        let victim = plan
            .handling
            .iter()
            .position(|h| *h == Handling::Fresh)
            .expect("some read must be Fresh");
        plan.handling[victim] = Handling::Normal;
        let rep = verify(&tp, &plan, &layout, &LintOptions::default());
        assert!(!rep.is_sound());
        assert!(rep
            .findings
            .iter()
            .any(|f| f.code == LintCode::UncoveredStaleRead
                && f.rid == Some(RefId(victim as u32))));
    }

    #[test]
    fn removing_a_prefetch_statement_is_an_error() {
        let p = two_epoch_program();
        let (mut tp, plan, layout) = compile(&p, 4);
        // Drop every prefetch statement and pipeline annotation.
        fn strip(stmts: &mut Vec<Stmt>) {
            stmts.retain(|s| !matches!(s, Stmt::Prefetch(_)));
            for s in stmts {
                match s {
                    Stmt::Loop(l) => {
                        l.pipeline.clear();
                        strip(&mut l.body);
                    }
                    Stmt::If(i) => {
                        strip(&mut i.then_branch);
                        strip(&mut i.else_branch);
                    }
                    _ => {}
                }
            }
        }
        let mut stripped_any = false;
        for item in &mut tp.items {
            if let ccdp_ir::ProgramItem::Epoch(e) = item {
                strip(&mut e.stmts);
                stripped_any = true;
            } else if let ccdp_ir::ProgramItem::Repeat { body, .. } = item {
                for it in body {
                    if let ccdp_ir::ProgramItem::Epoch(e) = it {
                        strip(&mut e.stmts);
                        stripped_any = true;
                    }
                }
            }
        }
        assert!(stripped_any);
        let rep = verify(&tp, &plan, &layout, &LintOptions::default());
        assert!(!rep.is_sound(), "{}", rep.render());
        assert!(rep
            .findings
            .iter()
            .any(|f| f.code == LintCode::UncoveredStaleRead));
    }

    #[test]
    fn race_is_flagged_regardless_of_plan() {
        let mut pb = ProgramBuilder::new("race");
        let a = pb.shared("A", &[16]);
        pb.parallel_epoch("racy", |e| {
            e.doall("i", 0, 15, |e, _i| {
                e.assign(a.at1(0), 1.0);
            });
        });
        let p = pb.finish().unwrap();
        let (tp, plan, layout) = compile(&p, 4);
        let rep = verify(&tp, &plan, &layout, &LintOptions::default());
        assert!(rep.findings.iter().any(|f| f.code == LintCode::PhaseRace));
        assert!(!rep.is_sound());
    }

    /// Pinning test for the hardware-scheme audit: plan-coverage findings
    /// (CCDP001/002/004/005) never fire — MESI/Dragon need no plan — but
    /// CCDP003 phase races are still reported, identically to [`verify`].
    #[test]
    fn hardware_audit_skips_coverage_but_keeps_races() {
        // A program full of uncovered stale reads is fine under hardware
        // coherence...
        let p = two_epoch_program();
        let layout = Layout::new(&p, 4);
        let rep = verify_hardware(&p, &layout);
        assert!(rep.is_sound(), "{}", rep.render());
        assert!(rep.findings.is_empty(), "{}", rep.render());
        assert_eq!(rep.n_obligations, 0);
        assert_eq!(rep.n_prefetches, 0);
        // ...but a same-phase write-write race is a program bug under every
        // scheme, and the finding matches the plan-checking verifier's.
        let mut pb = ProgramBuilder::new("race");
        let a = pb.shared("A", &[16]);
        pb.parallel_epoch("racy", |e| {
            e.doall("i", 0, 15, |e, _i| {
                e.assign(a.at1(0), 1.0);
            });
        });
        let racy = pb.finish().unwrap();
        let (tp, plan, layout) = compile(&racy, 4);
        let hw = verify_hardware(&racy, &layout);
        assert!(!hw.is_sound());
        assert!(hw.findings.iter().all(|f| f.code == LintCode::PhaseRace));
        let sw = verify(&tp, &plan, &layout, &LintOptions::default());
        let races =
            |r: &LintReport| {
                r.findings
                    .iter()
                    .filter(|f| f.code == LintCode::PhaseRace)
                    .map(|f| (f.epoch.clone(), f.location.clone(), f.message.clone()))
                    .collect::<Vec<_>>()
            };
        assert_eq!(races(&hw), races(&sw), "race findings must match verify()'s");
    }

    #[test]
    fn single_pe_has_no_obligations() {
        let p = two_epoch_program();
        let (tp, plan, layout) = compile(&p, 1);
        let rep = verify(&tp, &plan, &layout, &LintOptions::default());
        assert_eq!(rep.n_obligations, 0);
        assert!(rep.is_sound());
        assert_eq!(rep.findings.len(), 0);
    }

    #[test]
    fn report_json_shape() {
        let p = two_epoch_program();
        let (tp, plan, layout) = compile(&p, 4);
        let rep = verify(&tp, &plan, &layout, &LintOptions::default());
        let j = rep.to_json();
        assert!(j.get("errors").and_then(Json::as_u64).is_some());
        assert!(matches!(j.get("findings"), Some(Json::Arr(_))));
    }
}
