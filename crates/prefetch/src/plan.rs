//! End-to-end prefetch planning: target analysis + scheduling +
//! materialization into a transformed program, plus the per-reference
//! runtime handling map the simulator consumes.

use std::collections::HashMap;

use ccdp_analysis::StaleAnalysis;
use ccdp_dist::Layout;
use ccdp_ir::{Program, ProgramItem, RefId};

use crate::schedule::{materialize_epoch, schedule_epoch, Placement, ScheduleOptions};
use crate::target::{prefetch_targets, TargetAnalysis, TargetDecision, TargetOptions};

/// How the machine must treat one read reference at run time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Handling {
    /// Plain cached read: any cache hit may be consumed.
    Normal,
    /// Potentially-stale read: a cache hit may be consumed only if the line
    /// was filled in the current barrier phase; otherwise re-fetch from
    /// memory (and install). Prefetches exist to make this path cheap.
    Fresh,
    /// Potentially-stale read with no prefetch coverage: read main memory
    /// directly, do not install into the cache (the T3D bypass-cache fetch).
    Bypass,
}

/// Aggregate statistics of a plan (used by reports and tests).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct PlanStats {
    pub stale_reads: usize,
    pub targets: usize,
    pub vector: usize,
    pub pipelined: usize,
    pub moved_back: usize,
    pub followers: usize,
    pub bypass: usize,
    pub dropped: usize,
    pub clean_prefetch: usize,
}

/// The CCDP transformation result: per-reference runtime handling plus the
/// technique bookkeeping. Pair it with the transformed [`Program`] returned
/// by [`plan_prefetches`].
#[derive(Clone, Debug)]
pub struct PrefetchPlan {
    /// Indexed by (original) `RefId`.
    pub handling: Vec<Handling>,
    /// Technique per scheduled target.
    pub technique: HashMap<RefId, crate::Technique>,
    pub stats: PlanStats,
}

impl PrefetchPlan {
    /// A plan that schedules nothing and treats every stale read as a bypass
    /// fetch — the "invalidate-only" conservative baseline of the
    /// `ablation_scheme` experiment.
    pub fn bypass_all(program: &Program, stale: &StaleAnalysis) -> PrefetchPlan {
        let mut handling = vec![Handling::Normal; program.n_refs as usize];
        let mut stats = PlanStats { stale_reads: stale.n_stale(), ..Default::default() };
        for rid in stale.stale_refs() {
            handling[rid.index()] = Handling::Bypass;
            stats.bypass += 1;
        }
        PrefetchPlan { handling, technique: HashMap::new(), stats }
    }

    pub fn handling_of(&self, r: RefId) -> Handling {
        self.handling.get(r.index()).copied().unwrap_or(Handling::Normal)
    }
}

/// Run target analysis, scheduling, and materialization.
///
/// Returns the transformed program (prefetch statements and pipeline
/// annotations inserted; re-validated) and the plan.
pub fn plan_prefetches(
    program: &Program,
    layout: &Layout,
    stale: &StaleAnalysis,
    topt: &TargetOptions,
    sopt: &ScheduleOptions,
) -> (Program, PrefetchPlan) {
    let ta = prefetch_targets(program, stale, topt);
    plan_with_targets(program, layout, stale, &ta, sopt)
}

/// As [`plan_prefetches`] but with an externally computed target analysis
/// (ablations manipulate it directly).
pub fn plan_with_targets(
    program: &Program,
    layout: &Layout,
    stale: &StaleAnalysis,
    ta: &TargetAnalysis,
    sopt: &ScheduleOptions,
) -> (Program, PrefetchPlan) {
    let mut transformed = program.clone();
    let mut handling = vec![Handling::Normal; program.n_refs as usize];
    let mut technique = HashMap::new();
    let mut stats = PlanStats {
        stale_reads: stale.n_stale(),
        targets: ta.prefetch_set().len(),
        ..Default::default()
    };

    // Base handling from target decisions.
    for (i, d) in ta.decisions.iter().enumerate() {
        let rid = RefId(i as u32);
        match d {
            TargetDecision::Clean => {}
            TargetDecision::Prefetch => handling[i] = Handling::Fresh,
            TargetDecision::PrefetchClean => {
                stats.clean_prefetch += 1; // stays Normal: no coherence duty
            }
            TargetDecision::Follower { .. } => {
                handling[i] = Handling::Fresh;
                stats.followers += 1;
            }
            TargetDecision::Bypass => {
                handling[i] = Handling::Bypass;
                stats.bypass += 1;
            }
        }
        let _ = rid;
    }

    // Schedule and materialize, epoch by epoch, across the whole item tree.
    let targets = ta.prefetch_set();
    let mut seen = std::collections::HashSet::new();
    let snapshot = transformed.clone();
    rewrite_items(
        &snapshot,
        &mut transformed.items,
        layout,
        &targets,
        sopt,
        &mut handling,
        &mut technique,
        &mut stats,
        &mut seen,
    );
    let mut routines = std::mem::take(&mut transformed.routines);
    for r in &mut routines {
        rewrite_items(
            &snapshot,
            &mut r.items,
            layout,
            &targets,
            sopt,
            &mut handling,
            &mut technique,
            &mut stats,
            &mut seen,
        );
    }
    transformed.routines = routines;

    // A follower's coherence rides on its leader's line fill; when every
    // technique for the leader fell through (Placement::Drop, or a moved-back
    // prefetch without distance) the leader degraded to Bypass and nothing
    // fills the shared line — the follower must degrade with it.
    for (i, d) in ta.decisions.iter().enumerate() {
        if let TargetDecision::Follower { leader } = d {
            if handling[leader.index()] == Handling::Bypass
                && handling[i] == Handling::Fresh
            {
                handling[i] = Handling::Bypass;
                stats.followers -= 1;
                stats.bypass += 1;
            }
        }
    }

    ccdp_ir::validate(&transformed).expect("materialized program must stay valid");

    (transformed, PrefetchPlan { handling, technique, stats })
}

#[allow(clippy::too_many_arguments)]
fn rewrite_items(
    program: &Program,
    items: &mut [ProgramItem],
    layout: &Layout,
    targets: &[RefId],
    sopt: &ScheduleOptions,
    handling: &mut [Handling],
    technique: &mut HashMap<RefId, crate::Technique>,
    stats: &mut PlanStats,
    seen: &mut std::collections::HashSet<ccdp_ir::EpochId>,
) {
    for item in items {
        match item {
            ProgramItem::Epoch(e) => {
                if !seen.insert(e.id) {
                    continue;
                }
                let sched = schedule_epoch(program, e, layout, targets, sopt);
                if sched.placements.is_empty() {
                    continue;
                }
                for (rid, p) in &sched.placements {
                    match p {
                        Placement::Vector { .. } => {
                            stats.vector += 1;
                            technique.insert(*rid, crate::Technique::Vector);
                        }
                        Placement::Pipeline { .. } => {
                            stats.pipelined += 1;
                            technique.insert(*rid, crate::Technique::Pipelined);
                        }
                        Placement::MoveBack => {
                            stats.moved_back += 1;
                            technique.insert(*rid, crate::Technique::MovedBack);
                        }
                        Placement::Drop => {
                            stats.dropped += 1;
                            if handling[rid.index()] == Handling::Fresh {
                                handling[rid.index()] = Handling::Bypass;
                            }
                        }
                    }
                }
                let m = materialize_epoch(&e.stmts, &sched, sopt);
                for rid in &m.dropped_mbp {
                    // Moved-back prefetch without enough distance: issued as
                    // a bypass fetch instead (paper §3.2's fallback).
                    stats.moved_back -= 1;
                    stats.dropped += 1;
                    technique.remove(rid);
                    if handling[rid.index()] == Handling::Fresh {
                        handling[rid.index()] = Handling::Bypass;
                    }
                }
                e.stmts = m.stmts;
            }
            ProgramItem::Call(_) => {}
            ProgramItem::Repeat { body, .. } => {
                rewrite_items(
                    program, body, layout, targets, sopt, handling, technique, stats, seen,
                );
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    fn sample() -> (Program, Layout) {
        let mut pb = ProgramBuilder::new("s");
        let a = pb.shared("A", &[64, 64]);
        let b = pb.shared("B", &[64, 64]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, 63, |e, j| {
                e.serial("i", 0, 63, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.repeat(3, |rep| {
            rep.parallel_epoch("r", |e| {
                e.doall("j", 0, 63, |e, j| {
                    e.serial("i", 0, 62, |e, i| {
                        e.assign(
                            b.at2(i, j),
                            a.at2(i, 63 - j).rd() + a.at2(i + 1, 63 - j).rd(),
                        );
                    });
                });
            });
        });
        let p = pb.finish().unwrap();
        let l = Layout::new(&p, 4);
        (p, l)
    }

    #[test]
    fn plan_covers_all_stale_reads() {
        let (p, l) = sample();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        assert!(stale.n_stale() >= 2);
        let (tp, plan) = plan_prefetches(
            &p,
            &l,
            &stale,
            &TargetOptions::default(),
            &ScheduleOptions::default(),
        );
        // Every stale read ends Fresh or Bypass — never Normal.
        for rid in stale.stale_refs() {
            assert_ne!(
                plan.handling_of(rid),
                Handling::Normal,
                "stale read {rid:?} left unprotected"
            );
        }
        // The transformed program actually contains prefetch constructs.
        let text = ccdp_ir::print_program(&tp);
        assert!(
            text.contains("prefetch"),
            "no prefetch materialized:\n{text}"
        );
        assert!(plan.stats.targets >= 1);
        assert_eq!(
            plan.stats.vector + plan.stats.pipelined + plan.stats.moved_back
                + plan.stats.dropped,
            plan.stats.targets
        );
    }

    #[test]
    fn bypass_all_plan_protects_everything_without_prefetches() {
        let (p, l) = sample();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        let plan = PrefetchPlan::bypass_all(&p, &stale);
        for rid in stale.stale_refs() {
            assert_eq!(plan.handling_of(rid), Handling::Bypass);
        }
        assert_eq!(plan.stats.bypass, stale.n_stale());
    }

    #[test]
    fn group_followers_are_fresh_not_bypass() {
        let (p, l) = sample();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        let ta = prefetch_targets(&p, &stale, &TargetOptions::default());
        let follower_ids: Vec<RefId> = ta
            .decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, TargetDecision::Follower { .. }))
            .map(|(i, _)| RefId(i as u32))
            .collect();
        assert!(!follower_ids.is_empty(), "A(i,·)/A(i+1,·) should group");
        let (_, plan) = plan_with_targets(&p, &l, &stale, &ta, &ScheduleOptions::default());
        for f in follower_ids {
            assert_eq!(plan.handling_of(f), Handling::Fresh);
        }
    }

    #[test]
    fn followers_of_dropped_leaders_degrade_to_bypass() {
        let (p, l) = sample();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        let ta = prefetch_targets(&p, &stale, &TargetOptions::default());
        let follower_ids: Vec<RefId> = ta
            .decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, TargetDecision::Follower { .. }))
            .map(|(i, _)| RefId(i as u32))
            .collect();
        assert!(!follower_ids.is_empty());
        let sopt = ScheduleOptions {
            enable_vpg: false,
            enable_sp: false,
            enable_mbp: false,
            ..Default::default()
        };
        let (_, plan) = plan_with_targets(&p, &l, &stale, &ta, &sopt);
        for f in follower_ids {
            assert_eq!(
                plan.handling_of(f),
                Handling::Bypass,
                "no leader prefetch exists, the follower has no line fill"
            );
        }
    }

    #[test]
    fn disabled_scheduler_degrades_to_bypass() {
        let (p, l) = sample();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        let sopt = ScheduleOptions {
            enable_vpg: false,
            enable_sp: false,
            enable_mbp: false,
            ..Default::default()
        };
        let (tp, plan) = plan_prefetches(&p, &l, &stale, &TargetOptions::default(), &sopt);
        assert_eq!(plan.stats.dropped, plan.stats.targets);
        for rid in stale.stale_refs() {
            assert_ne!(plan.handling_of(rid), Handling::Normal);
        }
        let text = ccdp_ir::print_program(&tp);
        assert!(!text.contains("prefetch-line"));
        assert!(!text.contains("prefetch-vector"));
    }
}
