//! Prefetch target analysis and prefetch scheduling — the CCDP transformation
//! proper (paper §4.2, §4.3).
//!
//! * [`target`] implements Fig. 1: start from all potentially-stale
//!   references, keep those in innermost loops and serial segments, and
//!   eliminate non-leading members of group-spatial reference groups.
//! * [`schedule`] implements Fig. 2: per inner loop / serial segment, pick
//!   among **vector prefetch generation** (Gornish-style pull-out, hardware
//!   constrained), **software pipelining** (Mowry-style, distance computed
//!   from the loop body cost), and **moving back prefetches**, according to
//!   the six structural cases.
//! * [`plan`] ties them together: it produces a *transformed program* (with
//!   `Prefetch` statements and pipelined-prefetch loop annotations
//!   materialized) plus a [`PrefetchPlan`] telling the runtime how each read
//!   reference must behave (`Normal` / `Fresh` / `Bypass`).
//!
//! Correctness contract (enforced by the T3D simulator's coherence oracle):
//! every potentially-stale reference ends up `Fresh` (it re-fetches unless
//! its cache line was filled in the current barrier phase) or `Bypass`
//! (always reads main memory). Prefetching only moves *when* the fresh copy
//! arrives; it never changes *what* a reference is allowed to observe.

mod jsonio;
pub mod plan;
pub mod schedule;
pub mod target;

pub use plan::{plan_prefetches, Handling, PlanStats, PrefetchPlan};
pub use schedule::{ScheduleOptions, Technique};
pub use target::{prefetch_targets, TargetAnalysis, TargetDecision, TargetOptions};
