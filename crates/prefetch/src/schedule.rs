//! Prefetch scheduling (paper Fig. 2): vector prefetch generation (VPG),
//! software pipelining (SP), and moving back prefetches (MBP).
//!
//! The scheduler decides *per inner loop or serial code segment* which
//! technique covers each prefetch target, honouring the paper's six cases:
//!
//! | case | LSC                                     | techniques      |
//! |------|------------------------------------------|-----------------|
//! | 1    | serial loop, known bounds                | VPG → SP → MBP  |
//! | 1'   | serial loop, unknown bounds              | SP → MBP        |
//! | 2    | static DOALL, known bounds               | VPG → MBP       |
//! | 2'   | static DOALL, unknown bounds             | MBP             |
//! | 3    | dynamic DOALL                            | MBP             |
//! | 4    | serial code section                      | MBP             |
//! | 5    | loop containing if-statements            | MBP (in-branch) |
//! | 6    | loop/segment inside an if-statement body | as 1–4, in-branch |
//!
//! Placement legality: a prefetch may move anywhere *within its barrier
//! phase*. Epoch boundaries (and wrapper-loop phase boundaries) carry the
//! synchronization that orders the freshening write before the prefetch
//! issue, so the pass never hoists a prefetch past the enclosing DOALL's
//! wrapper loops, and the arrival-time memory read semantics of the machine
//! make same-phase placement safe (DOALL iterations are independent, and a
//! PE's own writes update its own cache).

use std::collections::HashMap;

use ccdp_dist::{doall_range_for_pe, Layout};
use ccdp_ir::{
    collect_refs_in_stmts, Affine, ArrayRef, CollectedRef, Epoch, LoopCtx, LoopId, LoopKind,
    PipelinedPrefetch, PrefetchKind, PrefetchStmt, RefId, Stmt,
};

/// The technique that ended up covering a prefetch target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Technique {
    /// Vector prefetch generation: block transfer issued before the pulled
    /// loop(s).
    Vector,
    /// Software pipelining: line prefetch `distance` iterations ahead.
    Pipelined,
    /// Moving back: line prefetch hoisted earlier in the same block.
    MovedBack,
}

/// Scheduler tuning knobs (paper §4.3.1's "compiler parameters").
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOptions {
    pub enable_vpg: bool,
    pub enable_sp: bool,
    pub enable_mbp: bool,
    /// Upper bound on the words one vector prefetch may move (hardware
    /// constraint: must fit the cache without flushing everything; default
    /// half the 1 K-word T3D data cache).
    pub vpg_max_words: u64,
    /// Software pipelining distance range (iterations ahead).
    pub sp_min_distance: u32,
    pub sp_max_distance: u32,
    /// Moving-back distance range (weighted statements).
    pub mbp_min_stmts: u32,
    pub mbp_max_stmts: u32,
    /// Exploit self-spatial reuse in software pipelining: issue one line
    /// prefetch per cache line instead of per iteration (paper §4.2's
    /// extension). The `ablation_sched` study can disable it.
    pub exploit_self_spatial: bool,
    /// Cache line size in words.
    pub line_words: usize,
    /// Prefetch queue capacity in words (T3D: 16).
    pub queue_words: usize,
    /// Expected remote fetch latency in cycles (sets the SP distance).
    pub prefetch_latency: u32,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            enable_vpg: true,
            enable_sp: true,
            enable_mbp: true,
            vpg_max_words: 512,
            sp_min_distance: 2,
            sp_max_distance: 16,
            mbp_min_stmts: 1,
            mbp_max_stmts: 8,
            exploit_self_spatial: true,
            line_words: 4,
            queue_words: 16,
            prefetch_latency: 150,
        }
    }
}

/// Where the scheduler decided to put the prefetch of one target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// `prefetch-vector` inserted immediately before loop `before`, covering
    /// the target's section over `over` (innermost-first pull order).
    Vector { before: LoopId, over: Vec<LoopId> },
    /// Pipelined prefetch annotation on `loop_id` with the given distance
    /// and issue cadence (`every` iterations between issues).
    Pipeline { loop_id: LoopId, distance: u32, every: u32 },
    /// Line prefetch hoisted within the target's own block.
    MoveBack,
    /// No technique applied (insufficient distance / disabled / segment too
    /// small): the reference falls back to bypass-fetch semantics.
    Drop,
}

/// All scheduling decisions for one epoch.
#[derive(Clone, Debug, Default)]
pub struct EpochSchedule {
    /// Decisions per target reference.
    pub placements: HashMap<RefId, Placement>,
}

/// Identify the "LSC" (inner loop or serial code segment) of a target.
fn lsc_of(cr: &CollectedRef) -> Option<LoopId> {
    cr.enclosing_loop().map(|l| l.id)
}

/// Estimate one execution of a statement list in cycles (compile-time cost
/// model used to pick the SP distance; coarse on purpose).
pub(crate) fn estimate_stmt_cycles(stmts: &[Stmt]) -> u64 {
    let mut total = 0u64;
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                total += a.expr.flops() as u64
                    + a.reads.len() as u64 * 2
                    + 2
                    + a.extra_cost as u64;
            }
            Stmt::Loop(l) => {
                let trip = match (l.lo.as_constant(), l.hi.as_constant()) {
                    (Some(lo), Some(hi)) if hi >= lo => ((hi - lo) / l.step + 1) as u64,
                    _ => 8,
                };
                total += 4 + trip * estimate_stmt_cycles(&l.body);
            }
            Stmt::If(i) => {
                total += 2 + estimate_stmt_cycles(&i.then_branch)
                    .max(estimate_stmt_cycles(&i.else_branch));
            }
            Stmt::Prefetch(_) => total += 7,
        }
    }
    total
}

/// Does the loop body contain if-statements (paper case 5)?
fn body_has_if(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::If(_) => true,
        Stmt::Loop(l) => body_has_if(&l.body),
        _ => false,
    })
}

/// Size in words of the section `cr` touches over the pulled loops.
/// `pulled` are innermost-first `LoopCtx`s; outer vars contribute a point.
fn vpg_words(
    program: &ccdp_ir::Program,
    cr: &CollectedRef,
    pulled: &[&LoopCtx],
    layout: &Layout,
) -> Option<u64> {
    // Build value intervals for pulled vars; all bounds must be constants.
    let mut intervals: Vec<(ccdp_ir::VarId, i64, i64, i64)> = Vec::new();
    for l in pulled {
        let lo = l.lo.as_constant()?;
        let hi = l.hi.as_constant()?;
        if hi < lo {
            return Some(0);
        }
        let (lo, hi) = if l.kind == LoopKind::DoAllStatic {
            // Per-PE share: PE 0 has the largest block.
            let r = match l.align {
                Some(aid) => ccdp_dist::aligned_range_for_pe(
                    layout,
                    program.array(aid),
                    lo,
                    hi,
                    l.step,
                    0,
                )?,
                None => doall_range_for_pe(lo, hi, l.step, 0, layout.n_pes())?,
            };
            (r.lo, r.hi)
        } else {
            (lo, hi)
        };
        intervals.push((l.var, lo, hi, l.step));
    }
    let mut words = 1u64;
    for ix in &cr.r.index {
        let mut touched = 1u64;
        let vars: Vec<_> = ix.vars().collect();
        let pulled_vars: Vec<_> = vars
            .iter()
            .filter(|v| intervals.iter().any(|(iv, ..)| iv == *v))
            .collect();
        match pulled_vars.len() {
            0 => {}
            1 => {
                let (_, lo, hi, step) = *intervals
                    .iter()
                    .find(|(iv, ..)| iv == pulled_vars[0])
                    .unwrap();
                let c = ix.coeff(*pulled_vars[0]).unsigned_abs();
                let iters = ((hi - lo) / step + 1) as u64;
                // c>1 spreads accesses; element count is still `iters`.
                let _ = c;
                touched = iters;
            }
            _ => {
                // Multiple pulled vars in one dim: bound by the product.
                touched = pulled_vars
                    .iter()
                    .map(|v| {
                        let (_, lo, hi, step) =
                            *intervals.iter().find(|(iv, ..)| *iv == **v).unwrap();
                        ((hi - lo) / step + 1) as u64
                    })
                    .product();
            }
        }
        words = words.saturating_mul(touched);
    }
    Some(words)
}

/// Try vector prefetch generation for one target: pull out of the LSC and
/// outward through enclosing serial loops up to and including the DOALL
/// (never past it — wrapper loops separate barrier phases), keeping the
/// deepest pull whose footprint fits `vpg_max_words`.
fn try_vpg(
    program: &ccdp_ir::Program,
    cr: &CollectedRef,
    layout: &Layout,
    opt: &ScheduleOptions,
) -> Option<Placement> {
    if !opt.enable_vpg {
        return None;
    }
    let depth = cr.loops.len();
    if depth == 0 {
        return None;
    }
    // Candidate pull chains: loops[depth-1] (the LSC) outward while serial,
    // optionally ending at the DOALL. Stop at the DOALL (inclusive).
    let mut best: Option<(Vec<&LoopCtx>, usize)> = None; // (chain, outermost index)
    let mut chain: Vec<&LoopCtx> = Vec::new();
    for idx in (0..depth).rev() {
        let l = &cr.loops[idx];
        match l.kind {
            LoopKind::Serial => chain.push(l),
            LoopKind::DoAllStatic => {
                chain.push(l);
                if let Some(w) = vpg_words(program, cr, &chain, layout) {
                    if w > 0 && w <= opt.vpg_max_words {
                        best = Some((chain.clone(), idx));
                    }
                }
                break; // never pull past the DOALL
            }
            LoopKind::DoAllDynamic { .. } => break,
        }
        if let Some(w) = vpg_words(program, cr, &chain, layout) {
            if w > 0 && w <= opt.vpg_max_words {
                best = Some((chain.clone(), idx));
            } else if w > opt.vpg_max_words {
                // Deeper pulls only grow; but an earlier (shorter) chain may
                // already be recorded in `best`.
                break;
            }
        } else {
            break; // non-constant bounds: "loop bound unknown"
        }
    }
    let (chain, idx) = best?;
    // Meaningful only if the target actually varies over some pulled loop.
    let varies = cr
        .r
        .index
        .iter()
        .any(|ix| chain.iter().any(|l| ix.uses(l.var)));
    if !varies {
        return None;
    }
    Some(Placement::Vector {
        before: cr.loops[idx].id,
        over: chain.iter().map(|l| l.id).collect(),
    })
}

/// Issue cadence for one target under self-spatial reuse: how many
/// consecutive iterations of `lsc` touch the same cache line. 1 when the
/// reference has no self-spatial locality along the loop (or the
/// optimization is disabled).
fn sp_cadence(cr: &CollectedRef, lsc: &LoopCtx, opt: &ScheduleOptions) -> u32 {
    if !opt.exploit_self_spatial {
        return 1;
    }
    // Self-spatial along the loop: the loop variable appears (only) in the
    // contiguous dimension with a small stride, and nowhere else.
    let c0 = cr.r.index[0].coeff(lsc.var);
    if c0 == 0 {
        return 1;
    }
    #[allow(clippy::manual_div_ceil)]
    if cr.r.index.iter().skip(1).any(|ix| ix.uses(lsc.var)) {
        return 1;
    }
    let stride = (c0 * lsc.step).unsigned_abs();
    if stride == 0 || stride as usize >= opt.line_words {
        return 1;
    }
    (opt.line_words as u64 / stride) as u32
}

/// Try software pipelining for a set of targets sharing one serial LSC.
/// `cadences[k]` is the issue cadence of target `k`.
fn try_sp(
    lsc: &LoopCtx,
    body_cycles: u64,
    cadences: &[u32],
    opt: &ScheduleOptions,
) -> Option<u32> {
    if !opt.enable_sp || cadences.is_empty() {
        return None;
    }
    debug_assert_eq!(lsc.kind, LoopKind::Serial);
    let mut d = (opt.prefetch_latency as u64)
        .div_euclid(body_cycles.max(1))
        .max(1) as u32;
    d = d.min(opt.sp_max_distance);
    // Hardware constraint: outstanding prefetched words must fit the queue.
    // Self-spatial cadence divides each target's in-flight footprint.
    let per_iter_words_x16: u32 = cadences
        .iter()
        .map(|&e| (16 * opt.line_words as u32) / e.max(1))
        .sum();
    if let Some(d_queue) = (16 * opt.queue_words as u32).checked_div(per_iter_words_x16) {
        d = d.min(d_queue.max(1));
    }
    (d >= opt.sp_min_distance).then_some(d)
}

/// Compute the scheduling decisions for one epoch.
pub fn schedule_epoch(
    program: &ccdp_ir::Program,
    epoch: &Epoch,
    layout: &Layout,
    targets: &[RefId],
    opt: &ScheduleOptions,
) -> EpochSchedule {
    let refs = collect_refs_in_stmts(&epoch.stmts);
    let by_id: HashMap<RefId, &CollectedRef> =
        refs.iter().map(|cr| (cr.r.id, cr)).collect();

    // Group targets by LSC.
    let mut groups: HashMap<Option<LoopId>, Vec<&CollectedRef>> = HashMap::new();
    for t in targets {
        if let Some(cr) = by_id.get(t) {
            groups.entry(lsc_of(cr)).or_default().push(cr);
        }
    }

    // Find loop bodies (for body_has_if and cost estimation).
    let mut loop_bodies: HashMap<LoopId, (&[Stmt], LoopCtx)> = HashMap::new();
    collect_loops(&epoch.stmts, &mut loop_bodies);

    let mut placements = HashMap::new();
    let mut keys: Vec<Option<LoopId>> = groups.keys().copied().collect();
    keys.sort();
    for key in keys {
        let members = &groups[&key];
        match key {
            None => {
                // Case 4: serial code segment → MBP.
                for cr in members {
                    placements.insert(cr.r.id, mbp_or_drop(opt));
                }
            }
            Some(lid) => {
                let (body, ctx) = &loop_bodies[&lid];
                let bounds_known =
                    ctx.lo.as_constant().is_some() && ctx.hi.as_constant().is_some();
                let has_if = body_has_if(body);
                // Case 5: loop containing if-statements → MBP only (the
                // materializer keeps the prefetch inside the if branch).
                let order: &[&str] = if has_if {
                    &["mbp"]
                } else {
                    match ctx.kind {
                        LoopKind::Serial if bounds_known => &["vpg", "sp", "mbp"],
                        LoopKind::Serial => &["sp", "mbp"],
                        LoopKind::DoAllStatic if bounds_known => &["vpg", "mbp"],
                        LoopKind::DoAllStatic => &["mbp"],
                        LoopKind::DoAllDynamic { .. } => &["mbp"],
                    }
                };

                let mut remaining: Vec<&CollectedRef> = members.clone();
                for &tech in order {
                    if remaining.is_empty() {
                        break;
                    }
                    match tech {
                        "vpg" => {
                            remaining.retain(|cr| {
                                if let Some(p) = try_vpg(program, cr, layout, opt) {
                                    placements.insert(cr.r.id, p);
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                        "sp" => {
                            let body_cycles = estimate_stmt_cycles(body);
                            let cadences: Vec<u32> = remaining
                                .iter()
                                .map(|cr| sp_cadence(cr, ctx, opt))
                                .collect();
                            if let Some(d) = try_sp(ctx, body_cycles, &cadences, opt) {
                                for (cr, every) in
                                    remaining.drain(..).zip(cadences)
                                {
                                    placements.insert(
                                        cr.r.id,
                                        Placement::Pipeline {
                                            loop_id: lid,
                                            distance: d,
                                            every,
                                        },
                                    );
                                }
                            }
                        }
                        "mbp" => {
                            for cr in remaining.drain(..) {
                                placements.insert(cr.r.id, mbp_or_drop(opt));
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                // Anything still unplaced is dropped.
                for cr in remaining {
                    placements.insert(cr.r.id, Placement::Drop);
                }
            }
        }
    }

    EpochSchedule { placements }
}

fn mbp_or_drop(opt: &ScheduleOptions) -> Placement {
    if opt.enable_mbp {
        Placement::MoveBack
    } else {
        Placement::Drop
    }
}

fn collect_loops<'a>(
    stmts: &'a [Stmt],
    out: &mut HashMap<LoopId, (&'a [Stmt], LoopCtx)>,
) {
    for s in stmts {
        match s {
            Stmt::Loop(l) => {
                out.insert(
                    l.id,
                    (
                        &l.body[..],
                        LoopCtx {
                            id: l.id,
                            var: l.var,
                            lo: l.lo.clone(),
                            hi: l.hi.clone(),
                            step: l.step,
                            kind: l.kind,
                            align: l.align,
                            is_innermost: false, // not needed here
                        },
                    ),
                );
                collect_loops(&l.body, out);
            }
            Stmt::If(i) => {
                collect_loops(&i.then_branch, out);
                collect_loops(&i.else_branch, out);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

/// Outcome of materializing one epoch: the rewritten statements and which
/// targets had their `MoveBack` placement dropped for lack of distance.
pub struct Materialized {
    pub stmts: Vec<Stmt>,
    pub dropped_mbp: Vec<RefId>,
    /// (target, achieved weighted distance) for MBP diagnostics.
    pub mbp_distances: Vec<(RefId, u32)>,
}

/// Rewrite an epoch's statements according to the schedule: insert
/// `prefetch-vector` statements, attach pipelined prefetches, hoist
/// moved-back line prefetches.
pub fn materialize_epoch(
    epoch_stmts: &[Stmt],
    sched: &EpochSchedule,
    opt: &ScheduleOptions,
) -> Materialized {
    let mut m = Materialized {
        stmts: Vec::new(),
        dropped_mbp: Vec::new(),
        mbp_distances: Vec::new(),
    };
    m.stmts = rewrite_block(epoch_stmts, sched, opt, &mut m.dropped_mbp, &mut m.mbp_distances);
    m
}

/// Weighted "distance" contribution of skipping one statement (paper: the
/// move-back parameter is in code distance; loops weigh more).
fn stmt_weight(s: &Stmt) -> u32 {
    match s {
        Stmt::Assign(_) => 1,
        Stmt::If(_) => 1,
        Stmt::Loop(_) => 5,
        Stmt::Prefetch(_) => 1,
    }
}

/// Conservative may-conflict test: does `w` possibly write the element `r`
/// reads, at equal values of all shared loop variables? Disjoint only when
/// some dimension differs by a nonzero constant.
fn write_may_conflict(r: &ArrayRef, w: &ArrayRef) -> bool {
    if r.array != w.array {
        return false;
    }
    for (ri, wi) in r.index.iter().zip(&w.index) {
        if let Some(d) = ri.uniform_difference(wi) {
            if d != 0 {
                return false;
            }
        }
    }
    true
}

/// Does a statement (recursively) write something that may conflict with `r`?
fn stmt_conflicts(s: &Stmt, r: &ArrayRef) -> bool {
    match s {
        Stmt::Assign(a) => write_may_conflict(r, &a.write),
        Stmt::Loop(l) => l.body.iter().any(|s| stmt_conflicts(s, r)),
        Stmt::If(i) => {
            i.then_branch.iter().any(|s| stmt_conflicts(s, r))
                || i.else_branch.iter().any(|s| stmt_conflicts(s, r))
        }
        Stmt::Prefetch(_) => false,
    }
}

fn rewrite_block(
    stmts: &[Stmt],
    sched: &EpochSchedule,
    opt: &ScheduleOptions,
    dropped: &mut Vec<RefId>,
    distances: &mut Vec<(RefId, u32)>,
) -> Vec<Stmt> {
    // First rewrite children, preserving positions.
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Loop(l) => {
                let mut new_l = l.clone();
                new_l.body = rewrite_block(&l.body, sched, opt, dropped, distances);
                // Attach pipelined prefetches for targets on this loop.
                for (rid, p) in &sched.placements {
                    if let Placement::Pipeline { loop_id, distance, every } = p {
                        if *loop_id == l.id {
                            if let Some(target) = find_read(&l.body, *rid) {
                                let shifted: Vec<Affine> = target
                                    .index
                                    .iter()
                                    .map(|ix| {
                                        ix.substitute(
                                            l.var,
                                            &Affine::var(l.var)
                                                .add_const(*distance as i64 * l.step),
                                        )
                                    })
                                    .collect();
                                new_l.pipeline.push(PipelinedPrefetch {
                                    covers: *rid,
                                    array: target.array,
                                    index: shifted,
                                    distance: *distance,
                                    every: *every,
                                });
                            }
                        }
                    }
                }
                // Vector prefetches inserted before this loop.
                let mut vecs: Vec<(RefId, Vec<LoopId>)> = sched
                    .placements
                    .iter()
                    .filter_map(|(rid, p)| match p {
                        Placement::Vector { before, over } if *before == l.id => {
                            Some((*rid, over.clone()))
                        }
                        _ => None,
                    })
                    .collect();
                vecs.sort_by_key(|(rid, _)| *rid);
                for (rid, over) in vecs {
                    if let Some(target) = find_read_in_loop(l, rid) {
                        out.push(Stmt::Prefetch(PrefetchStmt {
                            kind: PrefetchKind::Vector {
                                covers: rid,
                                array: target.array,
                                over,
                            },
                        }));
                    }
                }
                out.push(Stmt::Loop(new_l));
            }
            Stmt::If(i) => {
                let mut new_i = i.clone();
                new_i.then_branch =
                    rewrite_block(&i.then_branch, sched, opt, dropped, distances);
                new_i.else_branch =
                    rewrite_block(&i.else_branch, sched, opt, dropped, distances);
                out.push(Stmt::If(new_i));
            }
            other => out.push(other.clone()),
        }
    }

    // Now hoist MoveBack line prefetches for targets whose Assign sits
    // directly in this block.
    let mut insertions: Vec<(usize, Stmt, RefId, u32)> = Vec::new();
    for (pos, s) in out.iter().enumerate() {
        let Stmt::Assign(a) = s else { continue };
        for r in &a.reads {
            match sched.placements.get(&r.id) {
                Some(Placement::MoveBack) => {}
                _ => continue,
            }
            // Scan back from `pos`, accumulating weighted distance, stopping
            // at conflicts and at the move-back cap.
            let mut insert_at = pos;
            let mut dist = 0u32;
            while insert_at > 0 && dist < opt.mbp_max_stmts {
                let prev = &out[insert_at - 1];
                if stmt_conflicts(prev, r) {
                    break;
                }
                dist += stmt_weight(prev);
                insert_at -= 1;
            }
            if dist < opt.mbp_min_stmts {
                dropped.push(r.id);
                continue;
            }
            distances.push((r.id, dist));
            insertions.push((
                insert_at,
                Stmt::Prefetch(PrefetchStmt {
                    kind: PrefetchKind::Line {
                        covers: r.id,
                        array: r.array,
                        index: r.index.clone(),
                    },
                }),
                r.id,
                dist,
            ));
        }
    }
    // Apply insertions back-to-front so indices stay valid.
    insertions.sort_by(|a, b| b.0.cmp(&a.0).then(b.2.cmp(&a.2)));
    for (at, stmt, _, _) in insertions {
        out.insert(at, stmt);
    }
    out
}

/// Find the read reference with a given id inside a statement list.
fn find_read(stmts: &[Stmt], rid: RefId) -> Option<ArrayRef> {
    for cr in collect_refs_in_stmts(stmts) {
        if cr.r.id == rid {
            return Some(cr.r);
        }
    }
    None
}

fn find_read_in_loop(l: &ccdp_ir::Loop, rid: RefId) -> Option<ArrayRef> {
    find_read(std::slice::from_ref(&Stmt::Loop(l.clone())), rid)
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::{Program, ProgramBuilder};

    fn layout4(p: &Program) -> Layout {
        Layout::new(p, 4)
    }

    /// MXM-like: doall j { serial k { serial i { C += A(i,k)*B(k,j) } } }.
    fn mxm_like(n: i64) -> Program {
        let mut pb = ProgramBuilder::new("mxm");
        let a = pb.shared("A", &[n as usize, n as usize]);
        let b = pb.shared("B", &[n as usize, n as usize]);
        let c = pb.shared("C", &[n as usize, n as usize]);
        pb.parallel_epoch("init", |e| {
            e.doall("j0", 0, n - 1, |e, j| {
                e.serial("i0", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), 1.0);
                });
            });
        });
        pb.parallel_epoch("mult", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("k", 0, n - 1, |e, k| {
                    e.serial("i", 0, n - 1, |e, i| {
                        e.assign(
                            c.at2(i, j),
                            c.at2(i, j).rd() + a.at2(i, k).rd() * b.at2(k, j).rd(),
                        );
                    });
                });
            });
        });
        pb.finish().unwrap()
    }

    fn schedule_for(
        p: &Program,
        opt: &ScheduleOptions,
    ) -> (EpochSchedule, Vec<RefId>, &'static str) {
        let layout = layout4(p);
        let stale = ccdp_analysis::analyze_stale(p, &layout);
        let ta = crate::prefetch_targets(p, &stale, &crate::TargetOptions::default());
        let targets = ta.prefetch_set();
        let epochs = p.epochs();
        let mult = epochs.last().unwrap();
        (schedule_epoch(p, mult, &layout, &targets, opt), targets, "mult")
    }

    #[test]
    fn mxm_a_read_gets_vector_prefetch() {
        let p = mxm_like(32);
        let opt = ScheduleOptions::default();
        let (sched, targets, _) = schedule_for(&p, &opt);
        assert!(!targets.is_empty(), "A(i,k) must be a prefetch target");
        let has_vector = sched
            .placements
            .values()
            .any(|p| matches!(p, Placement::Vector { .. }));
        assert!(has_vector, "case 1 with known bounds prefers VPG: {sched:?}");
    }

    #[test]
    fn vpg_disabled_falls_to_sp() {
        let p = mxm_like(32);
        let opt = ScheduleOptions { enable_vpg: false, ..Default::default() };
        let (sched, _, _) = schedule_for(&p, &opt);
        assert!(
            sched
                .placements
                .values()
                .all(|p| matches!(p, Placement::Pipeline { .. })),
            "{sched:?}"
        );
    }

    #[test]
    fn sp_distance_respects_queue_capacity() {
        // Tiny body -> huge latency-derived distance, but the queue caps the
        // in-flight footprint: distance * line_words / cadence <= queue.
        let p = mxm_like(32);
        let opt = ScheduleOptions {
            enable_vpg: false,
            sp_max_distance: 64,
            ..Default::default()
        };
        let (sched, _, _) = schedule_for(&p, &opt);
        for pl in sched.placements.values() {
            if let Placement::Pipeline { distance, every, .. } = pl {
                assert!(
                    *distance * 4 / (*every).max(1) <= 16,
                    "distance {distance} (every {every}) overflows queue"
                );
            }
        }
    }

    #[test]
    fn self_spatial_cadence_is_line_aligned() {
        // A(i,k) with stride-1 inner loop: one prefetch per 4-word line.
        let p = mxm_like(32);
        let opt = ScheduleOptions { enable_vpg: false, ..Default::default() };
        let (sched, _, _) = schedule_for(&p, &opt);
        let mut saw = false;
        for pl in sched.placements.values() {
            if let Placement::Pipeline { every, .. } = pl {
                assert_eq!(*every, 4, "stride-1 ref on 4-word lines");
                saw = true;
            }
        }
        assert!(saw);
        // Disabled: cadence 1.
        let opt1 = ScheduleOptions {
            enable_vpg: false,
            exploit_self_spatial: false,
            ..Default::default()
        };
        let (sched1, _, _) = schedule_for(&p, &opt1);
        for pl in sched1.placements.values() {
            if let Placement::Pipeline { every, .. } = pl {
                assert_eq!(*every, 1);
            }
        }
    }

    #[test]
    fn all_disabled_drops_targets() {
        let p = mxm_like(16);
        let opt = ScheduleOptions {
            enable_vpg: false,
            enable_sp: false,
            enable_mbp: false,
            ..Default::default()
        };
        let (sched, targets, _) = schedule_for(&p, &opt);
        assert!(!targets.is_empty());
        assert!(sched
            .placements
            .values()
            .all(|p| matches!(p, Placement::Drop)));
    }

    #[test]
    fn dynamic_doall_uses_mbp_only() {
        let mut pb = ProgramBuilder::new("dyn");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall_dynamic("i", 0, 63, 4, |e, i| {
                e.assign(b.at1(i), b.at1(i).rd() + a.at1(63 - i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let layout = layout4(&p);
        let stale = ccdp_analysis::analyze_stale(&p, &layout);
        let ta = crate::prefetch_targets(&p, &stale, &crate::TargetOptions::default());
        let targets = ta.prefetch_set();
        assert!(!targets.is_empty());
        let epochs = p.epochs();
        let sched =
            schedule_epoch(&p, epochs[1], &layout, &targets, &ScheduleOptions::default());
        assert!(
            sched
                .placements
                .values()
                .all(|p| matches!(p, Placement::MoveBack)),
            "case 3 is MBP-only: {sched:?}"
        );
    }

    #[test]
    fn loop_with_if_uses_mbp_only_case5() {
        let mut pb = ProgramBuilder::new("c5");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(b.at1(i), b.at1(i).rd() * 2.0);
                e.if_(ccdp_ir::CondB::gt(i, 0), |e| {
                    e.assign(b.at1(i), b.at1(i).rd() + 1.0);
                    e.assign(b.at1(i), a.at1(63 - i).rd());
                });
            });
        });
        let p = pb.finish().unwrap();
        let layout = layout4(&p);
        let stale = ccdp_analysis::analyze_stale(&p, &layout);
        let ta = crate::prefetch_targets(&p, &stale, &crate::TargetOptions::default());
        let targets = ta.prefetch_set();
        assert!(!targets.is_empty());
        let epochs = p.epochs();
        let sched =
            schedule_epoch(&p, epochs[1], &layout, &targets, &ScheduleOptions::default());
        assert!(
            sched
                .placements
                .values()
                .all(|p| matches!(p, Placement::MoveBack)),
            "case 5 is MBP-only: {sched:?}"
        );
        // Materialize and confirm the prefetch stays inside the if branch.
        let m = materialize_epoch(&epochs[1].stmts, &sched, &ScheduleOptions::default());
        let text_prog = {
            let mut p2 = p.clone();
            if let ccdp_ir::ProgramItem::Epoch(e) = &mut p2.items[1] {
                e.stmts = m.stmts.clone();
            }
            ccdp_ir::print_program(&p2)
        };
        let if_pos = text_prog.find("if i > 0").unwrap();
        let pf_pos = text_prog.find("! prefetch-line A").unwrap();
        assert!(
            pf_pos > if_pos,
            "prefetch must stay inside the if branch:\n{text_prog}"
        );
    }

    #[test]
    fn mbp_does_not_cross_conflicting_write() {
        let mut pb = ProgramBuilder::new("mb");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.serial_epoch("seg", |e| {
            e.serial("i", 1, 62, |e, i| {
                // write A(i) — the later prefetch of A(i) must not move
                // above this statement.
                e.assign(a.at1(i), b.at1(i).rd());
                e.assign(b.at1(i), b.at1(i).rd() * 0.5);
                e.assign(b.at1(i), b.at1(i).rd() + a.at1(i).rd());
            });
        });
        // A(i) read in the serial epoch: stale? written by foreign PEs in
        // epoch w; PE0 reads everything → stale. It is in an innermost loop.
        let p = pb.finish().unwrap();
        let layout = layout4(&p);
        let stale = ccdp_analysis::analyze_stale(&p, &layout);
        let ta = crate::prefetch_targets(&p, &stale, &crate::TargetOptions::default());
        let targets = ta.prefetch_set();
        let epochs = p.epochs();
        let opt = ScheduleOptions { enable_vpg: false, enable_sp: false, ..Default::default() };
        let sched = schedule_epoch(&p, epochs[1], &layout, &targets, &opt);
        let m = materialize_epoch(&epochs[1].stmts, &sched, &opt);
        // Locate positions inside the loop body.
        let Stmt::Loop(l) = &m.stmts[0] else { panic!() };
        let pf_idx = l
            .body
            .iter()
            .position(|s| matches!(s, Stmt::Prefetch(_)))
            .expect("prefetch materialized");
        let w_idx = l
            .body
            .iter()
            .position(|s| matches!(s, Stmt::Assign(a) if a.write.array == ccdp_ir::ArrayId(0)))
            .unwrap();
        assert!(
            pf_idx > w_idx,
            "prefetch of A(i) must stay below the write of A(i): {:?}",
            l.body.iter().map(stmt_weight).collect::<Vec<_>>()
        );
    }

    #[test]
    fn estimate_cycles_scales_with_trip_count() {
        let p = mxm_like(8);
        let epochs = p.epochs();
        let mult = &epochs[1].stmts;
        let c = estimate_stmt_cycles(mult);
        let p2 = mxm_like(16);
        let epochs2 = p2.epochs();
        let c2 = estimate_stmt_cycles(&epochs2[1].stmts);
        assert!(c2 > 3 * c, "trip-count scaling: {c} vs {c2}");
    }
}
