//! Prefetch target analysis (paper Fig. 1).

use ccdp_analysis::{find_uniform_groups, group_spatial, StaleAnalysis};
use ccdp_ir::{collect_refs_in_stmts, Program, RefAccess, RefId, Sharing};

/// Tuning knobs for target analysis.
#[derive(Clone, Copy, Debug)]
pub struct TargetOptions {
    /// Cache line size in 8-byte words (T3D Alpha 21064: 32 B = 4 words).
    pub line_words: usize,
    /// Eliminate non-leading members of group-spatial reference groups
    /// (paper Fig. 1's main optimization). Disabling it is the
    /// `ablation_target` experiment.
    pub exploit_group_spatial: bool,
    /// Paper §6 extension: also prefetch *clean* shared reads in innermost
    /// loops (pure latency hiding, no coherence requirement).
    pub prefetch_clean: bool,
}

impl Default for TargetOptions {
    fn default() -> Self {
        TargetOptions {
            line_words: 4,
            exploit_group_spatial: true,
            prefetch_clean: false,
        }
    }
}

/// What target analysis decided for one read reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TargetDecision {
    /// Clean read, not prefetched: plain cached access.
    Clean,
    /// In the prefetch set `S`: the scheduler will pick a technique.
    Prefetch,
    /// Clean read selected for prefetching by the `prefetch_clean`
    /// extension.
    PrefetchClean,
    /// Potentially stale, eliminated as the non-leading member of a
    /// group-spatial group; rides on `leader`'s line fill.
    Follower { leader: RefId },
    /// Potentially stale but not worth prefetching (not in an innermost
    /// loop / serial segment): must bypass the cache (or re-fetch) at use.
    Bypass,
}

/// Result of target analysis over a whole program.
#[derive(Clone, Debug)]
pub struct TargetAnalysis {
    /// Indexed by `RefId`; `Clean` for writes and private reads too (they
    /// need no special handling).
    pub decisions: Vec<TargetDecision>,
}

impl TargetAnalysis {
    pub fn decision(&self, r: RefId) -> TargetDecision {
        self.decisions[r.index()]
    }

    /// Reference ids in the prefetch set `S` (output of Fig. 1).
    pub fn prefetch_set(&self) -> Vec<RefId> {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                matches!(d, TargetDecision::Prefetch | TargetDecision::PrefetchClean)
            })
            .map(|(i, _)| RefId(i as u32))
            .collect()
    }

    pub fn count(&self, d: TargetDecision) -> usize {
        self.decisions.iter().filter(|&&x| x == d).count()
    }
}

/// Run prefetch target analysis (paper Fig. 1).
///
/// Steps, per the paper:
/// 1. `S := P` (all potentially-stale references).
/// 2. Eliminate references not located in an innermost loop (they become
///    `Bypass`: still coherent, no latency hiding). References in serial
///    code *segments* (no enclosing loop) are kept — Fig. 2 case 4 schedules
///    them with moving-back.
/// 3. Per inner loop, detect group-spatial locality among uniformly
///    generated references and keep only the leading reference; the others
///    become `Follower`s issued as normal reads.
pub fn prefetch_targets(
    program: &Program,
    stale: &StaleAnalysis,
    opt: &TargetOptions,
) -> TargetAnalysis {
    let mut decisions = vec![TargetDecision::Clean; program.n_refs as usize];

    let mut seen = std::collections::HashSet::new();
    for epoch in program.epochs() {
        if !seen.insert(epoch.id) {
            continue;
        }
        let refs = collect_refs_in_stmts(&epoch.stmts);

        // Step 1+2: stale reads in innermost loops or serial segments.
        let mut candidates: Vec<&ccdp_ir::CollectedRef> = Vec::new();
        for cr in &refs {
            if cr.access != RefAccess::Read {
                continue;
            }
            if program.array(cr.r.array).sharing != Sharing::Shared {
                continue;
            }
            let is_stale = stale.is_stale(cr.r.id);
            let placed = cr.in_innermost_loop() || cr.loops.is_empty();
            match (is_stale, placed) {
                (true, true) => {
                    decisions[cr.r.id.index()] = TargetDecision::Prefetch;
                    candidates.push(cr);
                }
                (true, false) => {
                    decisions[cr.r.id.index()] = TargetDecision::Bypass;
                }
                (false, true) if opt.prefetch_clean => {
                    decisions[cr.r.id.index()] = TargetDecision::PrefetchClean;
                }
                _ => {}
            }
        }

        // Step 3: group-spatial elimination (stale candidates only — clean
        // prefetches don't carry a coherence obligation, but they benefit
        // from the same elimination, so include them in the grouping).
        if opt.exploit_group_spatial {
            let in_loops: Vec<&ccdp_ir::CollectedRef> = candidates
                .iter()
                .copied()
                .filter(|cr| !cr.loops.is_empty())
                .collect();
            for group in find_uniform_groups(&in_loops) {
                if let Some(gs) = group_spatial(program, &in_loops, &group, opt.line_words)
                {
                    for f in gs.followers {
                        decisions[f.index()] =
                            TargetDecision::Follower { leader: gs.leader };
                    }
                }
            }
        }
    }

    TargetAnalysis { decisions }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_dist::Layout;
    use ccdp_ir::ProgramBuilder;

    /// Epoch 1 writes A; epoch 2 reads A(i,j), A(i+1,j), A(i+2,j) (stale,
    /// group-spatial, leader i+2) plus A(j,i) transposed (stale, not
    /// innermost-groupable with the others), plus one read not in the inner
    /// loop.
    fn build() -> (ccdp_ir::Program, Layout) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[64, 64]);
        let b = pb.shared("B", &[64, 64]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, 63, |e, j| {
                e.serial("i", 0, 63, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.parallel_epoch("r", |e| {
            e.doall("j", 0, 63, |e, j| {
                // Not innermost: guarded single read of a foreign column.
                e.if_(ccdp_ir::CondB::gt(j, 0), |e| {
                    e.assign(b.at2(0, j), a.at2(0, j - 1).rd());
                });
                e.serial("i", 0, 61, |e, i| {
                    e.assign(
                        b.at2(i, j),
                        a.at2(i, j - 1).rd()
                            + a.at2(i + 1, j - 1).rd()
                            + a.at2(i + 2, j - 1).rd(),
                    );
                });
            });
        });
        let p = pb.finish().unwrap();
        let l = Layout::new(&p, 4);
        (p, l)
    }

    #[test]
    fn fig1_pipeline() {
        let (p, l) = build();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        // All four A-reads are potentially stale (j-1 crosses block edges).
        assert_eq!(stale.n_stale(), 4);

        let t = prefetch_targets(&p, &stale, &TargetOptions::default());
        // The not-innermost read became Bypass.
        assert_eq!(t.count(TargetDecision::Bypass), 1);
        // The three-member group kept one leader; two followers.
        let followers = t
            .decisions
            .iter()
            .filter(|d| matches!(d, TargetDecision::Follower { .. }))
            .count();
        assert_eq!(followers, 2);
        assert_eq!(t.prefetch_set().len(), 1);
        // Leader is the i+2 member (ascending traversal).
        let leader = t.prefetch_set()[0];
        let refs: Vec<_> = p
            .epochs()
            .iter()
            .flat_map(|e| ccdp_ir::collect_refs_in_stmts(&e.stmts))
            .collect();
        let lcr = refs.iter().find(|c| c.r.id == leader).unwrap();
        assert_eq!(lcr.r.index[0].constant_term(), 2);
    }

    #[test]
    fn group_spatial_can_be_disabled() {
        let (p, l) = build();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        let t = prefetch_targets(
            &p,
            &stale,
            &TargetOptions { exploit_group_spatial: false, ..Default::default() },
        );
        assert_eq!(t.prefetch_set().len(), 3);
        assert_eq!(t.count(TargetDecision::Bypass), 1);
    }

    #[test]
    fn prefetch_clean_extension_adds_clean_reads() {
        let (p, l) = build();
        let stale = ccdp_analysis::analyze_stale(&p, &l);
        let t = prefetch_targets(
            &p,
            &stale,
            &TargetOptions { prefetch_clean: true, ..Default::default() },
        );
        // The B reads? none. The clean shared reads: b writes only... the
        // clean candidates here are none (all A reads stale, B only
        // written), so counts match the default run.
        let t0 = prefetch_targets(&p, &stale, &TargetOptions::default());
        assert_eq!(
            t.prefetch_set().len(),
            t0.prefetch_set().len(),
            "no clean reads to add in this kernel"
        );

        // A kernel with a clean read picks it up:
        let mut pb = ProgramBuilder::new("c");
        let x = pb.shared("X", &[32]);
        let y = pb.shared("Y", &[32]);
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 31, |e, i| {
                e.assign(y.at1(i), x.at1(i).rd());
            });
        });
        let p2 = pb.finish().unwrap();
        let l2 = Layout::new(&p2, 4);
        let s2 = ccdp_analysis::analyze_stale(&p2, &l2);
        assert_eq!(s2.n_stale(), 0);
        let t2 = prefetch_targets(
            &p2,
            &s2,
            &TargetOptions { prefetch_clean: true, ..Default::default() },
        );
        assert_eq!(t2.count(TargetDecision::PrefetchClean), 1);
    }
}
