//! JSON serialization of plan statistics (for the machine-readable bench
//! reports).

use ccdp_json::{Json, ToJson};

use crate::PlanStats;

impl ToJson for PlanStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("stale_reads", self.stale_reads.to_json()),
            ("targets", self.targets.to_json()),
            ("vector", self.vector.to_json()),
            ("pipelined", self.pipelined.to_json()),
            ("moved_back", self.moved_back.to_json()),
            ("followers", self.followers.to_json()),
            ("bypass", self.bypass.to_json()),
            ("dropped", self.dropped.to_json()),
            ("clean_prefetch", self.clean_prefetch.to_json()),
        ])
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn plan_stats_serialize_all_fields() {
        let s = PlanStats {
            stale_reads: 10,
            targets: 8,
            vector: 3,
            pipelined: 4,
            moved_back: 1,
            followers: 2,
            bypass: 2,
            dropped: 0,
            clean_prefetch: 1,
        };
        let j = s.to_json();
        assert_eq!(j.get("stale_reads").and_then(Json::as_u64), Some(10));
        assert_eq!(j.get("clean_prefetch").and_then(Json::as_u64), Some(1));
        // Technique counts partition the targets (plan invariant); mirror it
        // in the serialized form.
        let parts: u64 = ["vector", "pipelined", "moved_back", "dropped"]
            .iter()
            .map(|k| j.get(k).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(parts, 8);
    }
}
