//! Direct-mapped data cache with per-word versions and fill timestamps.

/// A direct-mapped cache over the shared word address space.
///
/// Every line records, besides tag and data, (a) the memory **version** of
/// each word at fill time — consumed by the coherence oracle — and (b) the
/// **phase** (barrier interval) and **ready cycle** of the fill — consumed
/// by the `Fresh` read handling and the prefetch timing model.
///
/// `Clone` exists for the epoch-sharded parallel path: each worker clones
/// the caches of the PEs in its block and the merged clones replace the
/// originals at the barrier.
#[derive(Clone)]
pub struct Cache {
    n_lines: usize,
    line_words: usize,
    tags: Vec<u64>,
    valid: Vec<bool>,
    filled_phase: Vec<u32>,
    ready_at: Vec<u64>,
    values: Vec<f64>,
    versions: Vec<u32>,
    /// Line was installed by a prefetch (line or vector), not a demand fill
    /// — consumed by the prefetch accuracy/timeliness metrics.
    prefetched: Vec<bool>,
    /// Word has been read since its line was installed.
    used: Vec<bool>,
}

/// Result of a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    pub line: usize,
    pub filled_phase: u32,
    pub ready_at: u64,
}

impl Cache {
    pub fn new(n_lines: usize, line_words: usize) -> Cache {
        assert!(n_lines.is_power_of_two(), "direct-mapped index needs pow2");
        Cache {
            n_lines,
            line_words,
            tags: vec![0; n_lines],
            valid: vec![false; n_lines],
            filled_phase: vec![0; n_lines],
            ready_at: vec![0; n_lines],
            values: vec![0.0; n_lines * line_words],
            versions: vec![0; n_lines * line_words],
            prefetched: vec![false; n_lines],
            used: vec![false; n_lines * line_words],
        }
    }

    #[inline]
    pub fn line_words(&self) -> usize {
        self.line_words
    }

    /// Line base address of a word address.
    #[inline]
    pub fn line_addr(&self, addr: usize) -> u64 {
        (addr / self.line_words) as u64
    }

    #[inline]
    fn index_of(&self, line_addr: u64) -> usize {
        (line_addr as usize) & (self.n_lines - 1)
    }

    /// Probe for the line containing `addr`.
    #[inline]
    pub fn lookup(&self, addr: usize) -> Option<Hit> {
        let la = self.line_addr(addr);
        let idx = self.index_of(la);
        (self.valid[idx] && self.tags[idx] == la).then(|| Hit {
            line: idx,
            filled_phase: self.filled_phase[idx],
            ready_at: self.ready_at[idx],
        })
    }

    /// Read a word from a hit line: (value, version-at-fill).
    #[inline]
    pub fn read(&self, line: usize, addr: usize) -> (f64, u32) {
        let w = line * self.line_words + addr % self.line_words;
        (self.values[w], self.versions[w])
    }

    /// Install (or refresh) the line containing `addr` via a *demand* fill,
    /// with data and versions snapshotted from memory at *arrival* (the
    /// caller reads memory at the time the data semantically arrives).
    /// Returns the line.
    #[inline]
    pub fn install(
        &mut self,
        addr: usize,
        phase: u32,
        ready_at: u64,
        words: impl Iterator<Item = (f64, u32)>,
    ) -> usize {
        self.install_with(addr, phase, ready_at, false, words)
    }

    /// Install the line containing `addr` via a *prefetch* (line or vector);
    /// the line is tracked for the accuracy/timeliness metrics.
    #[inline]
    pub fn install_prefetch(
        &mut self,
        addr: usize,
        phase: u32,
        ready_at: u64,
        words: impl Iterator<Item = (f64, u32)>,
    ) -> usize {
        self.install_with(addr, phase, ready_at, true, words)
    }

    fn install_with(
        &mut self,
        addr: usize,
        phase: u32,
        ready_at: u64,
        prefetched: bool,
        words: impl Iterator<Item = (f64, u32)>,
    ) -> usize {
        let la = self.line_addr(addr);
        let idx = self.index_of(la);
        self.tags[idx] = la;
        self.valid[idx] = true;
        self.filled_phase[idx] = phase;
        self.ready_at[idx] = ready_at;
        self.prefetched[idx] = prefetched;
        let base = idx * self.line_words;
        let mut n = 0;
        for (k, (v, ver)) in words.enumerate() {
            self.values[base + k] = v;
            self.versions[base + k] = ver;
            self.used[base + k] = false;
            n += 1;
        }
        debug_assert_eq!(n, self.line_words);
        idx
    }

    /// Was this (present) line installed by a prefetch?
    #[inline]
    pub fn is_prefetched(&self, line: usize) -> bool {
        self.prefetched[line]
    }

    /// Record that `addr` in `line` was consumed; true on the first read of
    /// that word since the line's install (drives the accuracy metric).
    #[inline]
    pub fn mark_used(&mut self, line: usize, addr: usize) -> bool {
        let w = line * self.line_words + addr % self.line_words;
        !std::mem::replace(&mut self.used[w], true)
    }

    /// Update one word in place after the owning PE writes it
    /// (write-through with local update). No-op if the line isn't present.
    #[inline]
    pub fn update_word(&mut self, addr: usize, value: f64, version: u32) {
        if let Some(h) = self.lookup(addr) {
            let w = h.line * self.line_words + addr % self.line_words;
            self.values[w] = value;
            self.versions[w] = version;
        }
    }

    /// Line address of whatever valid line currently occupies the slot
    /// `addr` maps to — the line a conflicting install would evict. Used by
    /// the hardware-coherence backends to keep their state maps in lockstep
    /// with cache residency.
    #[inline]
    pub fn resident_line(&self, addr: usize) -> Option<u64> {
        let idx = self.index_of(self.line_addr(addr));
        self.valid[idx].then(|| self.tags[idx])
    }

    /// Invalidate the line containing `addr` (failure-injection tests).
    pub fn invalidate(&mut self, addr: usize) {
        let la = self.line_addr(addr);
        let idx = self.index_of(la);
        if self.valid[idx] && self.tags[idx] == la {
            self.valid[idx] = false;
        }
    }

    /// Drop everything.
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// First word address of the line containing `addr`.
    #[inline]
    pub fn line_base(&self, addr: usize) -> usize {
        addr / self.line_words * self.line_words
    }
}

#[cfg(test)]
mod tests;

#[cfg(test)]
mod unit {
    use super::*;

    fn fill_words(base_val: f64, n: usize) -> impl Iterator<Item = (f64, u32)> {
        (0..n).map(move |k| (base_val + k as f64, 1))
    }

    #[test]
    fn install_then_hit() {
        let mut c = Cache::new(8, 4);
        assert!(c.lookup(13).is_none());
        let line = c.install(13, 3, 100, fill_words(10.0, 4));
        let h = c.lookup(13).unwrap();
        assert_eq!(h.line, line);
        assert_eq!(h.filled_phase, 3);
        assert_eq!(h.ready_at, 100);
        // word 13 is offset 1 within line 3 (addresses 12..16)
        assert_eq!(c.read(line, 13), (11.0, 1));
        assert_eq!(c.read(line, 12), (10.0, 1));
        // Neighbouring line misses.
        assert!(c.lookup(16).is_none());
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = Cache::new(8, 4); // 8 lines: line addr mod 8
        c.install(0, 0, 0, fill_words(0.0, 4));
        assert!(c.lookup(0).is_some());
        // address 8*4 = 32 maps to the same index (line addr 8 ≡ 0 mod 8)
        c.install(32, 0, 0, fill_words(1.0, 4));
        assert!(c.lookup(0).is_none(), "conflicting fill must evict");
        assert!(c.lookup(32).is_some());
    }

    #[test]
    fn update_word_changes_value_and_version() {
        let mut c = Cache::new(8, 4);
        let line = c.install(4, 0, 0, fill_words(0.0, 4));
        c.update_word(5, 99.0, 7);
        assert_eq!(c.read(line, 5), (99.0, 7));
        // Updating an absent address is a no-op.
        c.update_word(100, 1.0, 1);
        assert!(c.lookup(100).is_none());
    }

    #[test]
    fn prefetch_and_used_tracking() {
        let mut c = Cache::new(8, 4);
        let line = c.install_prefetch(4, 0, 50, fill_words(0.0, 4));
        assert!(c.is_prefetched(line));
        assert!(c.mark_used(line, 5), "first read of word 5");
        assert!(!c.mark_used(line, 5), "second read of same word");
        assert!(c.mark_used(line, 4), "other word still fresh");
        // A demand refresh of the same line resets both flags.
        let line2 = c.install(4, 1, 60, fill_words(1.0, 4));
        assert_eq!(line, line2);
        assert!(!c.is_prefetched(line2));
        assert!(c.mark_used(line2, 5), "used bits cleared by reinstall");
    }

    #[test]
    fn invalidate_selectively() {
        let mut c = Cache::new(8, 4);
        c.install(0, 0, 0, fill_words(0.0, 4));
        c.install(4, 0, 0, fill_words(0.0, 4));
        c.invalidate(1);
        assert!(c.lookup(0).is_none());
        assert!(c.lookup(4).is_some());
        c.invalidate_all();
        assert!(c.lookup(4).is_none());
    }
}
