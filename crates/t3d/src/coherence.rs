//! Coherence backends: the seam between the interpreter and "what happens
//! on a shared read/write".
//!
//! Every scheme the simulator executes is a [`CoherenceBackend`]: the
//! interpreter's tree walker routes **all** shared-data reads and writes
//! through the trait, so one dispatch point decides state lookup, remote
//! traffic, cycle charges, and stats. The software schemes (SEQ / BASE /
//! CCDP / INV) are *static* backends — their per-reference decisions are
//! fixed by the scheme and the prefetch plan, which is why the compiled
//! trace can specialize them into [`crate::compiled::AccessKind`] at
//! compile time (the `compiled_equivalence` property test pins the two
//! paths together). The hardware schemes (MESI / Dragon) are *dynamic*
//! backends: they carry per-PE line-state machines and a snooping-bus
//! model, and both execution paths dispatch them through the trait
//! ([`crate::compiled::AccessKind::Hardware`]).
//!
//! # Hardware backends: data model
//!
//! Both hardware backends keep the **data shadow write-through**: every
//! store still updates main memory (bumping the word's version) exactly as
//! the software schemes do, so the coherence oracle and the golden-numerics
//! check apply unchanged. What the protocol state machine governs is the
//! *sharing traffic*: which accesses ride the snooping bus, which remote
//! copies get invalidated (MESI) or patched in place (Dragon), and what
//! that costs. A correct protocol keeps every cached copy current, so both
//! backends are oracle-coherent by construction; the oracle still checks
//! every consumed read, so a protocol bug shows up as a genuine stale value.
//!
//! Dirty-line writeback on eviction is *not* modelled (the shadow keeps
//! memory current, so there is nothing to write back); the protocols here
//! cost the transaction structure — misses, upgrades, updates — not the
//! writeback stream.
//!
//! # Bus model
//!
//! One shared snooping bus, modelled without a global event queue (PEs
//! simulate independently between barriers): each transaction charges the
//! issuing PE its own occupancy `bus_txn` ([`CycleCategory::BusTxn`]) plus
//! the *mean residual occupancy* of the other `P - 1` contending PEs,
//! `bus_txn * (P - 1) / 2` ([`CycleCategory::BusWait`]) — deterministic,
//! order-independent, and monotone in `P`, which is the contention shape a
//! shared bus imposes. On top of that, each PE owns a **delayed-message
//! queue** (after cachesim-rs-mp's `delayed_q`): a transaction's snoop
//! traffic stays outstanding for `bus_txn * (P - 1)` cycles after issue,
//! and a PE with [`MachineConfig::bus_queue`] messages outstanding stalls
//! until the oldest drains. Fault-plan queue storms shrink this capacity
//! through the same [`FaultEngine::effective_queue`] hook that storms the
//! prefetch queue, and latency spikes multiply miss-fill latency through
//! `fill_multiplier` — fault injection applies uniformly through the
//! trait's charge points.
//!
//! Snoop side effects (invalidations, updates) are applied eagerly at the
//! writer's transaction. PEs execute sequentially within a phase, so this
//! is the same "writes land in simulation order" convention every software
//! scheme already uses; programs free of same-phase cross-PE races (what
//! `ccdp-lint`'s phase-race detection verifies) observe identical values
//! either way, and all effects have landed by the barrier.

use std::collections::HashMap;

use ccdp_ir::RefId;

use crate::interp::Simulator;
use crate::metrics::{CycleCategory, TraceEventKind};
use crate::Scheme;

/// What happens on a shared-data access under one execution scheme.
///
/// Methods take the [`Simulator`] explicitly (the backend is moved out of
/// the simulator for the duration of a call), so a backend composes the
/// simulator's charge/trace/oracle primitives instead of duplicating them.
pub trait CoherenceBackend {
    /// Scheme name this backend implements ("MESI", "CCDP", ...).
    fn name(&self) -> &'static str;

    /// Execute one shared read: return the value the program observes,
    /// charging all cycles and feeding the oracle. `craft` is the array's
    /// CRAFT local-access overhead (consulted only by the BASE backend).
    fn read_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        rid: RefId,
        addr: usize,
        craft: u64,
    ) -> f64;

    /// Execute one shared write of `value`. `craft_local` is the array's
    /// CRAFT local-access overhead (BASE backend only).
    fn write_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        craft_local: u64,
        value: f64,
    );

    /// Does this backend execute explicit prefetch statements and pipelined
    /// prefetches? Only the plan-directed CCDP backend does; hardware
    /// backends resolve coherence dynamically and need no plan.
    fn executes_prefetches(&self) -> bool {
        false
    }
}

/// Build the backend for a scheme. `n_pes` sizes the hardware backends'
/// per-PE state.
pub(crate) fn backend_for(scheme: &Scheme, n_pes: usize) -> Box<dyn CoherenceBackend> {
    match scheme {
        Scheme::Sequential => Box::new(SeqBackend),
        Scheme::Base => Box::new(BaseBackend),
        Scheme::Ccdp { .. } => Box::new(CcdpBackend),
        Scheme::InvalidateOnly { .. } => Box::new(InvalidateOnlyBackend),
        Scheme::Mesi => Box::new(Mesi::new(n_pes)),
        Scheme::Dragon => Box::new(Dragon::new(n_pes)),
    }
}

// -- software backends ----------------------------------------------------
//
// Stateless: the scheme (and its plan) lives in the simulator, and the
// access primitives (`cached_read` / `base_read` / `bypass_read` /
// `write_shared_addr`) already implement the semantics. These impls are
// what the compiled trace specializes into `AccessKind`s.

/// Uniprocessor reference scheme: everything cached, `Normal` handling.
struct SeqBackend;

impl CoherenceBackend for SeqBackend {
    fn name(&self) -> &'static str {
        "SEQ"
    }

    fn read_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        rid: RefId,
        addr: usize,
        _craft: u64,
    ) -> f64 {
        sim.cached_read(pe, rid, addr, ccdp_prefetch::Handling::Normal)
    }

    fn write_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        craft_local: u64,
        value: f64,
    ) {
        sim.write_shared_addr(pe, addr, craft_local, value);
    }
}

/// CRAFT BASE scheme: local shared data cached plus index arithmetic,
/// remote shared data uncached.
struct BaseBackend;

impl CoherenceBackend for BaseBackend {
    fn name(&self) -> &'static str {
        "BASE"
    }

    fn read_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        rid: RefId,
        addr: usize,
        craft: u64,
    ) -> f64 {
        sim.base_read(pe, rid, addr, craft)
    }

    fn write_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        craft_local: u64,
        value: f64,
    ) {
        sim.write_shared_addr(pe, addr, craft_local, value);
    }
}

/// Plan-directed CCDP scheme: reads follow the plan's handling, prefetch
/// statements execute.
struct CcdpBackend;

impl CoherenceBackend for CcdpBackend {
    fn name(&self) -> &'static str {
        "CCDP"
    }

    fn read_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        rid: RefId,
        addr: usize,
        _craft: u64,
    ) -> f64 {
        match sim.handling_of(rid) {
            ccdp_prefetch::Handling::Bypass => sim.bypass_read(pe, addr),
            h => sim.cached_read(pe, rid, addr, h),
        }
    }

    fn write_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        craft_local: u64,
        value: f64,
    ) {
        sim.write_shared_addr(pe, addr, craft_local, value);
    }

    fn executes_prefetches(&self) -> bool {
        true
    }
}

/// Invalidate-only software baseline: same plan-directed engine as CCDP
/// (its plan bypasses every potentially-stale read), but no prefetches.
struct InvalidateOnlyBackend;

impl CoherenceBackend for InvalidateOnlyBackend {
    fn name(&self) -> &'static str {
        "INV"
    }

    fn read_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        rid: RefId,
        addr: usize,
        _craft: u64,
    ) -> f64 {
        match sim.handling_of(rid) {
            ccdp_prefetch::Handling::Bypass => sim.bypass_read(pe, addr),
            h => sim.cached_read(pe, rid, addr, h),
        }
    }

    fn write_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        craft_local: u64,
        value: f64,
    ) {
        sim.write_shared_addr(pe, addr, craft_local, value);
    }
}

// -- snooping bus ----------------------------------------------------------

/// The shared snooping bus: contention charges plus a per-PE bounded queue
/// of outstanding snoop messages (the delayed-message queue).
struct Bus {
    /// Per-PE outstanding messages: cycle at which each drains. Pruned
    /// lazily against the PE clock, like `Pe::inflight`.
    delayed_q: Vec<Vec<u64>>,
}

impl Bus {
    fn new(n_pes: usize) -> Bus {
        Bus { delayed_q: vec![Vec::new(); n_pes] }
    }

    /// Charge one bus transaction issued by `pe`: arbitration wait (mean
    /// residual occupancy of the other `P - 1` requesters), own occupancy,
    /// and a delayed-queue stall when too many of this PE's snoop messages
    /// are still outstanding. Returns after the PE clock has advanced past
    /// the transaction.
    fn transaction(&mut self, sim: &mut Simulator, pe: usize) {
        let txn = sim.cfg.bus_txn;
        let p = sim.cfg.n_pes as u64;
        // Delayed-message queue: block until the oldest outstanding snoop
        // drains if the queue is at capacity. Fault-plan queue storms
        // shrink the capacity through the same hook as the prefetch queue.
        let mut cap = sim.cfg.bus_queue;
        if let Some(f) = sim.faults.as_mut() {
            let (c, began) = f.effective_queue(pe, cap);
            cap = c;
            if began {
                sim.pes[pe].stats.faults.queue_storms += 1;
            }
        }
        let now = sim.pes[pe].now;
        let q = &mut self.delayed_q[pe];
        q.retain(|&drain| drain > now);
        if q.len() >= cap.max(1) {
            // A storm (cap 0) still admits one message once the queue is
            // empty — the bus degrades, it does not deadlock.
            let oldest = *q.iter().min().expect("non-empty queue");
            let stall = oldest - now;
            sim.charge(pe, CycleCategory::BusWait, stall);
            sim.pes[pe].stats.mem_stall_cycles += stall;
            let now = sim.pes[pe].now;
            self.delayed_q[pe].retain(|&drain| drain > now);
        }
        sim.charge(pe, CycleCategory::BusWait, txn * (p - 1) / 2);
        sim.charge(pe, CycleCategory::BusTxn, txn);
        sim.pes[pe].stats.bus_txns += 1;
        // The snoop traffic stays outstanding while every other cache
        // processes it; the PE itself does not block on that.
        let drain = sim.pes[pe].now + txn * (p - 1);
        self.delayed_q[pe].push(drain);
    }
}

// -- MESI ------------------------------------------------------------------

/// MESI line states. Invalid is represented by absence (the state map is
/// kept in lockstep with cache residency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MesiState {
    Modified,
    Exclusive,
    Shared,
}

/// Snooping MESI (invalidate-based) hardware coherence.
///
/// Transactions: read miss → `BusRd` (install Shared if any other cache
/// holds the line, else Exclusive; remote Modified/Exclusive copies
/// downgrade to Shared); write to a Shared line → `BusUpgr` (invalidate
/// every remote copy, go Modified); write miss → `BusRdX` (invalidate,
/// fill, go Modified); write to Exclusive → Modified silently.
pub(crate) struct Mesi {
    bus: Bus,
    /// Per-PE line-address → state. An entry exists iff the cache holds
    /// the line (installs and invalidations maintain this in lockstep).
    states: Vec<HashMap<u64, MesiState>>,
}

impl Mesi {
    pub(crate) fn new(n_pes: usize) -> Mesi {
        Mesi { bus: Bus::new(n_pes), states: (0..n_pes).map(|_| HashMap::new()).collect() }
    }

    /// Remove the state entry of whatever line currently occupies `addr`'s
    /// cache slot on `pe` (about to be evicted by a conflicting install).
    fn purge_conflict(&mut self, sim: &Simulator, pe: usize, addr: usize) {
        let incoming = sim.pes[pe].cache.line_addr(addr);
        if let Some(old) = sim.pes[pe].cache.resident_line(addr) {
            if old != incoming {
                self.states[pe].remove(&old);
            }
        }
    }

    /// Invalidate every remote copy of `addr`'s line (BusUpgr / BusRdX
    /// snoop effect). Returns how many copies were killed.
    fn invalidate_others(&mut self, sim: &mut Simulator, pe: usize, addr: usize) -> u64 {
        let line = sim.pes[pe].cache.line_addr(addr);
        let mut n = 0;
        for other in 0..sim.cfg.n_pes {
            if other == pe {
                continue;
            }
            if sim.pes[other].cache.lookup(addr).is_some() {
                sim.pes[other].cache.invalidate(addr);
                self.states[other].remove(&line);
                n += 1;
            }
        }
        if n > 0 {
            sim.pes[pe].stats.bus_invalidations += n;
            sim.trace_event(pe, TraceEventKind::BusInvalidate, addr);
        }
        n
    }

    /// Snoop a BusRd: downgrade every remote Modified/Exclusive copy to
    /// Shared. Returns whether any other cache holds the line.
    fn snoop_read(&mut self, sim: &Simulator, pe: usize, addr: usize) -> bool {
        let line = sim.pes[pe].cache.line_addr(addr);
        let mut shared = false;
        for other in 0..sim.cfg.n_pes {
            if other == pe {
                continue;
            }
            if sim.pes[other].cache.lookup(addr).is_some() {
                shared = true;
                self.states[other].insert(line, MesiState::Shared);
            }
        }
        shared
    }

    fn state_of(&self, sim: &Simulator, pe: usize, addr: usize) -> Option<MesiState> {
        sim.pes[pe].cache.lookup(addr)?;
        let line = sim.pes[pe].cache.line_addr(addr);
        self.states[pe].get(&line).copied()
    }
}

impl CoherenceBackend for Mesi {
    fn name(&self) -> &'static str {
        "MESI"
    }

    fn read_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        rid: RefId,
        addr: usize,
        _craft: u64,
    ) -> f64 {
        if let Some(hit) = sim.pes[pe].cache.lookup(addr) {
            return sim.hw_cached_hit(pe, rid, addr, hit);
        }
        // Read miss: BusRd.
        self.bus.transaction(sim, pe);
        let shared = self.snoop_read(sim, pe, addr);
        self.purge_conflict(sim, pe, addr);
        sim.hw_fill(pe, addr);
        let line = sim.pes[pe].cache.line_addr(addr);
        let st = if shared { MesiState::Shared } else { MesiState::Exclusive };
        self.states[pe].insert(line, st);
        sim.mem.read_shared(addr).0
    }

    fn write_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        _craft_local: u64,
        value: f64,
    ) {
        let line = sim.pes[pe].cache.line_addr(addr);
        match self.state_of(sim, pe, addr) {
            Some(MesiState::Modified) => {}
            Some(MesiState::Exclusive) => {
                // Silent upgrade: no bus traffic.
                self.states[pe].insert(line, MesiState::Modified);
            }
            Some(MesiState::Shared) => {
                // BusUpgr: kill every remote copy, then own the line.
                self.bus.transaction(sim, pe);
                self.invalidate_others(sim, pe, addr);
                self.states[pe].insert(line, MesiState::Modified);
            }
            None => {
                // Write miss: BusRdX (read-for-ownership).
                self.bus.transaction(sim, pe);
                self.invalidate_others(sim, pe, addr);
                self.purge_conflict(sim, pe, addr);
                sim.hw_fill(pe, addr);
                self.states[pe].insert(line, MesiState::Modified);
            }
        }
        sim.hw_store(pe, addr, value);
    }
}

// -- Dragon ----------------------------------------------------------------

/// Dragon line states (no Invalid in the write path: writes update remote
/// copies instead of killing them). Absence = not cached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DragonState {
    /// Exclusive clean.
    Exclusive,
    /// Shared clean.
    SharedClean,
    /// Shared modified: this cache last wrote the (shared) line.
    SharedModified,
    /// Modified, no other copies.
    Modified,
}

/// Dragon (update-based) hardware coherence.
///
/// Read miss → `BusRd` (Exclusive if nobody else holds the line, else
/// SharedClean; a remote Modified owner downgrades to SharedModified).
/// Write to a shared line → `BusUpd`: every remote copy is patched in
/// place (and downgraded to SharedClean); the writer becomes SharedModified
/// — or Modified when the snoop finds no sharers left. Write to
/// Exclusive/Modified is bus-silent.
pub(crate) struct Dragon {
    bus: Bus,
    states: Vec<HashMap<u64, DragonState>>,
}

impl Dragon {
    pub(crate) fn new(n_pes: usize) -> Dragon {
        Dragon { bus: Bus::new(n_pes), states: (0..n_pes).map(|_| HashMap::new()).collect() }
    }

    fn purge_conflict(&mut self, sim: &Simulator, pe: usize, addr: usize) {
        let incoming = sim.pes[pe].cache.line_addr(addr);
        if let Some(old) = sim.pes[pe].cache.resident_line(addr) {
            if old != incoming {
                self.states[pe].remove(&old);
            }
        }
    }

    /// PEs other than `pe` holding `addr`'s line.
    fn sharers(&self, sim: &Simulator, pe: usize, addr: usize) -> Vec<usize> {
        (0..sim.cfg.n_pes)
            .filter(|&other| other != pe && sim.pes[other].cache.lookup(addr).is_some())
            .collect()
    }

    fn state_of(&self, sim: &Simulator, pe: usize, addr: usize) -> Option<DragonState> {
        sim.pes[pe].cache.lookup(addr)?;
        let line = sim.pes[pe].cache.line_addr(addr);
        self.states[pe].get(&line).copied()
    }

    /// BusUpd: patch every sharer's copy of `addr` with the freshly written
    /// word and settle the writer's state (SharedModified while sharers
    /// remain, Modified otherwise). The write itself (memory + own cache)
    /// has already happened via `hw_store`.
    fn bus_update(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        sharers: &[usize],
        value: f64,
        version: u32,
    ) {
        let line = sim.pes[pe].cache.line_addr(addr);
        for &other in sharers {
            sim.pes[other].cache.update_word(addr, value, version);
            self.states[other].insert(line, DragonState::SharedClean);
        }
        sim.pes[pe].stats.bus_updates += sharers.len() as u64;
        sim.trace_event(pe, TraceEventKind::BusUpdate, addr);
        let st = if sharers.is_empty() {
            DragonState::Modified
        } else {
            DragonState::SharedModified
        };
        self.states[pe].insert(line, st);
    }
}

impl CoherenceBackend for Dragon {
    fn name(&self) -> &'static str {
        "DRAGON"
    }

    fn read_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        rid: RefId,
        addr: usize,
        _craft: u64,
    ) -> f64 {
        if let Some(hit) = sim.pes[pe].cache.lookup(addr) {
            return sim.hw_cached_hit(pe, rid, addr, hit);
        }
        // Read miss: BusRd. Remote exclusive holders downgrade to shared
        // (a Modified owner keeps write responsibility as SharedModified).
        self.bus.transaction(sim, pe);
        let line = sim.pes[pe].cache.line_addr(addr);
        let mut shared = false;
        for other in 0..sim.cfg.n_pes {
            if other == pe || sim.pes[other].cache.lookup(addr).is_none() {
                continue;
            }
            shared = true;
            let e = self.states[other].entry(line).or_insert(DragonState::SharedClean);
            *e = match *e {
                DragonState::Modified => DragonState::SharedModified,
                DragonState::Exclusive => DragonState::SharedClean,
                s => s,
            };
        }
        self.purge_conflict(sim, pe, addr);
        sim.hw_fill(pe, addr);
        let st = if shared { DragonState::SharedClean } else { DragonState::Exclusive };
        self.states[pe].insert(line, st);
        sim.mem.read_shared(addr).0
    }

    fn write_shared(
        &mut self,
        sim: &mut Simulator,
        pe: usize,
        addr: usize,
        _craft_local: u64,
        value: f64,
    ) {
        let line = sim.pes[pe].cache.line_addr(addr);
        match self.state_of(sim, pe, addr) {
            Some(DragonState::Modified) => {
                sim.hw_store(pe, addr, value);
            }
            Some(DragonState::Exclusive) => {
                self.states[pe].insert(line, DragonState::Modified);
                sim.hw_store(pe, addr, value);
            }
            Some(DragonState::SharedClean) | Some(DragonState::SharedModified) => {
                // BusUpd (the snoop also reveals whether sharers remain).
                self.bus.transaction(sim, pe);
                let sharers = self.sharers(sim, pe, addr);
                let ver = sim.hw_store(pe, addr, value);
                self.bus_update(sim, pe, addr, &sharers, value, ver);
            }
            None => {
                // Write miss: fill first (BusRd), then update sharers if
                // the snoop found any.
                self.bus.transaction(sim, pe);
                let sharers = self.sharers(sim, pe, addr);
                self.purge_conflict(sim, pe, addr);
                sim.hw_fill(pe, addr);
                if sharers.is_empty() {
                    self.states[pe].insert(line, DragonState::Modified);
                    sim.hw_store(pe, addr, value);
                } else {
                    self.bus.transaction(sim, pe);
                    let ver = sim.hw_store(pe, addr, value);
                    self.bus_update(sim, pe, addr, &sharers, value, ver);
                }
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_dist::Layout;
    use ccdp_ir::{Program, ProgramBuilder};
    use crate::config::{MachineConfig, SimOptions};

    /// A two-PE fixture with one shared array laid out blockwise: words
    /// 0..8 live on PE 0, words 8..16 on PE 1.
    fn fixture() -> Program {
        let mut pb = ProgramBuilder::new("coh");
        let a = pb.shared("A", &[16]);
        pb.serial_epoch("touch", |e| {
            e.assign(a.at1(0), a.at1(0).rd() + 0.0);
        });
        pb.finish().unwrap()
    }

    fn sim_for(p: &Program, scheme: Scheme) -> Simulator<'_> {
        let layout = Layout::new(p, 2);
        let cfg = MachineConfig::t3d(2);
        Simulator::new(p, layout, cfg, scheme, SimOptions::default())
    }

    /// Drive a backend directly: reads/writes against the raw simulator
    /// state, checking protocol-state transitions one at a time.
    #[test]
    fn mesi_read_miss_installs_exclusive_then_shared() {
        let p = fixture();
        let mut sim = sim_for(&p, Scheme::Mesi);
        let mut m = Mesi::new(2);
        let rid = RefId(0);
        // PE 0 read miss: nobody else caches the line → Exclusive.
        m.read_shared(&mut sim, 0, rid, 0, 0);
        assert_eq!(m.state_of(&sim, 0, 0), Some(MesiState::Exclusive));
        // PE 1 reads the same line: both go Shared.
        m.read_shared(&mut sim, 1, rid, 0, 0);
        assert_eq!(m.state_of(&sim, 0, 0), Some(MesiState::Shared));
        assert_eq!(m.state_of(&sim, 1, 0), Some(MesiState::Shared));
        assert_eq!(sim.pes[0].stats.bus_txns + sim.pes[1].stats.bus_txns, 2);
    }

    #[test]
    fn mesi_write_upgrades_and_invalidates() {
        let p = fixture();
        let mut sim = sim_for(&p, Scheme::Mesi);
        let mut m = Mesi::new(2);
        let rid = RefId(0);
        m.read_shared(&mut sim, 0, rid, 0, 0);
        m.read_shared(&mut sim, 1, rid, 0, 0);
        // PE 0 writes a Shared line: BusUpgr kills PE 1's copy.
        m.write_shared(&mut sim, 0, 0, 0, 7.0);
        assert_eq!(m.state_of(&sim, 0, 0), Some(MesiState::Modified));
        assert_eq!(m.state_of(&sim, 1, 0), None, "remote copy invalidated");
        assert!(sim.pes[1].cache.lookup(0).is_none());
        assert_eq!(sim.pes[0].stats.bus_invalidations, 1);
        // A second write to the now-Modified line is bus-silent.
        let txns = sim.pes[0].stats.bus_txns;
        m.write_shared(&mut sim, 0, 0, 0, 8.0);
        assert_eq!(sim.pes[0].stats.bus_txns, txns);
        // Exclusive → Modified is silent too.
        m.read_shared(&mut sim, 1, rid, 8, 0);
        assert_eq!(m.state_of(&sim, 1, 8), Some(MesiState::Exclusive));
        let txns = sim.pes[1].stats.bus_txns;
        m.write_shared(&mut sim, 1, 8, 0, 1.0);
        assert_eq!(m.state_of(&sim, 1, 8), Some(MesiState::Modified));
        assert_eq!(sim.pes[1].stats.bus_txns, txns);
    }

    #[test]
    fn mesi_write_miss_is_busrdx() {
        let p = fixture();
        let mut sim = sim_for(&p, Scheme::Mesi);
        let mut m = Mesi::new(2);
        let rid = RefId(0);
        m.read_shared(&mut sim, 1, rid, 0, 0);
        // PE 0 write miss: BusRdX invalidates PE 1 and installs Modified.
        m.write_shared(&mut sim, 0, 0, 0, 3.5);
        assert_eq!(m.state_of(&sim, 0, 0), Some(MesiState::Modified));
        assert_eq!(m.state_of(&sim, 1, 0), None);
        // The readback sees the new value, version-current (oracle-clean).
        let v = m.read_shared(&mut sim, 0, rid, 0, 0);
        assert_eq!(v, 3.5);
        assert_eq!(sim.oracle.stale_reads, 0);
    }

    #[test]
    fn dragon_updates_remote_copies_in_place() {
        let p = fixture();
        let mut sim = sim_for(&p, Scheme::Dragon);
        let mut d = Dragon::new(2);
        let rid = RefId(0);
        d.read_shared(&mut sim, 0, rid, 0, 0);
        assert_eq!(d.state_of(&sim, 0, 0), Some(DragonState::Exclusive));
        d.read_shared(&mut sim, 1, rid, 0, 0);
        assert_eq!(d.state_of(&sim, 0, 0), Some(DragonState::SharedClean));
        // PE 0 writes: BusUpd patches PE 1's copy instead of killing it.
        d.write_shared(&mut sim, 0, 0, 0, 9.25);
        assert_eq!(d.state_of(&sim, 0, 0), Some(DragonState::SharedModified));
        assert_eq!(d.state_of(&sim, 1, 0), Some(DragonState::SharedClean));
        assert!(sim.pes[1].cache.lookup(0).is_some(), "copy survives");
        assert_eq!(sim.pes[0].stats.bus_updates, 1);
        // PE 1 reads its patched copy: current value, no stale read.
        let v = d.read_shared(&mut sim, 1, rid, 0, 0);
        assert_eq!(v, 9.25);
        assert_eq!(sim.oracle.stale_reads, 0);
    }

    #[test]
    fn dragon_modified_owner_downgrades_to_shared_modified() {
        let p = fixture();
        let mut sim = sim_for(&p, Scheme::Dragon);
        let mut d = Dragon::new(2);
        let rid = RefId(0);
        // PE 0 write miss with no sharers → Modified.
        d.write_shared(&mut sim, 0, 0, 0, 2.0);
        assert_eq!(d.state_of(&sim, 0, 0), Some(DragonState::Modified));
        // PE 1 reads: owner goes SharedModified, reader SharedClean.
        let v = d.read_shared(&mut sim, 1, rid, 0, 0);
        assert_eq!(v, 2.0);
        assert_eq!(d.state_of(&sim, 0, 0), Some(DragonState::SharedModified));
        assert_eq!(d.state_of(&sim, 1, 0), Some(DragonState::SharedClean));
        // PE 1 now writes: BusUpd; PE 1 becomes the SharedModified owner
        // and PE 0's copy downgrades to SharedClean, patched in place.
        d.write_shared(&mut sim, 1, 0, 0, 4.0);
        assert_eq!(d.state_of(&sim, 1, 0), Some(DragonState::SharedModified));
        assert_eq!(d.state_of(&sim, 0, 0), Some(DragonState::SharedClean));
        let v = d.read_shared(&mut sim, 0, rid, 0, 0);
        assert_eq!(v, 4.0);
        assert_eq!(sim.oracle.stale_reads, 0);
    }

    #[test]
    fn dragon_exclusive_write_is_silent() {
        let p = fixture();
        let mut sim = sim_for(&p, Scheme::Dragon);
        let mut d = Dragon::new(2);
        let rid = RefId(0);
        d.read_shared(&mut sim, 0, rid, 0, 0);
        let txns = sim.pes[0].stats.bus_txns;
        d.write_shared(&mut sim, 0, 0, 0, 1.0);
        assert_eq!(d.state_of(&sim, 0, 0), Some(DragonState::Modified));
        assert_eq!(sim.pes[0].stats.bus_txns, txns, "E→M write is bus-silent");
        assert_eq!(sim.pes[0].stats.bus_updates, 0);
    }

    #[test]
    fn conflicting_install_purges_the_evicted_lines_state() {
        let p = {
            let mut pb = ProgramBuilder::new("big");
            // Big enough that two addresses map to the same direct-mapped
            // cache slot: line count 256, line words 4 → stride 1024 words.
            let a = pb.shared("A", &[4096]);
            pb.serial_epoch("touch", |e| {
                e.assign(a.at1(0), a.at1(0).rd() + 0.0);
            });
            pb.finish().unwrap()
        };
        let mut sim = sim_for(&p, Scheme::Mesi);
        let mut m = Mesi::new(2);
        let rid = RefId(0);
        m.read_shared(&mut sim, 0, rid, 0, 0);
        assert_eq!(m.state_of(&sim, 0, 0), Some(MesiState::Exclusive));
        // Address 1024 conflicts with address 0 (same slot, different tag).
        m.read_shared(&mut sim, 0, rid, 1024, 0);
        assert!(sim.pes[0].cache.lookup(0).is_none(), "conflict evicted");
        assert_eq!(m.state_of(&sim, 0, 0), None, "state purged with the line");
        assert_eq!(m.state_of(&sim, 0, 1024), Some(MesiState::Exclusive));
    }

    #[test]
    fn bus_queue_stalls_when_full() {
        let p = fixture();
        let mut sim = sim_for(&p, Scheme::Mesi);
        // Tiny queue: every second transaction must wait for a drain.
        sim.cfg.bus_queue = 1;
        let mut bus = Bus::new(2);
        bus.transaction(&mut sim, 0);
        let wait0 = sim.pes[0].stats.breakdown.get(CycleCategory::BusWait);
        bus.transaction(&mut sim, 0);
        let wait1 = sim.pes[0].stats.breakdown.get(CycleCategory::BusWait);
        // Second transaction paid the contention wait AND a queue stall.
        // Mean-residual arbitration with P=2: txn * (P - 1) / 2.
        let contention = sim.cfg.bus_txn / 2;
        assert!(
            wait1 - wait0 > contention,
            "expected a queue stall on top of contention: {} vs {}",
            wait1 - wait0,
            contention
        );
        // Every charge is attributed: breakdown total equals the clock.
        assert_eq!(sim.pes[0].stats.breakdown.total(), sim.pes[0].now);
    }
}
