//! Observability: cycle attribution, per-epoch accounting, prefetch quality
//! metrics, fault accounting, and a bounded event trace.
//!
//! Every cycle the interpreter charges to a PE is attributed to exactly one
//! [`CycleCategory`], so a PE's [`CycleBreakdown`] totals to its final cycle
//! counter *exactly* — the shape tests assert this identity, which makes the
//! breakdown trustworthy for "where did the time go" analyses (the paper's
//! Table 2 discussion attributes CCDP's wins to removed CRAFT overhead and
//! hidden remote latency; the breakdown shows those components directly).

/// Where a simulated cycle went. One category per charge site in the
/// interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CycleCategory {
    /// Floating-point work of assignments (plus modelled extra cost).
    FpWork,
    /// Loop and branch bookkeeping.
    LoopOverhead,
    /// Per-DOALL-instance startup (CRAFT `doshared` setup vs CCDP manual
    /// assignment setup).
    EpochSetup,
    /// Iteration scheduling: CRAFT's per-iteration `doshared` map and the
    /// dynamic self-scheduling queue.
    SchedOverhead,
    /// Cache hits (including private-data accesses).
    CacheHit,
    /// Cache miss filled from the PE's own memory.
    LocalFill,
    /// Cache miss filled from a remote PE's memory.
    RemoteFill,
    /// Cache miss refilled from the vector-prefetch staging buffer.
    StagedFill,
    /// BASE-scheme uncached remote reads.
    UncachedRead,
    /// CCDP `Bypass`-handled uncached reads.
    BypassRead,
    /// CRAFT software overhead (address arithmetic, DTB Annex manipulation)
    /// in the BASE scheme.
    CraftOverhead,
    /// Stores to local memory.
    WriteLocal,
    /// Buffered stores to remote memory.
    WriteRemote,
    /// Issuing line prefetches (including Annex setup).
    PrefetchIssue,
    /// The PE-blocking part of issuing vector prefetches.
    VectorIssue,
    /// Stalls on reads whose prefetched line was still in flight.
    PrefetchWait,
    /// Extracting arrived prefetch data from the queue.
    QueuePop,
    /// Arbitration wait for the snooping bus (hardware-coherence backends):
    /// mean residual occupancy of contending PEs plus delayed-queue stalls.
    BusWait,
    /// Occupancy of this PE's own bus transactions (BusRd / BusRdX /
    /// BusUpgr / BusUpd).
    BusTxn,
    /// Waiting for other PEs at barriers.
    BarrierWait,
    /// The barrier operation itself.
    BarrierCost,
    /// Cycles added by Repeat steady-state extrapolation.
    Extrapolated,
}

impl CycleCategory {
    pub const ALL: [CycleCategory; 22] = [
        CycleCategory::FpWork,
        CycleCategory::LoopOverhead,
        CycleCategory::EpochSetup,
        CycleCategory::SchedOverhead,
        CycleCategory::CacheHit,
        CycleCategory::LocalFill,
        CycleCategory::RemoteFill,
        CycleCategory::StagedFill,
        CycleCategory::UncachedRead,
        CycleCategory::BypassRead,
        CycleCategory::CraftOverhead,
        CycleCategory::WriteLocal,
        CycleCategory::WriteRemote,
        CycleCategory::PrefetchIssue,
        CycleCategory::VectorIssue,
        CycleCategory::PrefetchWait,
        CycleCategory::QueuePop,
        CycleCategory::BusWait,
        CycleCategory::BusTxn,
        CycleCategory::BarrierWait,
        CycleCategory::BarrierCost,
        CycleCategory::Extrapolated,
    ];

    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (the JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::FpWork => "fp_work",
            CycleCategory::LoopOverhead => "loop_overhead",
            CycleCategory::EpochSetup => "epoch_setup",
            CycleCategory::SchedOverhead => "sched_overhead",
            CycleCategory::CacheHit => "cache_hit",
            CycleCategory::LocalFill => "local_fill",
            CycleCategory::RemoteFill => "remote_fill",
            CycleCategory::StagedFill => "staged_fill",
            CycleCategory::UncachedRead => "uncached_read",
            CycleCategory::BypassRead => "bypass_read",
            CycleCategory::CraftOverhead => "craft_overhead",
            CycleCategory::WriteLocal => "write_local",
            CycleCategory::WriteRemote => "write_remote",
            CycleCategory::PrefetchIssue => "prefetch_issue",
            CycleCategory::VectorIssue => "vector_issue",
            CycleCategory::PrefetchWait => "prefetch_wait",
            CycleCategory::QueuePop => "queue_pop",
            CycleCategory::BusWait => "bus_wait",
            CycleCategory::BusTxn => "bus_txn",
            CycleCategory::BarrierWait => "barrier_wait",
            CycleCategory::BarrierCost => "barrier_cost",
            CycleCategory::Extrapolated => "extrapolated",
        }
    }

    /// Inverse of [`CycleCategory::name`].
    pub fn from_name(name: &str) -> Option<CycleCategory> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Cycles attributed per [`CycleCategory`]. The interpreter maintains the
/// invariant `breakdown.total() == pe.now` for every PE.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CycleBreakdown {
    cells: [u64; CycleCategory::COUNT],
}

impl CycleBreakdown {
    #[inline]
    pub fn charge(&mut self, cat: CycleCategory, cycles: u64) {
        self.cells[cat as usize] += cycles;
    }

    pub fn get(&self, cat: CycleCategory) -> u64 {
        self.cells[cat as usize]
    }

    /// Sum across all categories.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    pub fn add(&mut self, o: &CycleBreakdown) {
        for (a, b) in self.cells.iter_mut().zip(o.cells.iter()) {
            *a += *b;
        }
    }

    /// `(category, cycles)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleCategory, u64)> + '_ {
        CycleCategory::ALL.into_iter().map(|c| (c, self.cells[c as usize]))
    }

    /// Cycles the PE was not doing FP work — the "overhead + memory" share.
    pub fn non_compute(&self) -> u64 {
        self.total() - self.get(CycleCategory::FpWork)
    }
}

/// Per-epoch cycle accounting: the breakdown of every PE's cycles charged
/// while a given source epoch (by `EpochId`/label) was executing. Repeated
/// executions of the same epoch accumulate into one entry.
#[derive(Clone, Debug)]
pub struct EpochCycles {
    /// The epoch's label (or `"(extrapolated)"` for the Repeat pseudo-slot).
    pub label: String,
    /// Per-PE breakdown of cycles charged inside this epoch.
    pub per_pe: Vec<CycleBreakdown>,
}

impl EpochCycles {
    pub fn new(label: impl Into<String>, n_pes: usize) -> EpochCycles {
        EpochCycles { label: label.into(), per_pe: vec![CycleBreakdown::default(); n_pes] }
    }

    /// Machine-wide breakdown for this epoch.
    pub fn total(&self) -> CycleBreakdown {
        let mut t = CycleBreakdown::default();
        for b in &self.per_pe {
            t.add(b);
        }
        t
    }
}

/// Prefetch quality summary, in the terminology of the software-prefetching
/// literature (Mowry & Gupta):
///
/// * **coverage** — fraction of potentially-stale (`Fresh`-handled or
///   bypassed) reads that were served by a line prefetched in the current
///   phase, i.e. whose coherence *and* latency the plan actually handled by
///   prefetching rather than by re-fetching or bypassing.
/// * **accuracy** — fraction of prefetched words that were subsequently
///   read before being evicted or overwritten; low accuracy means the plan
///   moves data nobody consumes.
/// * **timeliness** — fraction of reads hitting prefetched lines that did
///   *not* have to wait for the data to arrive; `1.0` means every prefetch
///   completed before its consumer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrefetchQuality {
    pub coverage: f64,
    pub accuracy: f64,
    pub timeliness: f64,
    /// Line prefetches dropped because the prefetch queue was full.
    pub queue_drops: u64,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

impl PrefetchQuality {
    /// Compute from machine-wide statistics (see `PeStats` field docs).
    pub fn from_stats(s: &crate::pe::PeStats) -> PrefetchQuality {
        PrefetchQuality {
            coverage: ratio(s.fresh_hits_prefetched, s.fresh_reads + s.bypass_reads),
            accuracy: ratio(s.prefetch_words_used, s.prefetch_words_issued),
            timeliness: 1.0 - ratio(s.prefetch_late, s.prefetched_line_hits.max(1)),
            queue_drops: s.line_prefetches_dropped,
        }
    }
}

/// What a traced memory-system event was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    CacheHit,
    LocalFill,
    RemoteFill,
    StagedFill,
    UncachedRead,
    BypassRead,
    WriteLocal,
    WriteRemote,
    LinePrefetch,
    PrefetchDropped,
    VectorPrefetch,
    /// A consumer stalled waiting for an in-flight prefetched line.
    PrefetchWait,
    Barrier,
    /// An injected fault dropped a prefetch (line or vector).
    FaultDrop,
    /// An injected fault evicted a prefetched line before first use.
    FaultEvict,
    /// A demand fetch recovered a line whose prefetch was faulted.
    FaultFallback,
    /// A snooping-bus transaction invalidated remote copies (MESI
    /// BusRdX/BusUpgr).
    BusInvalidate,
    /// A snooping-bus transaction updated remote copies in place (Dragon
    /// BusUpd).
    BusUpdate,
}

impl TraceEventKind {
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::CacheHit => "cache_hit",
            TraceEventKind::LocalFill => "local_fill",
            TraceEventKind::RemoteFill => "remote_fill",
            TraceEventKind::StagedFill => "staged_fill",
            TraceEventKind::UncachedRead => "uncached_read",
            TraceEventKind::BypassRead => "bypass_read",
            TraceEventKind::WriteLocal => "write_local",
            TraceEventKind::WriteRemote => "write_remote",
            TraceEventKind::LinePrefetch => "line_prefetch",
            TraceEventKind::PrefetchDropped => "prefetch_dropped",
            TraceEventKind::VectorPrefetch => "vector_prefetch",
            TraceEventKind::PrefetchWait => "prefetch_wait",
            TraceEventKind::Barrier => "barrier",
            TraceEventKind::FaultDrop => "fault_drop",
            TraceEventKind::FaultEvict => "fault_evict",
            TraceEventKind::FaultFallback => "fault_fallback",
            TraceEventKind::BusInvalidate => "bus_invalidate",
            TraceEventKind::BusUpdate => "bus_update",
        }
    }
}

/// One traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemEvent {
    /// PE-local cycle at which the event completed.
    pub cycle: u64,
    pub pe: u32,
    /// Barrier phase during which the event occurred.
    pub phase: u32,
    pub kind: TraceEventKind,
    /// Shared word address (0 for events without one, e.g. barriers).
    pub addr: u64,
}

/// Bounded ring buffer of [`MemEvent`]s. Recording is observation only — it
/// never changes simulated cycle counts (the shape tests assert this).
#[derive(Clone, Debug, Default)]
pub struct EventTrace {
    capacity: usize,
    /// Ring storage; once full, `head` marks the oldest entry.
    events: Vec<MemEvent>,
    head: usize,
    /// Events that overwrote older ones (total recorded = len + dropped).
    pub dropped: u64,
}

impl EventTrace {
    pub fn new(capacity: usize) -> EventTrace {
        EventTrace { capacity, events: Vec::new(), head: 0, dropped: 0 }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    #[inline]
    pub fn record(&mut self, ev: MemEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events in recording order (oldest surviving first).
    pub fn iter(&self) -> impl Iterator<Item = &MemEvent> {
        self.events[self.head..].iter().chain(self.events[..self.head].iter())
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn breakdown_total_and_add() {
        let mut b = CycleBreakdown::default();
        b.charge(CycleCategory::FpWork, 10);
        b.charge(CycleCategory::RemoteFill, 300);
        b.charge(CycleCategory::FpWork, 5);
        assert_eq!(b.get(CycleCategory::FpWork), 15);
        assert_eq!(b.total(), 315);
        assert_eq!(b.non_compute(), 300);
        let mut c = b;
        c.add(&b);
        assert_eq!(c.total(), 630);
        assert_eq!(b.iter().map(|(_, v)| v).sum::<u64>(), b.total());
    }

    #[test]
    fn category_names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in CycleCategory::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert_eq!(CycleCategory::from_name(c.name()), Some(c));
        }
        assert_eq!(CycleCategory::from_name("nonsense"), None);
        assert_eq!(CycleCategory::COUNT, 22);
    }

    #[test]
    fn quality_ratios_degenerate_cases() {
        let s = crate::pe::PeStats::default();
        let q = PrefetchQuality::from_stats(&s);
        // No prefetching at all: vacuously perfect accuracy/timeliness,
        // full coverage (there was nothing to cover).
        assert_eq!(q.coverage, 1.0);
        assert_eq!(q.accuracy, 1.0);
        assert_eq!(q.timeliness, 1.0);
        assert_eq!(q.queue_drops, 0);
    }

    #[test]
    fn trace_ring_wraps_and_bounds() {
        let mut t = EventTrace::new(3);
        assert!(t.enabled());
        for i in 0..5u64 {
            t.record(MemEvent {
                cycle: i,
                pe: 0,
                phase: 0,
                kind: TraceEventKind::CacheHit,
                addr: i,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped, 2);
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);

        let mut off = EventTrace::new(0);
        assert!(!off.enabled());
        off.record(MemEvent {
            cycle: 1,
            pe: 0,
            phase: 0,
            kind: TraceEventKind::Barrier,
            addr: 0,
        });
        assert!(off.is_empty());
    }

    #[test]
    fn epoch_cycles_total_sums_pes() {
        let mut e = EpochCycles::new("ep", 2);
        e.per_pe[0].charge(CycleCategory::CacheHit, 3);
        e.per_pe[1].charge(CycleCategory::CacheHit, 4);
        e.per_pe[1].charge(CycleCategory::BarrierWait, 1);
        assert_eq!(e.label, "ep");
        assert_eq!(e.total().total(), 8);
        assert_eq!(e.total().get(CycleCategory::CacheHit), 7);
    }
}
