//! Loop-body pre-compilation: the compiled-trace layer of the simulator.
//!
//! The tree-walking interpreter re-evaluates every affine subscript and
//! re-resolves every reference's scheme/handling dispatch on **every array
//! access of every iteration**. This module compiles a loop body once into a
//! flat [`CompiledBody`] in which
//!
//! * every array reference's subscript is **strength-reduced** against the
//!   enclosing loop variable: the invariant part ([`Affine::split_on`]) is
//!   evaluated once per loop entry, and the linear word offset then advances
//!   by a precomputed integer stride per iteration — no per-access affine
//!   evaluation, coordinate vector, or bounds assertion (the whole
//!   iteration range is bounds-checked once at entry; references that can
//!   leave the array — e.g. edge accesses guarded by an `If` — fall back to
//!   the per-access evaluation with its original panic behavior);
//! * each reference's [`Handling`] and scheme dispatch is resolved once into
//!   an [`AccessKind`] consumed by a branch-light execution loop
//!   (`interp.rs::exec_cstmts`);
//! * each value expression is flattened to postfix form and, when it is one
//!   of the common small shapes, **direct-threaded** into a [`FastExpr`]
//!   that evaluates as straight-line code — no opcode dispatch loop, no
//!   value stack — applying the identical `f64` operations in the identical
//!   order, so results stay bit-for-bit equal to the tree walk;
//! * per-iteration **invariant cycle charges** of pure-private straight-line
//!   bodies (cache-hit reads, local writes, FLOP work) are batched into an
//!   [`IterCharges`] record charged once per iteration — or once per loop
//!   entry, multiplied by the trip count — instead of per access.
//!
//! Compiled bodies are cached per `(loop, scheme)` — the scheme is fixed for
//! a `Simulator` instance, so the cache key degenerates to the `LoopId` —
//! and reused across epochs, `Repeat` iterations, and PEs. Execution through
//! a compiled body is **cycle-for-cycle and byte-for-byte identical** to the
//! tree walker: both paths share the same memory-operation helpers
//! (`cached_read`, `base_read`, `bypass_read`, `write_shared_addr`) and
//! charge at the same points in the same order wherever the PE clock is
//! observable. `SimOptions::force_treewalk` (set from `CCDP_FORCE_TREEWALK=1`
//! by `ccdp_core::EnvOverrides`) keeps the tree walker as a reference path;
//! the `compiled_equivalence` property test pins the two paths together.

use ccdp_ir::{
    Affine, ArrayId, ArrayRef, Assign, Cond, Loop, PrefetchStmt, Program, RefId, Stmt, ValExpr,
    VarEnv, VarId,
};
use ccdp_prefetch::Handling;

use crate::config::Scheme;
use crate::mem::Memory;

/// Scheme/handling dispatch for one read, resolved at compile time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AccessKind {
    /// Private array: always served at cache-hit cost.
    Private,
    /// BASE-scheme shared read; `craft` is the array's CRAFT local-access
    /// overhead (local vs remote is still a per-access owner lookup).
    Base { craft: u64 },
    /// Cached shared read under the plan-resolved handling
    /// (`Normal`/`Fresh`; SEQ reads are always `Normal`).
    Cached(Handling),
    /// CCDP `Bypass` uncached read.
    Bypass,
    /// Hardware-coherent shared read (MESI / Dragon): dispatched through
    /// the dynamic [`crate::coherence::CoherenceBackend`] — protocol state
    /// cannot be resolved at compile time.
    Hardware,
}

/// One compiled read reference.
#[derive(Clone, Debug)]
pub(crate) struct CRead {
    pub rid: RefId,
    /// Base word address of the array in its address space.
    pub base: usize,
    /// Index into the owning body's slot table.
    pub slot: u32,
    pub kind: AccessKind,
}

/// One compiled write reference.
#[derive(Clone, Debug)]
pub(crate) struct CWrite {
    pub base: usize,
    pub slot: u32,
    pub shared: bool,
    /// CRAFT local-access overhead of the array (BASE scheme only).
    pub craft: u64,
}

/// Strength-reduction recipe for one distinct subscript: everything needed
/// to (re)initialize its offset recurrence at a loop entry.
#[derive(Clone, Debug)]
pub(crate) struct SlotSpec<'p> {
    pub array: ArrayId,
    /// The original subscripts (slow path: per-access evaluation).
    pub index: &'p [Affine],
    /// Per-dimension invariant part (loop-variable term removed).
    inv: Vec<Affine>,
    /// Per-dimension loop-variable coefficient.
    vcoeff: Vec<i64>,
    /// Column-major strides and extents of the array.
    strides: Vec<usize>,
    extents: Vec<usize>,
}

/// Per-entry state of one slot's offset recurrence.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SlotState {
    /// Current linear word offset within the array (valid when `fast`).
    pub off: i64,
    /// Per-iteration offset increment.
    pub doff: i64,
    /// The whole iteration range was proven in-bounds at entry.
    pub fast: bool,
}

impl SlotSpec<'_> {
    /// Initialize the recurrence for a loop entry covering
    /// `v = lo, lo+step, ..., last` (callers pass the actual last iterate).
    /// `env` binds every outer variable; `v` itself is not read.
    pub fn enter(&self, env: &VarEnv, lo: i64, last: i64, step: i64) -> SlotState {
        let mut off = 0i64;
        let mut doff = 0i64;
        let mut fast = true;
        for d in 0..self.inv.len() {
            let b = self.inv[d].eval(env);
            let c0 = b + self.vcoeff[d] * lo;
            let c1 = b + self.vcoeff[d] * last;
            if c0.min(c1) < 0 || c0.max(c1) >= self.extents[d] as i64 {
                fast = false;
            }
            off += c0 * self.strides[d] as i64;
            doff += self.vcoeff[d] * step * self.strides[d] as i64;
        }
        SlotState { off, doff, fast }
    }
}

/// One operand of a shape-specialized expression (see [`FastExpr`]).
#[derive(Clone, Copy, Debug)]
pub enum Opnd {
    /// The statement's `k`-th loaded read value.
    Read(u32),
    Lit(f64),
    /// A loop variable's current value as `f64`.
    Var(VarId),
}

impl Opnd {
    #[inline]
    fn get(self, reads: &[f64], env: &VarEnv) -> f64 {
        match self {
            Opnd::Read(k) => reads[k as usize],
            Opnd::Lit(v) => v,
            Opnd::Var(v) => env.get(v) as f64,
        }
    }
}

/// A binary operator of a shape-specialized expression.
#[derive(Clone, Copy, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl BinOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

/// Direct-threaded form of the common small expression shapes. The postfix
/// stack machine is general but pays a dispatch branch, a stack store, and
/// a stack load per opcode; almost every kernel statement is one of a
/// handful of tiny shapes (`x`, `x op y`, a three-operand chain), which
/// evaluate here as straight-line code with the operands in registers.
/// Every shape applies the same `f64` operations in the same order as the
/// postfix evaluation of the same opcode sequence, so results stay
/// bit-identical; anything bigger falls back to [`FastExpr::General`].
#[derive(Clone, Copy, Debug)]
enum FastExpr {
    /// `x` — postfix `[x]`.
    Leaf(Opnd),
    /// `a op b` — postfix `[a, b, op]`.
    Bin { op: BinOp, a: Opnd, b: Opnd },
    /// `(a op1 b) op2 c` — postfix `[a, b, op1, c, op2]`.
    BinL { op1: BinOp, a: Opnd, b: Opnd, op2: BinOp, c: Opnd },
    /// `a op2 (b op1 c)` — postfix `[a, b, c, op1, op2]` (e.g. MXM's
    /// `c + a * b` multiply-accumulate).
    BinR { a: Opnd, op1: BinOp, b: Opnd, op2: BinOp, c: Opnd },
    /// No specialization: evaluate through the postfix stack machine.
    General,
}

fn opnd_of(op: EOp) -> Option<Opnd> {
    match op {
        EOp::Read(k) => Some(Opnd::Read(k)),
        EOp::Lit(v) => Some(Opnd::Lit(v)),
        EOp::Var(v) => Some(Opnd::Var(v)),
        _ => None,
    }
}

fn binop_of(op: EOp) -> Option<BinOp> {
    match op {
        EOp::Add => Some(BinOp::Add),
        EOp::Sub => Some(BinOp::Sub),
        EOp::Mul => Some(BinOp::Mul),
        EOp::Div => Some(BinOp::Div),
        EOp::Min => Some(BinOp::Min),
        EOp::Max => Some(BinOp::Max),
        _ => None,
    }
}

/// Match a postfix opcode sequence against the specialized shapes.
fn specialize(ops: &[EOp]) -> FastExpr {
    match *ops {
        [x] => {
            if let Some(x) = opnd_of(x) {
                return FastExpr::Leaf(x);
            }
        }
        [a, b, op] => {
            if let (Some(a), Some(b), Some(op)) = (opnd_of(a), opnd_of(b), binop_of(op)) {
                return FastExpr::Bin { op, a, b };
            }
        }
        [x0, x1, x2, x3, x4] => {
            if let (Some(a), Some(b), Some(op1), Some(c), Some(op2)) =
                (opnd_of(x0), opnd_of(x1), binop_of(x2), opnd_of(x3), binop_of(x4))
            {
                return FastExpr::BinL { op1, a, b, op2, c };
            }
            if let (Some(a), Some(b), Some(c), Some(op1), Some(op2)) =
                (opnd_of(x0), opnd_of(x1), opnd_of(x2), binop_of(x3), binop_of(x4))
            {
                return FastExpr::BinR { a, op1, b, op2, c };
            }
        }
        _ => {}
    }
    FastExpr::General
}

/// One opcode of a flattened value expression (postfix order).
#[derive(Clone, Copy, Debug)]
pub enum EOp {
    /// Push the statement's `k`-th loaded read value.
    Read(u32),
    /// Push a literal.
    Lit(f64),
    /// Push a loop variable's current value as `f64`.
    Var(VarId),
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Sqrt,
    Abs,
    Min,
    Max,
}

/// A [`ValExpr`] flattened to postfix form and — when it matches one of
/// the common small shapes — further specialized to a direct-threaded
/// [`FastExpr`]. The postfix opcode sequence is the tree's own evaluation
/// order, and every specialized shape applies the same operations in that
/// same order, so every path produces bit-identical results.
#[derive(Clone, Debug)]
pub struct CExpr {
    ops: Vec<EOp>,
    /// Peak stack depth of `ops` (bounds the evaluator's scratch).
    depth: usize,
    /// Shape specialization of `ops` (`General` when none applies).
    fast: FastExpr,
}

impl CExpr {
    pub fn compile(e: &ValExpr) -> CExpr {
        fn flat(e: &ValExpr, ops: &mut Vec<EOp>) {
            match e {
                ValExpr::Read(k) => ops.push(EOp::Read(*k as u32)),
                ValExpr::Lit(v) => ops.push(EOp::Lit(*v)),
                ValExpr::Var(v) => ops.push(EOp::Var(*v)),
                ValExpr::Add(a, b) => bin(a, b, EOp::Add, ops),
                ValExpr::Sub(a, b) => bin(a, b, EOp::Sub, ops),
                ValExpr::Mul(a, b) => bin(a, b, EOp::Mul, ops),
                ValExpr::Div(a, b) => bin(a, b, EOp::Div, ops),
                ValExpr::Min(a, b) => bin(a, b, EOp::Min, ops),
                ValExpr::Max(a, b) => bin(a, b, EOp::Max, ops),
                ValExpr::Neg(a) => un(a, EOp::Neg, ops),
                ValExpr::Sqrt(a) => un(a, EOp::Sqrt, ops),
                ValExpr::Abs(a) => un(a, EOp::Abs, ops),
            }
        }
        fn bin(a: &ValExpr, b: &ValExpr, op: EOp, ops: &mut Vec<EOp>) {
            flat(a, ops);
            flat(b, ops);
            ops.push(op);
        }
        fn un(a: &ValExpr, op: EOp, ops: &mut Vec<EOp>) {
            flat(a, ops);
            ops.push(op);
        }
        let mut ops = Vec::new();
        flat(e, &mut ops);
        let mut d = 0usize;
        let mut depth = 0usize;
        for op in &ops {
            match op {
                EOp::Read(_) | EOp::Lit(_) | EOp::Var(_) => {
                    d += 1;
                    depth = depth.max(d);
                }
                EOp::Neg | EOp::Sqrt | EOp::Abs => {}
                _ => d -= 1,
            }
        }
        let fast = specialize(&ops);
        CExpr { ops, depth, fast }
    }

    /// Evaluate given the loaded read values and the loop-variable
    /// environment. Matches `ValExpr::eval` bit-for-bit: specialized
    /// shapes run as straight-line code, everything else goes through
    /// [`CExpr::eval_postfix`].
    #[inline]
    pub fn eval(&self, reads: &[f64], env: &VarEnv) -> f64 {
        match self.fast {
            FastExpr::Leaf(x) => x.get(reads, env),
            FastExpr::Bin { op, a, b } => op.apply(a.get(reads, env), b.get(reads, env)),
            FastExpr::BinL { op1, a, b, op2, c } => {
                op2.apply(op1.apply(a.get(reads, env), b.get(reads, env)), c.get(reads, env))
            }
            FastExpr::BinR { a, op1, b, op2, c } => {
                op2.apply(a.get(reads, env), op1.apply(b.get(reads, env), c.get(reads, env)))
            }
            FastExpr::General => self.eval_postfix(reads, env),
        }
    }

    /// Evaluate through the postfix stack machine regardless of shape
    /// specialization. This is the reference path the `dispatch`
    /// microbench pits [`CExpr::eval`] against; `eval` itself routes here
    /// for `General` shapes.
    #[inline]
    pub fn eval_postfix(&self, reads: &[f64], env: &VarEnv) -> f64 {
        if self.depth <= FIXED_STACK {
            self.eval_on(&mut [0.0; FIXED_STACK], reads, env)
        } else {
            self.eval_on(&mut vec![0.0; self.depth], reads, env)
        }
    }

    fn eval_on(&self, stack: &mut [f64], reads: &[f64], env: &VarEnv) -> f64 {
        let mut sp = 0usize;
        macro_rules! bin {
            ($f:expr) => {{
                let b = stack[sp - 1];
                let a = stack[sp - 2];
                sp -= 1;
                stack[sp - 1] = $f(a, b);
            }};
        }
        for op in &self.ops {
            match *op {
                EOp::Read(k) => {
                    stack[sp] = reads[k as usize];
                    sp += 1;
                }
                EOp::Lit(v) => {
                    stack[sp] = v;
                    sp += 1;
                }
                EOp::Var(v) => {
                    stack[sp] = env.get(v) as f64;
                    sp += 1;
                }
                EOp::Add => bin!(|a: f64, b: f64| a + b),
                EOp::Sub => bin!(|a: f64, b: f64| a - b),
                EOp::Mul => bin!(|a: f64, b: f64| a * b),
                EOp::Div => bin!(|a: f64, b: f64| a / b),
                EOp::Min => bin!(f64::min),
                EOp::Max => bin!(f64::max),
                EOp::Neg => stack[sp - 1] = -stack[sp - 1],
                EOp::Sqrt => stack[sp - 1] = stack[sp - 1].sqrt(),
                EOp::Abs => stack[sp - 1] = stack[sp - 1].abs(),
            }
        }
        debug_assert_eq!(sp, 1, "malformed expression (validator guarantees one result)");
        stack[sp - 1]
    }
}

/// Evaluation-stack size kept on the machine stack; deeper (validator-legal
/// but unseen in practice) expressions spill to a heap allocation.
const FIXED_STACK: usize = 16;

/// Per-iteration invariant charges of a pure-private straight-line body.
/// Multiplied by the machine's unit costs (and the trip count) at charge
/// time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct IterCharges {
    /// Private reads per iteration (× `cache_hit` cycles each).
    pub reads: u64,
    /// Private writes per iteration (× `write_local` cycles each).
    pub writes: u64,
    /// Summed FLOP + extra cost cycles per iteration.
    pub fp: u64,
}

/// A compiled assignment.
#[derive(Clone, Debug)]
pub(crate) struct CAssign {
    pub write: CWrite,
    pub reads: Vec<CRead>,
    pub expr: CExpr,
    /// FpWork charge per instance: `expr.flops() + extra_cost`.
    pub cost: u64,
}

/// A compiled statement.
#[derive(Clone, Debug)]
pub(crate) enum CStmt<'p> {
    Assign(CAssign),
    If {
        cond: &'p Cond,
        then_branch: Vec<CStmt<'p>>,
        else_branch: Vec<CStmt<'p>>,
    },
    Loop(CLoop<'p>),
    /// Explicit prefetch statement (present only under CCDP; dropped at
    /// compile time for the other schemes, which ignore it).
    Prefetch(&'p PrefetchStmt),
}

/// A nested serial loop, compiled against its own variable.
#[derive(Clone, Debug)]
pub(crate) struct CLoop<'p> {
    pub l: &'p Loop,
    pub body: CompiledBody<'p>,
}

/// One loop body, compiled against the loop's variable.
#[derive(Clone, Debug)]
pub(crate) struct CompiledBody<'p> {
    pub stmts: Vec<CStmt<'p>>,
    /// Distinct `(array, subscript)` recurrences referenced by `stmts`
    /// (identical subscripts share a slot).
    pub slots: Vec<SlotSpec<'p>>,
    /// `Some` when the body is straight-line private-only code whose cycle
    /// charges can be batched per iteration (see [`IterCharges`]).
    pub batch: Option<IterCharges>,
    /// Some expression in the body reads the loop variable itself. When
    /// false (and every slot recurrence took the fast path), the batched
    /// sweep skips maintaining the variable binding entirely — the
    /// recurrences already carry all per-iteration state.
    pub uses_loop_var: bool,
}

/// Everything the compiler needs from the simulator.
pub(crate) struct CompileCtx<'a, 'p> {
    pub program: &'p Program,
    pub mem: &'a Memory,
    pub scheme: &'a Scheme,
    /// BASE-scheme CRAFT local-access overhead per array.
    pub craft_cost: &'a [u64],
}

impl CompileCtx<'_, '_> {
    fn read_kind(&self, r: &ArrayRef) -> AccessKind {
        if !self.mem.is_shared(r.array) {
            return AccessKind::Private;
        }
        match self.scheme {
            Scheme::Sequential => AccessKind::Cached(Handling::Normal),
            Scheme::Base => AccessKind::Base { craft: self.craft_cost[r.array.index()] },
            Scheme::Ccdp { plan } | Scheme::InvalidateOnly { plan } => {
                match plan.handling_of(r.id) {
                    Handling::Bypass => AccessKind::Bypass,
                    h => AccessKind::Cached(h),
                }
            }
            Scheme::Mesi | Scheme::Dragon => AccessKind::Hardware,
        }
    }
}

/// Compile a loop's body against its variable. The result is cached by the
/// simulator under the loop's id.
pub(crate) fn compile_loop<'p>(l: &'p Loop, ctx: &CompileCtx<'_, 'p>) -> CompiledBody<'p> {
    compile_body(&l.body, l.var, ctx)
}

fn compile_body<'p>(
    stmts: &'p [Stmt],
    var: VarId,
    ctx: &CompileCtx<'_, 'p>,
) -> CompiledBody<'p> {
    let mut slots: Vec<SlotSpec<'p>> = Vec::new();
    let stmts = compile_stmts(stmts, var, ctx, &mut slots);
    let batch = batch_of(&stmts);
    let uses_loop_var = stmts_use_var(&stmts, var);
    CompiledBody { stmts, slots, batch, uses_loop_var }
}

/// Does any statement's expression read `var`? `If`/`Loop`/`Prefetch`
/// statements conservatively count as users (conditions, nested bounds,
/// and prefetch subscripts all evaluate against the environment) — those
/// shapes never batch anyway, so the flag only has to be exact for
/// straight-line assignment bodies.
fn stmts_use_var(stmts: &[CStmt<'_>], var: VarId) -> bool {
    stmts.iter().any(|s| match s {
        CStmt::Assign(a) => a.expr.ops.iter().any(|op| matches!(op, EOp::Var(v) if *v == var)),
        _ => true,
    })
}

fn compile_stmts<'p>(
    stmts: &'p [Stmt],
    var: VarId,
    ctx: &CompileCtx<'_, 'p>,
    slots: &mut Vec<SlotSpec<'p>>,
) -> Vec<CStmt<'p>> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign(a) => out.push(CStmt::Assign(compile_assign(a, var, ctx, slots))),
            Stmt::Loop(inner) => out.push(CStmt::Loop(CLoop {
                l: inner,
                body: compile_body(&inner.body, inner.var, ctx),
            })),
            Stmt::If(i) => out.push(CStmt::If {
                cond: &i.cond,
                then_branch: compile_stmts(&i.then_branch, var, ctx, slots),
                else_branch: compile_stmts(&i.else_branch, var, ctx, slots),
            }),
            Stmt::Prefetch(pf) => {
                // Only the CCDP scheme executes prefetch statements; the
                // tree walker skips them per encounter, the compiled body
                // drops them up front.
                if matches!(ctx.scheme, Scheme::Ccdp { .. }) {
                    out.push(CStmt::Prefetch(pf));
                }
            }
        }
    }
    out
}

fn compile_assign<'p>(
    a: &'p Assign,
    var: VarId,
    ctx: &CompileCtx<'_, 'p>,
    slots: &mut Vec<SlotSpec<'p>>,
) -> CAssign {
    let reads = a
        .reads
        .iter()
        .map(|r| CRead {
            rid: r.id,
            base: ctx.mem.base(r.array),
            slot: slot_for(r, var, ctx, slots),
            kind: ctx.read_kind(r),
        })
        .collect();
    let w = &a.write;
    let write = CWrite {
        base: ctx.mem.base(w.array),
        slot: slot_for(w, var, ctx, slots),
        shared: ctx.mem.is_shared(w.array),
        craft: ctx.craft_cost[w.array.index()],
    };
    CAssign {
        write,
        reads,
        expr: CExpr::compile(&a.expr),
        cost: a.expr.flops() as u64 + a.extra_cost as u64,
    }
}

/// Find or create the slot for a reference's `(array, subscript)` pair.
/// References with identical subscripts into the same array (e.g. MXM's
/// `c(i,j)` read and write) share one recurrence.
fn slot_for<'p>(
    r: &'p ArrayRef,
    var: VarId,
    ctx: &CompileCtx<'_, 'p>,
    slots: &mut Vec<SlotSpec<'p>>,
) -> u32 {
    if let Some(i) = slots
        .iter()
        .position(|s| s.array == r.array && s.index == r.index.as_slice())
    {
        return i as u32;
    }
    let decl = ctx.program.array(r.array);
    let mut inv = Vec::with_capacity(r.index.len());
    let mut vcoeff = Vec::with_capacity(r.index.len());
    for ix in &r.index {
        let (i, c) = ix.split_on(var);
        inv.push(i);
        vcoeff.push(c);
    }
    slots.push(SlotSpec {
        array: r.array,
        index: &r.index,
        inv,
        vcoeff,
        strides: decl.strides(),
        extents: decl.extents.clone(),
    });
    (slots.len() - 1) as u32
}

/// A body's charges can be batched per iteration iff it is straight-line
/// code touching only private data: no branch, nested loop, prefetch, or
/// shared reference — i.e. nothing that observes or is observed through the
/// PE clock (no trace events either; private accesses emit none).
fn batch_of(stmts: &[CStmt<'_>]) -> Option<IterCharges> {
    if stmts.is_empty() {
        return None;
    }
    let mut b = IterCharges::default();
    for s in stmts {
        let CStmt::Assign(a) = s else { return None };
        if a.write.shared || a.reads.iter().any(|r| r.kind != AccessKind::Private) {
            return None;
        }
        b.reads += a.reads.len() as u64;
        b.writes += 1;
        b.fp += a.cost;
    }
    Some(b)
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_dist::Layout;
    use ccdp_ir::ProgramBuilder;

    fn ctx_fixture() -> (Program, Memory, Vec<u64>) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8, 8]);
        let t = pb.private("T", &[8]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 7, |e, i| {
                // Shared + private mix, with the write aliasing a read.
                e.assign(a.at2(i, 0), a.at2(i, 0).rd() + t.at1(i).rd());
                // Pure-private statement.
                e.assign(t.at1(i), t.at1(i).rd() * 2.0);
            });
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 2);
        let mem = Memory::new(&p, &layout);
        let craft = vec![0u64; p.arrays.len()];
        (p, mem, craft)
    }

    fn outer_loop(p: &Program) -> &Loop {
        p.epochs()[0].stmts.iter().find_map(|s| s.as_loop()).unwrap()
    }

    #[test]
    fn identical_subscripts_share_a_slot() {
        let (p, mem, craft) = ctx_fixture();
        let scheme = Scheme::Sequential;
        let ctx = CompileCtx { program: &p, mem: &mem, scheme: &scheme, craft_cost: &craft };
        let cb = compile_loop(outer_loop(&p), &ctx);
        // Subscripts: A(i,0) (read+write shared), T(i) (read+write shared
        // slot across both statements) — 2 distinct slots.
        assert_eq!(cb.slots.len(), 2);
        let CStmt::Assign(a0) = &cb.stmts[0] else { panic!("assign") };
        assert_eq!(a0.write.slot, a0.reads[0].slot, "A(i,0) read/write share");
        assert!(a0.write.shared);
        assert_eq!(a0.reads[0].kind, AccessKind::Cached(Handling::Normal));
        assert_eq!(a0.reads[1].kind, AccessKind::Private);
    }

    #[test]
    fn mixed_body_does_not_batch_but_private_only_does() {
        let (p, mem, craft) = ctx_fixture();
        let scheme = Scheme::Sequential;
        let ctx = CompileCtx { program: &p, mem: &mem, scheme: &scheme, craft_cost: &craft };
        let cb = compile_loop(outer_loop(&p), &ctx);
        // The body mixes shared and private statements: no batch.
        assert_eq!(cb.batch, None);
        // A body of only the private statement batches.
        let private_only = vec![cb.stmts[1].clone()];
        assert_eq!(
            batch_of(&private_only),
            Some(IterCharges { reads: 1, writes: 1, fp: 2 })
        );
    }

    #[test]
    fn slot_recurrence_matches_direct_evaluation() {
        let (p, mem, craft) = ctx_fixture();
        let scheme = Scheme::Sequential;
        let ctx = CompileCtx { program: &p, mem: &mem, scheme: &scheme, craft_cost: &craft };
        let l = outer_loop(&p);
        let cb = compile_loop(l, &ctx);
        let env = VarEnv::new(p.var_names.len());
        for spec in &cb.slots {
            let st = spec.enter(&env, 0, 7, 1);
            assert!(st.fast, "0..=7 is in bounds for extent-8 arrays");
            let decl = p.array(spec.array);
            let mut env2 = env.clone();
            let mut off = st.off;
            for v in 0..=7i64 {
                env2.set(l.var, v);
                let coords: Vec<i64> =
                    spec.index.iter().map(|ix| ix.eval(&env2)).collect();
                assert_eq!(off as usize, decl.linearize(&coords), "v={v}");
                off += st.doff;
            }
        }
    }

    #[test]
    fn flattened_expr_matches_tree_eval_bitwise() {
        use ccdp_ir::VarId;
        use ValExpr::*;
        // min(max(|-(r0 / 2)| * (r1 - 3.5), v0 + sqrt(r2)), r0)
        let e = Min(
            Box::new(Max(
                Box::new(Mul(
                    Box::new(Abs(Box::new(Neg(Box::new(Div(
                        Box::new(Read(0)),
                        Box::new(Lit(2.0)),
                    )))))),
                    Box::new(Sub(Box::new(Read(1)), Box::new(Lit(3.5)))),
                )),
                Box::new(Add(
                    Box::new(Var(VarId(0))),
                    Box::new(Sqrt(Box::new(Read(2)))),
                )),
            )),
            Box::new(Read(0)),
        );
        let ce = CExpr::compile(&e);
        let mut env = VarEnv::new(1);
        for (v0, reads) in [
            (3, [7.25, -1.5, 2.0]),
            (-2, [0.1, 1e9, 0.3]),
            (0, [f64::NAN, 1.0, 4.0]),
        ] {
            env.set(VarId(0), v0);
            let want = e.eval(&reads, &env);
            let got = ce.eval(&reads, &env);
            assert_eq!(want.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn common_shapes_specialize_and_match_postfix_bitwise() {
        use ccdp_ir::VarId;
        use ValExpr::*;
        // (shape we expect, expression)
        let cases: Vec<(&str, ValExpr)> = vec![
            ("leaf", Read(0)),
            ("bin", Add(Box::new(Read(0)), Box::new(Lit(2.5)))),
            // (r0 * r1) - r2: postfix [r0, r1, Mul, r2, Sub].
            (
                "binl",
                Sub(
                    Box::new(Mul(Box::new(Read(0)), Box::new(Read(1)))),
                    Box::new(Read(2)),
                ),
            ),
            // MXM multiply-accumulate r0 + (r1 * r2): postfix
            // [r0, r1, r2, Mul, Add].
            (
                "binr",
                Add(
                    Box::new(Read(0)),
                    Box::new(Mul(Box::new(Read(1)), Box::new(Var(VarId(0))))),
                ),
            ),
        ];
        let mut env = VarEnv::new(1);
        env.set(VarId(0), 3);
        for (name, e) in &cases {
            let ce = CExpr::compile(e);
            assert!(
                !matches!(ce.fast, FastExpr::General),
                "{name} should specialize"
            );
            for reads in [[1.5, -0.25, 1e9], [f64::NAN, 0.0, -7.125]] {
                let want = e.eval(&reads, &env);
                assert_eq!(ce.eval(&reads, &env).to_bits(), want.to_bits(), "{name}");
                assert_eq!(ce.eval_postfix(&reads, &env).to_bits(), want.to_bits(), "{name}");
            }
        }
        // Unary operators have no specialized shape.
        let neg = Neg(Box::new(Read(0)));
        assert!(matches!(CExpr::compile(&neg).fast, FastExpr::General));
    }

    #[test]
    fn loop_var_use_is_detected_exactly_for_assign_bodies() {
        let (p, mem, craft) = ctx_fixture();
        let scheme = Scheme::Sequential;
        let ctx = CompileCtx { program: &p, mem: &mem, scheme: &scheme, craft_cost: &craft };
        let cb = compile_loop(outer_loop(&p), &ctx);
        // Neither fixture expression reads `i` as a value (only subscripts
        // do, and those live in the slot recurrences).
        assert!(!cb.uses_loop_var);
        let mut pb = ProgramBuilder::new("t2");
        let t = pb.private("T", &[8]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 7, |e, i| {
                e.assign(t.at1(i), t.at1(i).rd() + i.val());
            });
        });
        let p2 = pb.finish().unwrap();
        let layout = Layout::new(&p2, 2);
        let mem2 = Memory::new(&p2, &layout);
        let craft2 = vec![0u64; p2.arrays.len()];
        let ctx2 =
            CompileCtx { program: &p2, mem: &mem2, scheme: &scheme, craft_cost: &craft2 };
        let cb2 = compile_loop(outer_loop(&p2), &ctx2);
        assert!(cb2.uses_loop_var, "i.val() reads the loop variable");
    }

    #[test]
    fn deep_expr_spills_past_fixed_stack() {
        use ValExpr::*;
        // Right-leaning chain: r0 + (r0 + (... + r0)) — depth ≈ chain length.
        let mut e = Read(0);
        for _ in 0..(FIXED_STACK + 8) {
            e = Add(Box::new(Read(0)), Box::new(e));
        }
        let ce = CExpr::compile(&e);
        assert!(ce.depth > FIXED_STACK);
        let env = VarEnv::new(0);
        assert_eq!(ce.eval(&[1.5], &env), e.eval(&[1.5], &env));
    }

    #[test]
    fn out_of_range_entry_falls_back_to_slow_path() {
        let (p, mem, craft) = ctx_fixture();
        let scheme = Scheme::Sequential;
        let ctx = CompileCtx { program: &p, mem: &mem, scheme: &scheme, craft_cost: &craft };
        let cb = compile_loop(outer_loop(&p), &ctx);
        let env = VarEnv::new(p.var_names.len());
        // Range 0..=8 leaves the extent-8 arrays at v=8.
        let st = cb.slots[0].enter(&env, 0, 8, 1);
        assert!(!st.fast);
    }
}
