//! JSON serialization of simulation results and metrics.
//!
//! Schema notes: every `CycleBreakdown` serializes as an object keyed by
//! [`CycleCategory::name`] with **all** categories present (zeros included)
//! so consumers can diff reports without key-existence churn. `SimResult`
//! serializes everything except the final memory image (megawords of f64
//! are not report material).

use ccdp_json::{Json, ToJson};

use crate::faults::FaultStats;
use crate::metrics::{
    CycleBreakdown, CycleCategory, EpochCycles, EventTrace, MemEvent, PrefetchQuality,
};
use crate::pe::PeStats;
use crate::result::{OracleReport, SimResult, StaleReadExample};

impl ToJson for FaultStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("prefetches_dropped", self.prefetches_dropped.to_json()),
            ("fills_delayed", self.fills_delayed.to_json()),
            ("delay_extra_cycles", self.delay_extra_cycles.to_json()),
            ("queue_storms", self.queue_storms.to_json()),
            ("storm_drops", self.storm_drops.to_json()),
            ("early_evictions", self.early_evictions.to_json()),
            ("demand_fallbacks", self.demand_fallbacks.to_json()),
        ])
    }
}

impl ToJson for CycleBreakdown {
    fn to_json(&self) -> Json {
        Json::obj(self.iter().map(|(c, v)| (c.name(), v.to_json())))
    }
}

impl CycleBreakdown {
    /// Rebuild from the object form produced by `to_json`. `None` when a
    /// key is unknown or a value is not an unsigned integer; missing
    /// categories read as zero.
    pub fn from_json(j: &Json) -> Option<CycleBreakdown> {
        let Json::Obj(pairs) = j else { return None };
        let mut b = CycleBreakdown::default();
        for (k, v) in pairs {
            let cat = CycleCategory::from_name(k)?;
            b.charge(cat, v.as_u64()?);
        }
        Some(b)
    }
}

impl ToJson for PeStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cache_hits", self.cache_hits.to_json()),
            ("local_fills", self.local_fills.to_json()),
            ("remote_fills", self.remote_fills.to_json()),
            ("refresh_fills", self.refresh_fills.to_json()),
            ("staged_fills", self.staged_fills.to_json()),
            ("bypass_reads", self.bypass_reads.to_json()),
            ("uncached_reads", self.uncached_reads.to_json()),
            ("writes_local", self.writes_local.to_json()),
            ("writes_remote", self.writes_remote.to_json()),
            ("line_prefetches_issued", self.line_prefetches_issued.to_json()),
            ("line_prefetches_dropped", self.line_prefetches_dropped.to_json()),
            ("vector_prefetches_issued", self.vector_prefetches_issued.to_json()),
            ("vector_words_moved", self.vector_words_moved.to_json()),
            ("prefetch_late", self.prefetch_late.to_json()),
            ("mem_stall_cycles", self.mem_stall_cycles.to_json()),
            ("prefetch_cycles", self.prefetch_cycles.to_json()),
            ("barrier_wait_cycles", self.barrier_wait_cycles.to_json()),
            ("bus_txns", self.bus_txns.to_json()),
            ("bus_invalidations", self.bus_invalidations.to_json()),
            ("bus_updates", self.bus_updates.to_json()),
            ("fresh_reads", self.fresh_reads.to_json()),
            ("fresh_hits_prefetched", self.fresh_hits_prefetched.to_json()),
            ("prefetched_line_hits", self.prefetched_line_hits.to_json()),
            ("prefetch_words_issued", self.prefetch_words_issued.to_json()),
            ("prefetch_words_used", self.prefetch_words_used.to_json()),
            ("faults", self.faults.to_json()),
            ("breakdown", self.breakdown.to_json()),
        ])
    }
}

impl ToJson for PrefetchQuality {
    fn to_json(&self) -> Json {
        Json::obj([
            ("coverage", self.coverage.to_json()),
            ("accuracy", self.accuracy.to_json()),
            ("timeliness", self.timeliness.to_json()),
            ("queue_drops", self.queue_drops.to_json()),
        ])
    }
}

impl ToJson for StaleReadExample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("reference", self.reference.index().to_json()),
            ("pe", self.pe.to_json()),
            ("addr", self.addr.to_json()),
            ("cached_version", self.cached_version.to_json()),
            ("memory_version", self.memory_version.to_json()),
            ("phase", self.phase.to_json()),
        ])
    }
}

impl ToJson for OracleReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("stale_reads", self.stale_reads.to_json()),
            ("coherent", self.is_coherent().to_json()),
            ("examples", self.examples.to_json()),
        ])
    }
}

impl ToJson for EpochCycles {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("total", self.total().to_json()),
            ("per_pe", self.per_pe.to_json()),
        ])
    }
}

impl ToJson for MemEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", self.cycle.to_json()),
            ("pe", self.pe.to_json()),
            ("phase", self.phase.to_json()),
            ("kind", self.kind.name().to_json()),
            ("addr", self.addr.to_json()),
        ])
    }
}

impl ToJson for EventTrace {
    fn to_json(&self) -> Json {
        Json::obj([
            ("len", self.len().to_json()),
            ("dropped", self.dropped.to_json()),
            ("events", Json::arr(self.iter().map(|e| e.to_json()))),
        ])
    }
}

impl ToJson for SimResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scheme", self.scheme.to_json()),
            ("cycles", self.cycles.to_json()),
            ("phases", self.phases.to_json()),
            ("extrapolated", self.extrapolated.to_json()),
            ("totals", self.total_stats().to_json()),
            ("prefetch_quality", self.prefetch_quality().to_json()),
            ("oracle", self.oracle.to_json()),
            ("per_pe", self.per_pe.to_json()),
            ("epochs", self.epochs.to_json()),
        ];
        if !self.trace.is_empty() {
            fields.push(("trace", self.trace.to_json()));
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn breakdown_json_round_trips() {
        let mut b = CycleBreakdown::default();
        b.charge(CycleCategory::RemoteFill, 1500);
        b.charge(CycleCategory::FpWork, 42);
        b.charge(CycleCategory::BarrierWait, 7);
        let j = b.to_json();
        // All categories present, even zero ones.
        for c in CycleCategory::ALL {
            assert!(j.get(c.name()).is_some(), "missing {}", c.name());
        }
        let text = j.to_string();
        let parsed = ccdp_json::parse(&text).unwrap();
        let back = CycleBreakdown::from_json(&parsed).expect("valid breakdown");
        assert_eq!(back, b);
        assert_eq!(back.total(), 1549);
    }

    #[test]
    fn breakdown_from_json_rejects_unknown_keys() {
        let j = ccdp_json::parse(r#"{"fp_work": 1, "made_up": 2}"#).unwrap();
        assert!(CycleBreakdown::from_json(&j).is_none());
        assert!(CycleBreakdown::from_json(&Json::Int(3)).is_none());
        // Missing keys read as zero.
        let j = ccdp_json::parse(r#"{"cache_hit": 9}"#).unwrap();
        let b = CycleBreakdown::from_json(&j).unwrap();
        assert_eq!(b.get(CycleCategory::CacheHit), 9);
        assert_eq!(b.total(), 9);
    }

    #[test]
    fn pe_stats_include_breakdown_and_quality_counters() {
        let mut s = PeStats { cache_hits: 5, fresh_reads: 3, ..Default::default() };
        s.breakdown.charge(CycleCategory::CacheHit, 5);
        let j = s.to_json();
        assert_eq!(j.get("cache_hits").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("fresh_reads").and_then(Json::as_u64), Some(3));
        let bd = j.get("breakdown").unwrap();
        assert_eq!(bd.get("cache_hit").and_then(Json::as_u64), Some(5));
    }
}
