//! Interpreter tests: numerics, scheme comparisons, the coherence oracle,
//! failure injection, and repeat extrapolation.

use ccdp_analysis::analyze_stale;
use ccdp_dist::Layout;
use ccdp_ir::{Program, ProgramBuilder};
use ccdp_prefetch::{plan_prefetches, Handling, PrefetchPlan, ScheduleOptions, TargetOptions};

use crate::{MachineConfig, Scheme, SimOptions, Simulator};

fn seq_run(p: &Program) -> crate::SimResult {
    let layout = Layout::new(p, 1);
    let cfg = MachineConfig::t3d(1);
    Simulator::new(p, layout, cfg, Scheme::Sequential, SimOptions::default()).run()
}

fn base_run(p: &Program, n_pes: usize) -> crate::SimResult {
    let layout = Layout::new(p, n_pes);
    let cfg = MachineConfig::t3d(n_pes);
    Simulator::new(p, layout, cfg, Scheme::Base, SimOptions::default()).run()
}

fn ccdp_run(p: &Program, n_pes: usize) -> (Program, crate::SimResult) {
    let layout = Layout::new(p, n_pes);
    let stale = analyze_stale(p, &layout);
    let (tp, plan) = plan_prefetches(
        p,
        &layout,
        &stale,
        &TargetOptions::default(),
        &ScheduleOptions::default(),
    );
    let cfg = MachineConfig::t3d(n_pes);
    let r = Simulator::new(
        &tp,
        layout,
        cfg,
        Scheme::Ccdp { plan },
        SimOptions { oracle_examples: 4, ..Default::default() },
    )
    .run();
    (tp, r)
}

/// y = 2x + y over shared arrays, all local: checks numerics end to end.
fn saxpy(n: usize) -> Program {
    let mut pb = ProgramBuilder::new("saxpy");
    let x = pb.shared("X", &[n]);
    let y = pb.shared("Y", &[n]);
    pb.serial_epoch("init", |e| {
        e.serial("i", 0, n as i64 - 1, |e, i| {
            e.assign(x.at1(i), 3.0);
        });
        e.serial("i2", 0, n as i64 - 1, |e, i| {
            e.assign(y.at1(i), 1.0);
        });
    });
    pb.parallel_epoch("axpy", |e| {
        e.doall("i", 0, n as i64 - 1, |e, i| {
            e.assign(y.at1(i), y.at1(i).rd() + x.at1(i).rd() * 2.0);
        });
    });
    pb.finish().unwrap()
}

/// Writer/reader pair with deliberately foreign (reversed) reads.
fn reversed_reader(n: usize) -> Program {
    let mut pb = ProgramBuilder::new("rev");
    let a = pb.shared("A", &[n]);
    let b = pb.shared("B", &[n]);
    pb.parallel_epoch("w", |e| {
        e.doall("i", 0, n as i64 - 1, |e, i| {
            e.assign(a.at1(i), 2.0);
        });
    });
    pb.parallel_epoch("r", |e| {
        e.doall("i", 0, n as i64 - 1, |e, i| {
            e.assign(b.at1(i), a.at1((n as i64 - 1) - i).rd() * 10.0);
        });
    });
    pb.finish().unwrap()
}

#[test]
fn sequential_numerics_are_exact() {
    let p = saxpy(64);
    let r = seq_run(&p);
    let y = r.array_values(&p, p.array_by_name("Y").unwrap().id);
    assert!(y.iter().all(|&v| v == 7.0), "{y:?}");
    assert!(r.oracle.is_coherent());
    assert!(r.cycles > 0);
}

#[test]
fn all_schemes_compute_identical_results() {
    for n_pes in [1, 2, 4, 8] {
        let p = reversed_reader(64);
        let seq = seq_run(&p);
        let base = base_run(&p, n_pes);
        let (tp, ccdp) = ccdp_run(&p, n_pes);
        let b_id = p.array_by_name("B").unwrap().id;
        let want = seq.array_values(&p, b_id);
        assert_eq!(base.array_values(&p, b_id), want, "BASE P={n_pes}");
        assert_eq!(ccdp.array_values(&tp, b_id), want, "CCDP P={n_pes}");
        assert!(want.iter().all(|&v| v == 20.0));
        assert!(ccdp.oracle.is_coherent(), "CCDP must be coherent");
        assert!(base.oracle.is_coherent());
    }
}

#[test]
fn base_pays_craft_overhead_even_when_local() {
    let p = saxpy(256);
    let seq = seq_run(&p);
    let base = base_run(&p, 1);
    assert!(
        base.cycles > seq.cycles,
        "BASE {} must exceed SEQ {} (uncached + CRAFT)",
        base.cycles,
        seq.cycles
    );
}

#[test]
fn ccdp_beats_base_on_remote_heavy_reads() {
    let p = reversed_reader(512);
    let base = base_run(&p, 4);
    let (_, ccdp) = ccdp_run(&p, 4);
    assert!(
        ccdp.cycles < base.cycles,
        "CCDP {} should beat BASE {}",
        ccdp.cycles,
        base.cycles
    );
    let t = ccdp.total_stats();
    assert!(
        t.line_prefetches_issued + t.vector_prefetches_issued > 0,
        "CCDP run must actually prefetch: {t:?}"
    );
}

#[test]
fn prefetching_beats_bypass_only_coherence() {
    let p = reversed_reader(512);
    let layout = Layout::new(&p, 4);
    let stale = analyze_stale(&p, &layout);
    // Invalidate-only baseline: no prefetches, bypass every stale read.
    let plan = PrefetchPlan::bypass_all(&p, &stale);
    let cfg = MachineConfig::t3d(4);
    let bypass = Simulator::new(
        &p,
        layout,
        cfg,
        Scheme::Ccdp { plan },
        SimOptions::default(),
    )
    .run();
    let (_, ccdp) = ccdp_run(&p, 4);
    assert!(bypass.oracle.is_coherent());
    assert!(
        ccdp.cycles < bypass.cycles,
        "prefetching ({}) should beat bypass-only ({})",
        ccdp.cycles,
        bypass.cycles
    );
}

#[test]
fn oracle_catches_injected_incoherence() {
    let p = reversed_reader(64);
    let layout = Layout::new(&p, 4);
    let stale = analyze_stale(&p, &layout);
    assert!(stale.n_stale() > 0);
    // Deliberately break the plan: treat every stale read as Normal.
    let (tp, mut plan) = plan_prefetches(
        &p,
        &layout,
        &stale,
        &TargetOptions::default(),
        &ScheduleOptions { enable_vpg: false, enable_sp: false, enable_mbp: false, ..Default::default() },
    );
    for h in plan.handling.iter_mut() {
        *h = Handling::Normal;
    }
    // Warm the caches with a *pre-write* epoch so the stale values differ:
    // run the sim; the reader may hit lines cached from the write epoch's
    // own fills. To guarantee a cached stale copy, run reader twice via a
    // repeat in a fresh program.
    let mut pb = ProgramBuilder::new("inj");
    let a = pb.shared("A", &[64]);
    let b = pb.shared("B", &[64]);
    pb.repeat(2, |rep| {
        rep.parallel_epoch("r", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(b.at1(i), a.at1(63 - i).rd() + 1.0);
            });
        });
        rep.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(a.at1(i), a.at1(i).rd() + 1.0);
            });
        });
    });
    let p2 = pb.finish().unwrap();
    let layout2 = Layout::new(&p2, 4);
    let stale2 = analyze_stale(&p2, &layout2);
    assert!(stale2.n_stale() > 0);
    let plan2 = PrefetchPlan {
        handling: vec![Handling::Normal; p2.n_refs as usize],
        technique: Default::default(),
        stats: Default::default(),
    };
    let cfg = MachineConfig::t3d(4);
    let broken = Simulator::new(
        &p2,
        layout2.clone(),
        cfg.clone(),
        Scheme::Ccdp { plan: plan2 },
        SimOptions { oracle_examples: 8, ..Default::default() },
    )
    .run();
    assert!(
        !broken.oracle.is_coherent(),
        "oracle must flag stale reads when handling is Normal everywhere"
    );
    assert!(!broken.oracle.examples.is_empty());

    // And the numerics really are wrong vs the sequential reference.
    let seq = seq_run(&p2);
    let b_id = p2.array_by_name("B").unwrap().id;
    assert_ne!(
        broken.array_values(&p2, b_id),
        seq.array_values(&p2, b_id),
        "stale reads must corrupt results"
    );

    let _ = (tp, plan);
}

#[test]
fn correct_ccdp_plan_is_coherent_on_the_injection_kernel() {
    let mut pb = ProgramBuilder::new("inj-ok");
    let a = pb.shared("A", &[64]);
    let b = pb.shared("B", &[64]);
    pb.repeat(3, |rep| {
        rep.parallel_epoch("r", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(b.at1(i), a.at1(63 - i).rd() + 1.0);
            });
        });
        rep.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| {
                e.assign(a.at1(i), a.at1(i).rd() + 1.0);
            });
        });
    });
    let p = pb.finish().unwrap();
    let (tp, r) = ccdp_run(&p, 4);
    assert!(r.oracle.is_coherent(), "{:?}", r.oracle.examples);
    let seq = seq_run(&p);
    let b_id = p.array_by_name("B").unwrap().id;
    assert_eq!(r.array_values(&tp, b_id), seq.array_values(&p, b_id));
}

#[test]
fn dynamic_doall_executes_every_iteration() {
    let mut pb = ProgramBuilder::new("dyn");
    let a = pb.shared("A", &[100]);
    pb.parallel_epoch("w", |e| {
        e.doall_dynamic("i", 0, 99, 7, |e, i| {
            e.assign(a.at1(i), 5.0);
        });
    });
    let p = pb.finish().unwrap();
    let r = base_run(&p, 3);
    let vals = r.array_values(&p, p.array_by_name("A").unwrap().id);
    assert!(vals.iter().all(|&v| v == 5.0));
}

#[test]
fn repeat_extrapolation_approximates_full_run() {
    let mut pb = ProgramBuilder::new("rep");
    let a = pb.shared("A", &[128]);
    let b = pb.shared("B", &[128]);
    pb.repeat(24, |rep| {
        rep.parallel_epoch("r", |e| {
            e.doall("i", 0, 127, |e, i| {
                e.assign(b.at1(i), a.at1(127 - i).rd() * 0.5 + b.at1(i).rd());
            });
        });
        rep.parallel_epoch("w", |e| {
            e.doall("i", 0, 127, |e, i| {
                e.assign(a.at1(i), b.at1(i).rd());
            });
        });
    });
    let p = pb.finish().unwrap();
    let layout = Layout::new(&p, 4);
    let cfg = MachineConfig::t3d(4);
    let full = Simulator::new(
        &p,
        layout.clone(),
        cfg.clone(),
        Scheme::Base,
        SimOptions::default(),
    )
    .run();
    let sampled = Simulator::new(
        &p,
        layout,
        cfg,
        Scheme::Base,
        SimOptions { repeat_sample: Some(4), ..Default::default() },
    )
    .run();
    assert!(sampled.extrapolated);
    assert!(!full.extrapolated);
    let (a, b) = (full.cycles as f64, sampled.cycles as f64);
    let rel = (a - b).abs() / a;
    assert!(rel < 0.02, "extrapolation error {rel:.3} (full {a}, sampled {b})");
}

#[test]
fn serial_epoch_runs_on_pe0_and_others_wait() {
    let mut pb = ProgramBuilder::new("ser");
    let a = pb.shared("A", &[64]);
    pb.serial_epoch("init", |e| {
        e.serial("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
    });
    let p = pb.finish().unwrap();
    let r = base_run(&p, 4);
    // PE0 did the work; the others only waited at the barrier.
    assert!(r.per_pe[0].writes_local + r.per_pe[0].writes_remote == 64);
    for pe in 1..4 {
        assert_eq!(r.per_pe[pe].writes_local + r.per_pe[pe].writes_remote, 0);
        assert!(r.per_pe[pe].barrier_wait_cycles > 0);
    }
}

#[test]
fn multi_phase_epoch_barriers_per_wrapper_iteration() {
    let mut pb = ProgramBuilder::new("mp");
    let a = pb.shared("A", &[16, 16]);
    pb.parallel_epoch("sweep", |e| {
        e.serial("j", 1, 15, |e, j| {
            e.doall("i", 1, 15, |e, i| {
                e.assign(a.at2(i, j), a.at2(i - 1, j - 1).rd() + 1.0);
            });
        });
    });
    let p = pb.finish().unwrap();
    let r = base_run(&p, 4);
    assert_eq!(r.phases, 15, "one barrier per wrapper iteration");
    // And the recurrence is computed correctly (sequential comparison).
    let seq = seq_run(&p);
    let aid = p.array_by_name("A").unwrap().id;
    assert_eq!(r.array_values(&p, aid), seq.array_values(&p, aid));
}

#[test]
fn vector_prefetch_moves_words_and_stays_coherent() {
    // MXM-ish kernel where VPG triggers (serial inner loop, const bounds).
    let n = 32usize;
    let mut pb = ProgramBuilder::new("vpg");
    let a = pb.shared("A", &[n, n]);
    let c = pb.shared("C", &[n, n]);
    pb.parallel_epoch("w", |e| {
        e.doall("j", 0, n as i64 - 1, |e, j| {
            e.serial("i", 0, n as i64 - 1, |e, i| e.assign(a.at2(i, j), 1.0));
        });
    });
    pb.parallel_epoch("mult", |e| {
        e.doall("j", 0, n as i64 - 1, |e, j| {
            e.serial("k", 0, n as i64 - 1, |e, k| {
                e.serial("i", 0, n as i64 - 1, |e, i| {
                    e.assign(c.at2(i, j), c.at2(i, j).rd() + a.at2(i, k).rd());
                });
            });
        });
    });
    let p = pb.finish().unwrap();
    let (_, r) = ccdp_run(&p, 4);
    let t = r.total_stats();
    assert!(t.vector_prefetches_issued > 0, "{t:?}");
    assert!(t.vector_words_moved > 0);
    assert!(r.oracle.is_coherent());
}

#[test]
fn staging_buffer_turns_thrash_refetches_local() {
    // Arrays wide enough that two vector-prefetched columns alias in a tiny
    // direct-mapped cache: with the staging buffer the conflict refills are
    // local, and the run stays coherent and correct.
    let n = 32usize;
    let mut pb = ProgramBuilder::new("thrash");
    let a = pb.shared("A", &[n, n]);
    let b = pb.shared("B", &[n, n]);
    let c = pb.shared("C", &[n, n]);
    pb.parallel_epoch("w", |e| {
        e.doall_aligned("j", 0, n as i64 - 1, &a, |e, j| {
            e.serial("i", 0, n as i64 - 1, |e, i| {
                e.assign(a.at2(i, j), i.val() + 1.0);
                e.assign(b.at2(i, j), j.val() + 2.0);
            });
        });
    });
    pb.parallel_epoch("r", |e| {
        e.doall_aligned("j", 0, n as i64 - 1, &c, |e, j| {
            e.serial("i", 0, n as i64 - 1, |e, i| {
                // Two transposed reads: both stale, vector-prefetchable, and
                // their footprints alias in a small cache.
                e.assign(
                    c.at2(i, j),
                    a.at2(j, i).rd() + b.at2(j, i).rd(),
                );
            });
        });
    });
    let p = pb.finish().unwrap();
    let layout = Layout::new(&p, 4);
    let stale = analyze_stale(&p, &layout);
    let (tp, plan) = plan_prefetches(
        &p,
        &layout,
        &stale,
        &TargetOptions::default(),
        &ScheduleOptions { vpg_max_words: 64, ..Default::default() },
    );
    let mut cfg = MachineConfig::t3d(4);
    cfg.cache_lines = 8; // force aliasing between the prefetched columns
    let r = Simulator::new(
        &tp,
        layout,
        cfg,
        Scheme::Ccdp { plan },
        SimOptions::default(),
    )
    .run();
    assert!(r.oracle.is_coherent());
    let t = r.total_stats();
    if t.vector_prefetches_issued > 0 {
        assert!(
            t.staged_fills > 0,
            "conflict evictions of staged lines must refill locally: {t:?}"
        );
    }
    // Numerics still exact.
    let seq = seq_run(&p);
    let cid = p.array_by_name("C").unwrap().id;
    assert_eq!(r.array_values(&tp, cid), seq.array_values(&p, cid));
}

#[test]
fn aligned_doall_keeps_writes_local() {
    // 13 columns over 4 PEs with a 12-iteration loop: aligned scheduling
    // keeps every write local; count-block scheduling would not.
    let n = 13usize;
    let mut pb = ProgramBuilder::new("align");
    let a = pb.shared("A", &[4, n]);
    pb.parallel_epoch("w", |e| {
        e.doall_aligned("j", 0, n as i64 - 2, &a, |e, j| {
            e.serial("i", 0, 3, |e, i| {
                e.assign(a.at2(i, j), 1.0);
            });
        });
    });
    let p = pb.finish().unwrap();
    let r = base_run(&p, 4);
    let t = r.total_stats();
    assert_eq!(t.writes_remote, 0, "aligned DOALL must write locally: {t:?}");
    assert_eq!(t.writes_local, 4 * (n as u64 - 1));
}
