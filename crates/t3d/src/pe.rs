//! Per-PE state: cycle counter, cache, prefetch queue, statistics.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::faults::FaultStats;
use crate::metrics::CycleBreakdown;

/// Event counters for one PE (and, summed, for the machine).
#[derive(Clone, Copy, Default, Debug)]
pub struct PeStats {
    pub cache_hits: u64,
    pub local_fills: u64,
    pub remote_fills: u64,
    /// `Fresh` reads that hit an old-phase line and re-fetched.
    pub refresh_fills: u64,
    /// Bypass (uncached) shared reads.
    pub bypass_reads: u64,
    /// Uncached shared reads of the BASE scheme.
    pub uncached_reads: u64,
    pub writes_local: u64,
    pub writes_remote: u64,
    pub line_prefetches_issued: u64,
    pub line_prefetches_dropped: u64,
    pub vector_prefetches_issued: u64,
    pub vector_words_moved: u64,
    /// Consumed reads that had to wait for an in-flight prefetch.
    pub prefetch_late: u64,
    /// Misses refilled from the local staging buffer (data landed there via
    /// a vector prefetch this phase) instead of the remote home.
    pub staged_fills: u64,
    /// Cycles spent stalled on memory (fills, uncached reads, waits).
    pub mem_stall_cycles: u64,
    /// Cycles spent issuing prefetches.
    pub prefetch_cycles: u64,
    /// Cycles spent waiting at barriers.
    pub barrier_wait_cycles: u64,

    // -- hardware-coherence counters (MESI / Dragon backends) --------------
    /// Snooping-bus transactions issued (BusRd / BusRdX / BusUpgr / BusUpd).
    pub bus_txns: u64,
    /// Remote copies invalidated by this PE's BusRdX/BusUpgr transactions.
    pub bus_invalidations: u64,
    /// Remote copies patched in place by this PE's BusUpd transactions.
    pub bus_updates: u64,

    // -- prefetch quality counters (see `metrics::PrefetchQuality`) -------
    /// Cached reads executed with `Fresh` handling (the potentially-stale
    /// reads the plan must cover).
    pub fresh_reads: u64,
    /// `Fresh` reads served by a line prefetched in the current phase.
    pub fresh_hits_prefetched: u64,
    /// Cache hits on prefetch-installed lines (any handling).
    pub prefetched_line_hits: u64,
    /// Words installed in the cache by prefetches (line and vector).
    pub prefetch_words_issued: u64,
    /// Prefetched words subsequently read at least once.
    pub prefetch_words_used: u64,

    /// Injected-fault accounting (all zero unless a `FaultPlan` is active).
    pub faults: FaultStats,

    /// Per-category attribution of every cycle this PE spent; its total
    /// equals the PE's final cycle counter exactly.
    pub breakdown: CycleBreakdown,
}

impl PeStats {
    pub fn add(&mut self, o: &PeStats) {
        self.cache_hits += o.cache_hits;
        self.local_fills += o.local_fills;
        self.remote_fills += o.remote_fills;
        self.refresh_fills += o.refresh_fills;
        self.bypass_reads += o.bypass_reads;
        self.uncached_reads += o.uncached_reads;
        self.writes_local += o.writes_local;
        self.writes_remote += o.writes_remote;
        self.line_prefetches_issued += o.line_prefetches_issued;
        self.line_prefetches_dropped += o.line_prefetches_dropped;
        self.vector_prefetches_issued += o.vector_prefetches_issued;
        self.vector_words_moved += o.vector_words_moved;
        self.prefetch_late += o.prefetch_late;
        self.staged_fills += o.staged_fills;
        self.mem_stall_cycles += o.mem_stall_cycles;
        self.prefetch_cycles += o.prefetch_cycles;
        self.barrier_wait_cycles += o.barrier_wait_cycles;
        self.bus_txns += o.bus_txns;
        self.bus_invalidations += o.bus_invalidations;
        self.bus_updates += o.bus_updates;
        self.fresh_reads += o.fresh_reads;
        self.fresh_hits_prefetched += o.fresh_hits_prefetched;
        self.prefetched_line_hits += o.prefetched_line_hits;
        self.prefetch_words_issued += o.prefetch_words_issued;
        self.prefetch_words_used += o.prefetch_words_used;
        self.faults.add(&o.faults);
        self.breakdown.add(&o.breakdown);
    }
}

/// One processing element.
///
/// `Clone` exists for the epoch-sharded parallel path: a worker takes the
/// real `Pe`s of its block (swapped out against placeholders) and the
/// master swaps them back at the merge barrier.
#[derive(Clone)]
pub struct Pe {
    pub id: usize,
    /// Cycle counter.
    pub now: u64,
    pub cache: Cache,
    /// In-flight prefetches: (ready_at, words). Pruned lazily.
    pub inflight: Vec<(u64, usize)>,
    /// Owner PE of the last prefetch target (DTB Annex amortization).
    pub annex_pe: Option<usize>,
    /// Cache lines whose data a vector prefetch staged into local buffer
    /// memory during the current phase: conflict evictions of such lines
    /// refill locally instead of re-crossing the network.
    pub staged: std::collections::HashSet<u64>,
    /// Phase `staged` belongs to.
    pub staged_phase: u32,
    pub stats: PeStats,
    /// Scratch for read values during statement evaluation.
    pub scratch: Vec<f64>,
}

impl Pe {
    pub fn new(id: usize, cfg: &MachineConfig) -> Pe {
        Pe {
            id,
            now: 0,
            cache: Cache::new(cfg.cache_lines, cfg.line_words),
            inflight: Vec::new(),
            annex_pe: None,
            staged: std::collections::HashSet::new(),
            staged_phase: 0,
            stats: PeStats::default(),
            scratch: Vec::with_capacity(8),
        }
    }

    /// A stand-in `Pe` parked in the master simulator while the real one is
    /// lent to a shard worker. Never executed: the sharded path only runs
    /// block-local PEs, and cross-block owner-cache patches are deferred to
    /// the merge. The 1-line cache keeps it allocation-cheap.
    pub fn placeholder(id: usize) -> Pe {
        Pe {
            id,
            now: 0,
            cache: Cache::new(1, 1),
            inflight: Vec::new(),
            annex_pe: None,
            staged: std::collections::HashSet::new(),
            staged_phase: 0,
            stats: PeStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Words currently in flight in the prefetch queue.
    pub fn inflight_words(&mut self) -> usize {
        let now = self.now;
        self.inflight.retain(|&(ready, _)| ready > now);
        self.inflight.iter().map(|&(_, w)| w).sum()
    }

    /// Try to reserve queue space for a prefetch of `words` words arriving
    /// at `ready_at`; false when the queue is full (prefetch dropped).
    pub fn queue_reserve(&mut self, words: usize, ready_at: u64, capacity: usize) -> bool {
        if self.inflight_words() + words > capacity {
            return false;
        }
        self.inflight.push((ready_at, words));
        true
    }

    /// Record vector-prefetched lines in the local staging buffer.
    pub fn stage_lines(&mut self, phase: u32, lines: impl Iterator<Item = u64>) {
        if self.staged_phase != phase {
            self.staged.clear();
            self.staged_phase = phase;
        }
        self.staged.extend(lines);
    }

    /// Is the line staged locally (valid this phase)?
    pub fn is_staged(&self, phase: u32, line: u64) -> bool {
        self.staged_phase == phase && self.staged.contains(&line)
    }

    /// Pay the DTB Annex setup if the prefetch target owner changed.
    pub fn annex_cost(&mut self, owner: usize, cfg: &MachineConfig) -> u64 {
        if self.annex_pe == Some(owner) {
            0
        } else {
            self.annex_pe = Some(owner);
            cfg.annex_setup
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn queue_capacity_enforced() {
        let cfg = MachineConfig::t3d(2);
        let mut pe = Pe::new(0, &cfg);
        // 16-word queue, 4-word lines: 4 concurrent line prefetches.
        for _ in 0..4 {
            assert!(pe.queue_reserve(4, 100, cfg.queue_words));
        }
        assert!(!pe.queue_reserve(4, 100, cfg.queue_words));
        // Time passes; entries drain.
        pe.now = 101;
        assert!(pe.queue_reserve(4, 200, cfg.queue_words));
    }

    #[test]
    fn annex_amortizes_same_owner() {
        let cfg = MachineConfig::t3d(4);
        let mut pe = Pe::new(0, &cfg);
        assert_eq!(pe.annex_cost(2, &cfg), cfg.annex_setup);
        assert_eq!(pe.annex_cost(2, &cfg), 0);
        assert_eq!(pe.annex_cost(3, &cfg), cfg.annex_setup);
    }

    #[test]
    fn stats_add() {
        let mut a = PeStats { cache_hits: 1, ..Default::default() };
        let b = PeStats { cache_hits: 2, remote_fills: 5, ..Default::default() };
        a.add(&b);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.remote_fills, 5);
    }
}
