//! Property test: the direct-mapped cache against a naive reference model.

use super::Cache;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: direct-mapped eviction emulated by keying on the index.
type RefLine = (u64, u32, u64, Vec<f64>, Vec<u32>);

struct RefModel {
    lines: HashMap<usize, RefLine>,
    n_lines: usize,
    line_words: usize,
}

impl RefModel {
    fn new(n_lines: usize, line_words: usize) -> Self {
        RefModel { lines: HashMap::new(), n_lines, line_words }
    }

    fn index(&self, la: u64) -> usize {
        (la as usize) % self.n_lines
    }

    fn install(&mut self, addr: usize, phase: u32, ready: u64, base_val: f64) {
        let la = (addr / self.line_words) as u64;
        let vals: Vec<f64> = (0..self.line_words).map(|k| base_val + k as f64).collect();
        let vers: Vec<u32> = (0..self.line_words).map(|k| k as u32 + 1).collect();
        self.lines.insert(self.index(la), (la, phase, ready, vals, vers));
    }

    fn lookup(&self, addr: usize) -> Option<(u32, u64, f64, u32)> {
        let la = (addr / self.line_words) as u64;
        let (tag, phase, ready, vals, vers) = self.lines.get(&self.index(la))?;
        if *tag != la {
            return None;
        }
        let off = addr % self.line_words;
        Some((*phase, *ready, vals[off], vers[off]))
    }

    fn update(&mut self, addr: usize, v: f64, ver: u32) {
        let la = (addr / self.line_words) as u64;
        let idx = self.index(la);
        if let Some((tag, _, _, vals, vers)) = self.lines.get_mut(&idx) {
            if *tag == la {
                let off = addr % self.line_words;
                vals[off] = v;
                vers[off] = ver;
            }
        }
    }

    fn invalidate(&mut self, addr: usize) {
        let la = (addr / self.line_words) as u64;
        let idx = self.index(la);
        if self.lines.get(&idx).is_some_and(|(tag, ..)| *tag == la) {
            self.lines.remove(&idx);
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Install { addr: usize, phase: u32, ready: u64, base: u32 },
    Update { addr: usize, val: u32, ver: u32 },
    Invalidate { addr: usize },
    Lookup { addr: usize },
}

fn arb_op(space: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..space, 0u32..5, 0u64..100, 0u32..50).prop_map(|(addr, phase, ready, base)| {
            Op::Install { addr, phase, ready, base }
        }),
        (0..space, 0u32..100, 1u32..20)
            .prop_map(|(addr, val, ver)| Op::Update { addr, val, ver }),
        (0..space).prop_map(|addr| Op::Invalidate { addr }),
        (0..space).prop_map(|addr| Op::Lookup { addr }),
    ]
}

proptest! {
    #[test]
    fn cache_matches_reference_model(
        ops in proptest::collection::vec(arb_op(256), 1..200),
    ) {
        let (n_lines, line_words) = (8usize, 4usize);
        let mut cache = Cache::new(n_lines, line_words);
        let mut model = RefModel::new(n_lines, line_words);
        for op in ops {
            match op {
                Op::Install { addr, phase, ready, base } => {
                    let words =
                        (0..line_words).map(|k| (base as f64 + k as f64, k as u32 + 1));
                    cache.install(addr, phase, ready, words);
                    model.install(addr, phase, ready, base as f64);
                }
                Op::Update { addr, val, ver } => {
                    cache.update_word(addr, val as f64, ver);
                    model.update(addr, val as f64, ver);
                }
                Op::Invalidate { addr } => {
                    cache.invalidate(addr);
                    model.invalidate(addr);
                }
                Op::Lookup { addr } => {
                    let got = cache.lookup(addr).map(|h| {
                        let (v, ver) = cache.read(h.line, addr);
                        (h.filled_phase, h.ready_at, v, ver)
                    });
                    prop_assert_eq!(got, model.lookup(addr), "addr {}", addr);
                }
            }
        }
    }
}
