//! Deterministic fault injection for the T3D simulator.
//!
//! In CCDP the prefetch is the coherence *enforcement* mechanism, so a
//! dropped, late, or evicted prefetch is a correctness hazard unless
//! stale-marked reads degrade gracefully to a coherent demand fetch. This
//! module makes that guarantee machine-checkable: a seeded [`FaultPlan`]
//! injects faults at the simulator's existing charge points, and the
//! invariant under test (see `tests/faults.rs` and the `stress` bin) is that
//! **faults may only move cycles, never values** — under any fault mix the
//! CCDP numerics still equal the sequential golden results and the
//! coherence oracle stays clean.
//!
//! # Fault kinds
//!
//! * **Drop** — a line or vector prefetch is issued (and its issue cycles
//!   are charged) but the data never arrives. Probabilistic
//!   ([`FaultPlan::drop_rate`]) or targeted at one PE / one epoch.
//! * **Delay** — a network latency spike multiplies the remote-fill latency
//!   for a burst of consecutive remote transfers on one PE
//!   ([`FaultPlan::delay_rate`] / `delay_mult` / `delay_burst`).
//! * **Queue storm / shrink** — the prefetch queue's effective capacity is
//!   statically capped ([`FaultPlan::queue_cap`]) or collapses to zero for
//!   a burst of issues ([`FaultPlan::storm_rate`] / `storm_len`), dropping
//!   every in-flight reservation attempt (overflow storm).
//! * **Early evict** — a prefetched line is evicted from the cache before
//!   its first use ([`FaultPlan::evict_rate`]).
//!
//! # Determinism
//!
//! Every decision draws from a per-(PE, fault-kind) xoshiro256++ stream
//! seeded from [`FaultPlan::seed`] (via the vendored `rand` shim — there is
//! no wall-clock nondeterminism anywhere). Streams are independent per
//! kind, and a decision always consumes exactly one draw whenever its
//! knob is active, so the set of prefetches dropped at rate `p` is a
//! subset of those dropped at rate `q > p` under an identical issue
//! sequence — which is what makes the stress sweep's demand-fallback
//! counts monotone in the drop rate.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ConfigError;

/// A deterministic, seeded fault-injection plan. Carried by value in
/// `SimOptions`; [`FaultPlan::none`] (the default) injects nothing and the
/// simulator's behaviour is then byte-identical to a build without the
/// fault subsystem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault-decision streams.
    pub seed: u64,
    /// Probability an issued prefetch (line or vector) is dropped.
    pub drop_rate: f64,
    /// Drop *every* prefetch issued by this PE (targeted injector).
    pub drop_pe: Option<usize>,
    /// Drop *every* prefetch issued while this source epoch is executing.
    pub drop_epoch: Option<u32>,
    /// Probability a remote transfer starts a latency-spike burst.
    pub delay_rate: f64,
    /// Latency multiplier applied to remote transfers during a spike.
    pub delay_mult: u64,
    /// Consecutive remote transfers affected once a spike triggers.
    pub delay_burst: u32,
    /// Static shrink of the effective prefetch-queue capacity (words).
    pub queue_cap: Option<usize>,
    /// Probability a prefetch issue begins a queue overflow storm.
    pub storm_rate: f64,
    /// Prefetch issues for which the queue stays fully blocked per storm.
    pub storm_len: u32,
    /// Probability a freshly prefetched line is evicted before first use.
    pub evict_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The no-fault plan: every injector disabled.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            drop_pe: None,
            drop_epoch: None,
            delay_rate: 0.0,
            delay_mult: 1,
            delay_burst: 1,
            queue_cap: None,
            storm_rate: 0.0,
            storm_len: 1,
            evict_rate: 0.0,
        }
    }

    /// Does this plan inject anything at all?
    pub fn is_none(&self) -> bool {
        self.drop_rate == 0.0
            && self.drop_pe.is_none()
            && self.drop_epoch.is_none()
            && self.delay_rate == 0.0
            && self.queue_cap.is_none()
            && self.storm_rate == 0.0
            && self.evict_rate == 0.0
    }

    /// Set the decision-stream seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Probabilistic prefetch drop.
    pub fn with_drop_rate(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate;
        self
    }

    /// Targeted drop: every prefetch issued by `pe` is lost.
    pub fn with_drop_pe(mut self, pe: usize) -> FaultPlan {
        self.drop_pe = Some(pe);
        self
    }

    /// Targeted drop: every prefetch issued inside epoch `id` is lost.
    pub fn with_drop_epoch(mut self, id: u32) -> FaultPlan {
        self.drop_epoch = Some(id);
        self
    }

    /// Remote-latency spike bursts: with probability `rate` per remote
    /// transfer, multiply latency by `mult` for `burst` transfers.
    pub fn with_delay(mut self, rate: f64, mult: u64, burst: u32) -> FaultPlan {
        self.delay_rate = rate;
        self.delay_mult = mult;
        self.delay_burst = burst;
        self
    }

    /// Statically shrink the effective prefetch-queue capacity.
    pub fn with_queue_cap(mut self, words: usize) -> FaultPlan {
        self.queue_cap = Some(words);
        self
    }

    /// Queue overflow storms: with probability `rate` per issue, block the
    /// queue entirely for `len` issues.
    pub fn with_storms(mut self, rate: f64, len: u32) -> FaultPlan {
        self.storm_rate = rate;
        self.storm_len = len;
        self
    }

    /// Early eviction of prefetched lines before first use.
    pub fn with_evict_rate(mut self, rate: f64) -> FaultPlan {
        self.evict_rate = rate;
        self
    }

    /// Check the plan is well-formed: rates are probabilities, and burst /
    /// multiplier parameters are sane whenever their injector is active.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("drop_rate", self.drop_rate),
            ("delay_rate", self.delay_rate),
            ("storm_rate", self.storm_rate),
            ("evict_rate", self.evict_rate),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(ConfigError::BadFaultRate { field, value: v });
            }
        }
        if self.delay_rate > 0.0 && self.delay_mult < 2 {
            return Err(ConfigError::BadFaultParam {
                field: "delay_mult",
                value: self.delay_mult,
                need: "must be >= 2 when delay_rate > 0",
            });
        }
        if self.delay_rate > 0.0 && self.delay_burst == 0 {
            return Err(ConfigError::BadFaultParam {
                field: "delay_burst",
                value: self.delay_burst as u64,
                need: "must be >= 1 when delay_rate > 0",
            });
        }
        if self.storm_rate > 0.0 && self.storm_len == 0 {
            return Err(ConfigError::BadFaultParam {
                field: "storm_len",
                value: self.storm_len as u64,
                need: "must be >= 1 when storm_rate > 0",
            });
        }
        Ok(())
    }
}

/// Per-PE fault accounting: what was injected, and how often a faulted line
/// was recovered by a coherent demand fetch (the graceful-degradation
/// fallback). Summed machine-wide by `SimResult::fault_stats`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultStats {
    /// Prefetch operations (line or vector) dropped by injection.
    pub prefetches_dropped: u64,
    /// Remote transfers hit by an injected latency spike.
    pub fills_delayed: u64,
    /// Extra latency cycles added by spikes (arrival delay on prefetches,
    /// charged stall on demand fills).
    pub delay_extra_cycles: u64,
    /// Queue overflow storms begun.
    pub queue_storms: u64,
    /// Prefetches lost to a storm or to injected capacity shrink.
    pub storm_drops: u64,
    /// Prefetched lines evicted before their first use.
    pub early_evictions: u64,
    /// Demand fetches that re-fetched a line whose prefetch was faulted —
    /// the coherent fallback every fault must degrade to.
    pub demand_fallbacks: u64,
}

impl FaultStats {
    pub fn add(&mut self, o: &FaultStats) {
        self.prefetches_dropped += o.prefetches_dropped;
        self.fills_delayed += o.fills_delayed;
        self.delay_extra_cycles += o.delay_extra_cycles;
        self.queue_storms += o.queue_storms;
        self.storm_drops += o.storm_drops;
        self.early_evictions += o.early_evictions;
        self.demand_fallbacks += o.demand_fallbacks;
    }

    /// Total faults injected (fallbacks are recoveries, not injections).
    pub fn injected(&self) -> u64 {
        self.prefetches_dropped
            + self.fills_delayed
            + self.queue_storms
            + self.storm_drops
            + self.early_evictions
    }

    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Index of a decision stream within a PE's bank.
#[derive(Clone, Copy)]
enum Stream {
    Drop = 0,
    Delay = 1,
    Storm = 2,
    Evict = 3,
}

const N_STREAMS: usize = 4;

/// Runtime state of the injectors: per-(PE, kind) RNG streams, burst
/// counters, and the set of lines whose prefetch was faulted (consulted to
/// attribute subsequent demand fills as fallbacks).
///
/// Every field is per-PE, which is what makes the epoch-sharded parallel
/// path sound: a worker clones the engine, advances only its own PEs'
/// streams, and [`FaultEngine::absorb_pe`] splices those PEs' state back —
/// the merged engine is indistinguishable from a serial run.
#[derive(Clone)]
pub(crate) struct FaultEngine {
    plan: FaultPlan,
    streams: Vec<StdRng>,
    delay_left: Vec<u32>,
    storm_left: Vec<u32>,
    faulted_lines: Vec<HashSet<u64>>,
}

/// SplitMix64-style mix so each (seed, pe, kind) stream is decorrelated.
fn stream_seed(seed: u64, pe: usize, kind: usize) -> u64 {
    let mut z = seed
        ^ (pe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (kind as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultEngine {
    pub fn new(plan: FaultPlan, n_pes: usize) -> FaultEngine {
        let streams = (0..n_pes * N_STREAMS)
            .map(|i| StdRng::seed_from_u64(stream_seed(plan.seed, i / N_STREAMS, i % N_STREAMS)))
            .collect();
        FaultEngine {
            plan,
            streams,
            delay_left: vec![0; n_pes],
            storm_left: vec![0; n_pes],
            faulted_lines: vec![HashSet::new(); n_pes],
        }
    }

    fn draw(&mut self, pe: usize, s: Stream, rate: f64) -> bool {
        self.streams[pe * N_STREAMS + s as usize].gen_bool(rate)
    }

    /// Should the prefetch a PE is issuing right now be dropped?
    /// Consumes exactly one draw from the drop stream whenever
    /// `drop_rate > 0`, regardless of targeted outcomes, so drop decisions
    /// at different rates stay aligned (and nested).
    pub fn should_drop(&mut self, pe: usize, epoch: Option<u32>) -> bool {
        let random = self.plan.drop_rate > 0.0 && self.draw(pe, Stream::Drop, self.plan.drop_rate);
        let targeted = self.plan.drop_pe == Some(pe)
            || (self.plan.drop_epoch.is_some() && self.plan.drop_epoch == epoch);
        random || targeted
    }

    /// Effective queue capacity for this issue, and whether a new storm just
    /// began. A storm blocks the queue entirely for `storm_len` issues.
    pub fn effective_queue(&mut self, pe: usize, base: usize) -> (usize, bool) {
        let mut cap = base;
        if let Some(c) = self.plan.queue_cap {
            cap = cap.min(c);
        }
        let mut began = false;
        if self.storm_left[pe] > 0 {
            self.storm_left[pe] -= 1;
            return (0, began);
        }
        if self.plan.storm_rate > 0.0 && self.draw(pe, Stream::Storm, self.plan.storm_rate) {
            self.storm_left[pe] = self.plan.storm_len.saturating_sub(1);
            began = true;
            return (0, began);
        }
        (cap, began)
    }

    /// Latency multiplier for a remote transfer (1 = no spike). Burst state
    /// is per PE: once a spike triggers, the next `delay_burst - 1`
    /// transfers on that PE are also multiplied.
    pub fn fill_multiplier(&mut self, pe: usize) -> u64 {
        if self.delay_left[pe] > 0 {
            self.delay_left[pe] -= 1;
            return self.plan.delay_mult;
        }
        if self.plan.delay_rate > 0.0 && self.draw(pe, Stream::Delay, self.plan.delay_rate) {
            self.delay_left[pe] = self.plan.delay_burst.saturating_sub(1);
            return self.plan.delay_mult;
        }
        1
    }

    /// Should the line just installed by a prefetch be evicted before use?
    pub fn should_evict(&mut self, pe: usize) -> bool {
        self.plan.evict_rate > 0.0 && self.draw(pe, Stream::Evict, self.plan.evict_rate)
    }

    /// Record that a line's prefetch was faulted on `pe`; a later demand
    /// fetch of it counts as a graceful-degradation fallback.
    pub fn note_faulted(&mut self, pe: usize, line_addr: u64) {
        self.faulted_lines[pe].insert(line_addr);
    }

    /// A successful prefetch install of the line masks any earlier fault.
    pub fn clear_faulted(&mut self, pe: usize, line_addr: u64) {
        self.faulted_lines[pe].remove(&line_addr);
    }

    /// Was this demand fill recovering a faulted line? Consumes the mark.
    pub fn take_fallback(&mut self, pe: usize, line_addr: u64) -> bool {
        self.faulted_lines[pe].remove(&line_addr)
    }

    /// Splice `pe`'s decision streams, burst counters, and faulted-line set
    /// from `other` (a shard worker's clone that simulated `pe`) into this
    /// engine. All engine state is per-PE, so absorbing each PE from the
    /// worker that ran it reproduces the serial engine exactly.
    pub fn absorb_pe(&mut self, other: &FaultEngine, pe: usize) {
        for k in 0..N_STREAMS {
            self.streams[pe * N_STREAMS + k] = other.streams[pe * N_STREAMS + k].clone();
        }
        self.delay_left[pe] = other.delay_left[pe];
        self.storm_left[pe] = other.storm_left[pe];
        self.faulted_lines[pe] = other.faulted_lines[pe].clone();
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn none_plan_is_inert_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.validate().is_ok());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn builders_compose_and_validate() {
        let p = FaultPlan::none()
            .with_seed(7)
            .with_drop_rate(0.25)
            .with_delay(0.1, 4, 3)
            .with_storms(0.05, 4)
            .with_evict_rate(0.1)
            .with_queue_cap(8);
        assert!(!p.is_none());
        assert_eq!(p.seed, 7);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_rates_and_params() {
        assert!(FaultPlan::none().with_drop_rate(1.5).validate().is_err());
        assert!(FaultPlan::none().with_drop_rate(-0.1).validate().is_err());
        assert!(FaultPlan::none().with_evict_rate(f64::NAN).validate().is_err());
        let mut p = FaultPlan::none().with_delay(0.1, 4, 3);
        p.delay_mult = 1;
        assert!(p.validate().is_err());
        p.delay_mult = 4;
        p.delay_burst = 0;
        assert!(p.validate().is_err());
        let mut s = FaultPlan::none().with_storms(0.1, 2);
        s.storm_len = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn drop_decisions_are_nested_across_rates() {
        // Same seed, aligned draws: every drop at rate 0.05 also drops at
        // rate 0.4 — the property the stress sweep's monotonicity rests on.
        let mut lo = FaultEngine::new(FaultPlan::none().with_seed(11).with_drop_rate(0.05), 2);
        let mut hi = FaultEngine::new(FaultPlan::none().with_seed(11).with_drop_rate(0.4), 2);
        for i in 0..4000 {
            let pe = (i % 2) as usize;
            let a = lo.should_drop(pe, None);
            let b = hi.should_drop(pe, None);
            assert!(!a || b, "draw {i}: dropped at low rate but not high");
        }
    }

    #[test]
    fn targeted_drop_hits_only_its_target() {
        let mut f = FaultEngine::new(FaultPlan::none().with_drop_pe(1), 4);
        assert!(!f.should_drop(0, None));
        assert!(f.should_drop(1, None));
        let mut g = FaultEngine::new(FaultPlan::none().with_drop_epoch(3), 2);
        assert!(!g.should_drop(0, Some(2)));
        assert!(g.should_drop(0, Some(3)));
        assert!(!g.should_drop(0, None));
    }

    #[test]
    fn storms_block_queue_for_their_length() {
        let mut f = FaultEngine::new(FaultPlan::none().with_storms(1.0, 3), 1);
        let (cap, began) = f.effective_queue(0, 16);
        assert_eq!((cap, began), (0, true));
        // Two more blocked issues, no new storm counted.
        assert_eq!(f.effective_queue(0, 16), (0, false));
        assert_eq!(f.effective_queue(0, 16), (0, false));
        // rate 1.0: the next issue starts the next storm.
        assert_eq!(f.effective_queue(0, 16), (0, true));
    }

    #[test]
    fn static_queue_cap_applies_without_storms() {
        let mut f = FaultEngine::new(FaultPlan::none().with_queue_cap(4), 1);
        assert_eq!(f.effective_queue(0, 16), (4, false));
        // The machine's own capacity is never *raised*.
        let mut g = FaultEngine::new(FaultPlan::none().with_queue_cap(64), 1);
        assert_eq!(g.effective_queue(0, 16), (16, false));
    }

    #[test]
    fn delay_bursts_cover_consecutive_transfers() {
        let mut f = FaultEngine::new(FaultPlan::none().with_delay(1.0, 5, 3), 1);
        assert_eq!(f.fill_multiplier(0), 5);
        assert_eq!(f.fill_multiplier(0), 5);
        assert_eq!(f.fill_multiplier(0), 5);
        // Burst over; rate 1.0 immediately starts the next one.
        assert_eq!(f.fill_multiplier(0), 5);
    }

    #[test]
    fn fallback_marks_are_consumed_once() {
        let mut f = FaultEngine::new(FaultPlan::none().with_drop_rate(0.5), 2);
        f.note_faulted(0, 42);
        assert!(f.take_fallback(0, 42));
        assert!(!f.take_fallback(0, 42), "mark must be consumed");
        f.note_faulted(1, 7);
        f.clear_faulted(1, 7);
        assert!(!f.take_fallback(1, 7), "successful install masks the fault");
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::none().with_seed(99).with_drop_rate(0.3).with_delay(0.2, 4, 2);
        let mut a = FaultEngine::new(plan, 3);
        let mut b = FaultEngine::new(plan, 3);
        for i in 0..1000 {
            let pe = i % 3;
            assert_eq!(a.should_drop(pe, None), b.should_drop(pe, None));
            assert_eq!(a.fill_multiplier(pe), b.fill_multiplier(pe));
        }
    }
}
