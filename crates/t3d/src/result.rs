//! Simulation results and the coherence oracle report.

use ccdp_ir::{ArrayId, Program, RefId};

use crate::faults::FaultStats;
use crate::mem::Memory;
use crate::metrics::{EpochCycles, EventTrace, PrefetchQuality};
use crate::pe::PeStats;

/// One recorded stale-read violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleReadExample {
    pub reference: RefId,
    pub pe: usize,
    pub addr: usize,
    pub cached_version: u32,
    pub memory_version: u32,
    pub phase: u32,
}

/// The coherence oracle's verdict on a run.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Number of consumed cached reads that returned a word older than main
    /// memory. Must be zero for any correct execution scheme.
    pub stale_reads: u64,
    /// First few violations, for diagnostics.
    pub examples: Vec<StaleReadExample>,
}

impl OracleReport {
    pub fn is_coherent(&self) -> bool {
        self.stale_reads == 0
    }
}

/// Everything a simulation run produces.
#[derive(Clone)]
pub struct SimResult {
    /// Scheme name ("SEQ" / "BASE" / "CCDP" / "INV" / "MESI" / "DRAGON").
    pub scheme: &'static str,
    /// Total simulated cycles (max over PEs at the final barrier).
    pub cycles: u64,
    /// Per-PE statistics.
    pub per_pe: Vec<PeStats>,
    /// Oracle verdict.
    pub oracle: OracleReport,
    /// Final memory (for numerical validation).
    pub memory: Memory,
    /// Barrier phases executed.
    pub phases: u32,
    /// True when Repeat extrapolation was applied (numerics then reflect
    /// only the sampled iterations).
    pub extrapolated: bool,
    /// Per-epoch cycle attribution, in first-execution order. Each entry
    /// accumulates every execution of that source epoch; the pseudo-entry
    /// labelled `"(extrapolated)"` holds Repeat extrapolation cycles. For
    /// each PE, the entries sum to that PE's `breakdown` (and so to its
    /// final cycle counter).
    pub epochs: Vec<EpochCycles>,
    /// Bounded memory-event trace (empty unless
    /// `SimOptions::trace_capacity > 0`).
    pub trace: EventTrace,
}

impl SimResult {
    /// Machine-wide statistics.
    pub fn total_stats(&self) -> PeStats {
        let mut t = PeStats::default();
        for s in &self.per_pe {
            t.add(s);
        }
        t
    }

    /// Final contents of a shared array.
    pub fn array_values(&self, program: &Program, a: ArrayId) -> Vec<f64> {
        self.memory.array_values(program, a)
    }

    /// Megawords of shared data moved by vector prefetches (diagnostics).
    pub fn vector_words(&self) -> u64 {
        self.per_pe.iter().map(|s| s.vector_words_moved).sum()
    }

    /// Machine-wide prefetch quality (coverage / accuracy / timeliness).
    pub fn prefetch_quality(&self) -> PrefetchQuality {
        PrefetchQuality::from_stats(&self.total_stats())
    }

    /// Machine-wide injected-fault accounting (all zero for fault-free runs).
    pub fn fault_stats(&self) -> FaultStats {
        let mut t = FaultStats::default();
        for s in &self.per_pe {
            t.add(&s.faults);
        }
        t
    }
}
