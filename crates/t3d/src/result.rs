//! Simulation results and the coherence oracle report.

use ccdp_ir::{ArrayId, LoopId, Program, RefId};

use crate::faults::FaultStats;
use crate::mem::Memory;
use crate::metrics::{EpochCycles, EventTrace, PrefetchQuality};
use crate::pe::PeStats;

/// One recorded stale-read violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleReadExample {
    pub reference: RefId,
    pub pe: usize,
    pub addr: usize,
    pub cached_version: u32,
    pub memory_version: u32,
    pub phase: u32,
}

/// The coherence oracle's verdict on a run.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Number of consumed cached reads that returned a word older than main
    /// memory. Must be zero for any correct execution scheme.
    pub stale_reads: u64,
    /// First few violations, for diagnostics.
    pub examples: Vec<StaleReadExample>,
}

impl OracleReport {
    pub fn is_coherent(&self) -> bool {
        self.stale_reads == 0
    }
}

/// Epoch-sharding accounting: how each static-DOALL instance was executed
/// and why ineligible ones declined. Diagnostics only — deliberately **not**
/// part of the serialized result (`jsonio`), so the byte-identity contract
/// between serial and sharded runs is unaffected by how runs were sharded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// DOALL instances sharded on a static `Disjoint` proof: no per-block
    /// access log was kept and the merge-time conflict scan was skipped.
    pub static_proven: u64,
    /// DOALL instances sharded optimistically with the dynamic conflict log
    /// (verdict `MayConflict`/`Unknown`, or `shard_static` off).
    pub dynamic_logged: u64,
    /// Dynamically logged instances the merge-time scan rejected (all block
    /// state discarded, epoch rerun serially).
    pub conflicts: u64,
    /// Statically proven budgeted instances whose sliced budget tripped in
    /// a worker (rerun serially to reproduce the exact serial abort).
    pub budget_reruns: u64,
    /// Declines, by structured reason (instances that went straight to the
    /// serial schedule; `sim_threads <= 1` runs are not counted).
    pub declined_treewalk: u64,
    pub declined_few_pes: u64,
    pub declined_hardware: u64,
    pub declined_wall_deadline: u64,
    /// Budgeted instance without a static `Disjoint` proof: budget slicing
    /// is only sound when blocks are independent.
    pub declined_budget_unproven: u64,
    /// Distinct DOALL loops that ever hit a *dynamic* merge-time conflict
    /// (insertion order). The mutation battery uses this as the oracle the
    /// static verdict must never contradict: a loop in this list must not
    /// be `Disjoint`.
    pub conflict_loops: Vec<LoopId>,
}

impl ShardStats {
    /// Total sharded instances that merged successfully. Budget reruns are
    /// counted before an instance is classified as proven or logged, so only
    /// dynamic conflicts subtract here.
    pub fn sharded(&self) -> u64 {
        self.static_proven + self.dynamic_logged - self.conflicts
    }

    /// Merge-time conflict scans avoided by static proofs.
    pub fn dynamic_checks_skipped(&self) -> u64 {
        self.static_proven
    }
}

/// Everything a simulation run produces.
#[derive(Clone)]
pub struct SimResult {
    /// Scheme name ("SEQ" / "BASE" / "CCDP" / "INV" / "MESI" / "DRAGON").
    pub scheme: &'static str,
    /// Total simulated cycles (max over PEs at the final barrier).
    pub cycles: u64,
    /// Per-PE statistics.
    pub per_pe: Vec<PeStats>,
    /// Oracle verdict.
    pub oracle: OracleReport,
    /// Final memory (for numerical validation).
    pub memory: Memory,
    /// Barrier phases executed.
    pub phases: u32,
    /// True when Repeat extrapolation was applied (numerics then reflect
    /// only the sampled iterations).
    pub extrapolated: bool,
    /// Per-epoch cycle attribution, in first-execution order. Each entry
    /// accumulates every execution of that source epoch; the pseudo-entry
    /// labelled `"(extrapolated)"` holds Repeat extrapolation cycles. For
    /// each PE, the entries sum to that PE's `breakdown` (and so to its
    /// final cycle counter).
    pub epochs: Vec<EpochCycles>,
    /// Bounded memory-event trace (empty unless
    /// `SimOptions::trace_capacity > 0`).
    pub trace: EventTrace,
    /// Epoch-sharding accounting (not serialized; see [`ShardStats`]).
    pub shard: ShardStats,
}

impl SimResult {
    /// Machine-wide statistics.
    pub fn total_stats(&self) -> PeStats {
        let mut t = PeStats::default();
        for s in &self.per_pe {
            t.add(s);
        }
        t
    }

    /// Final contents of a shared array.
    pub fn array_values(&self, program: &Program, a: ArrayId) -> Vec<f64> {
        self.memory.array_values(program, a)
    }

    /// Megawords of shared data moved by vector prefetches (diagnostics).
    pub fn vector_words(&self) -> u64 {
        self.per_pe.iter().map(|s| s.vector_words_moved).sum()
    }

    /// Machine-wide prefetch quality (coverage / accuracy / timeliness).
    pub fn prefetch_quality(&self) -> PrefetchQuality {
        PrefetchQuality::from_stats(&self.total_stats())
    }

    /// Machine-wide injected-fault accounting (all zero for fault-free runs).
    pub fn fault_stats(&self) -> FaultStats {
        let mut t = FaultStats::default();
        for s in &self.per_pe {
            t.add(&s.faults);
        }
        t
    }
}
