//! `t3d-sim`: a cycle-cost simulator of a Cray T3D-like non-cache-coherent
//! shared-address-space multiprocessor.
//!
//! # What is modelled
//!
//! * **PEs** with private direct-mapped data caches (8 KB, 32-byte lines by
//!   default — the Alpha 21064 configuration), a 16-word prefetch queue, and
//!   a DTB-Annex-style setup cost for switching remote targets.
//! * **Distributed memory**: every shared-array word lives on exactly one
//!   PE (per the `ccdp-dist` layout); local vs remote access latencies are
//!   taken from published T3D measurements (see `MachineConfig`).
//! * **No hardware coherence by default**: caches are never invalidated by
//!   remote writes. Coherence is whatever the executed program's prefetch
//!   plan achieves — which is the point of the paper. Hardware-coherent
//!   *rival* machines are modelled by the snooping backends below.
//! * **Execution schemes**: `Sequential` (1 PE, everything local and
//!   cached), `Base` (CRAFT-style: shared data *not cached*, software
//!   shared-address overhead on every access), `Ccdp` (shared data cached;
//!   potentially-stale reads follow the prefetch plan's `Fresh` / `Bypass`
//!   handling; prefetch statements and pipelined prefetches are executed),
//!   `InvalidateOnly` (the plan's handlings without its prefetches), and
//!   the hardware-coherence rivals `Mesi` / `Dragon` (snooping
//!   invalidate-/update-based protocols over a shared bus; see the
//!   [`coherence`] module). All schemes sit behind the
//!   [`CoherenceBackend`] trait.
//! * **A coherence oracle**: memory keeps a version per word, cache lines
//!   remember the versions they loaded, and every consumed cached read is
//!   checked; reading a word older than memory is recorded as a *stale read
//!   violation* (and the stale value is really returned, so broken plans
//!   produce genuinely wrong numerics). A correct CCDP plan yields zero
//!   violations — the test suite and the failure-injection tests lean on
//!   this.
//!
//! * **Deterministic fault injection** (`SimOptions::faults`): a seeded
//!   [`FaultPlan`] can drop prefetches, spike remote latencies, storm the
//!   prefetch queue, and evict prefetched lines before use — at the same
//!   charge points the normal model uses, so every injected fault is also
//!   accounted (per-PE [`FaultStats`]). The enforced invariant: faults may
//!   only move cycles, never values; a faulted prefetch degrades to a
//!   coherent demand fetch.
//!
//! * **Run budgets** (`SimOptions::cycle_budget` / `step_budget` /
//!   `wall_deadline`): both execution paths check budgets at every loop
//!   iteration, and [`Simulator::try_run`] aborts a runaway program with a
//!   structured [`SimAbort`] instead of looping forever — which is what
//!   makes fuzzed/synthesized programs safe to execute.
//!
//! # Time model
//!
//! Each PE owns a cycle counter. DOALL phases advance PEs independently and
//! re-synchronize at barriers (max + barrier cost). Serial epochs run on
//! PE 0. Repeat blocks can be *sampled* (`SimOptions::repeat_sample`): the
//! simulator runs a few iterations and extrapolates the steady-state
//! per-iteration cycle delta, which is how the 100-iteration TOMCATV/SWIM
//! runs stay tractable.

mod cache;
pub mod coherence;
/// Loop-body pre-compilation. Hidden from the public API surface: only
/// [`compiled::CExpr`] is exported, so the `dispatch` microbench can pit
/// the direct-threaded evaluator against the postfix stack machine.
#[doc(hidden)]
pub mod compiled;
mod config;
pub mod faults;
mod interp;
mod jsonio;
mod mem;
pub mod metrics;
mod pe;
mod result;

pub use cache::Cache;
pub use coherence::CoherenceBackend;
pub use config::{ConfigError, MachineConfig, Scheme, SimAbort, SimOptions};
pub use faults::{FaultPlan, FaultStats};
pub use interp::Simulator;
pub use mem::Memory;
pub use metrics::{
    CycleBreakdown, CycleCategory, EpochCycles, EventTrace, MemEvent, PrefetchQuality,
    TraceEventKind,
};
pub use pe::{Pe, PeStats};
pub use result::{OracleReport, ShardStats, SimResult, StaleReadExample};
